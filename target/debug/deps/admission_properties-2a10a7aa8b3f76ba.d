/root/repo/target/debug/deps/admission_properties-2a10a7aa8b3f76ba.d: tests/admission_properties.rs

/root/repo/target/debug/deps/admission_properties-2a10a7aa8b3f76ba: tests/admission_properties.rs

tests/admission_properties.rs:
