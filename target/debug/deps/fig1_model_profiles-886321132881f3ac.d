/root/repo/target/debug/deps/fig1_model_profiles-886321132881f3ac.d: crates/bench/benches/fig1_model_profiles.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_model_profiles-886321132881f3ac.rmeta: crates/bench/benches/fig1_model_profiles.rs Cargo.toml

crates/bench/benches/fig1_model_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
