/root/repo/target/debug/deps/microedge_orch-79d841e9e1d03372.d: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs

/root/repo/target/debug/deps/microedge_orch-79d841e9e1d03372: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs

crates/orch/src/lib.rs:
crates/orch/src/control_latency.rs:
crates/orch/src/events.rs:
crates/orch/src/lifecycle.rs:
crates/orch/src/pod.rs:
crates/orch/src/scheduler.rs:
crates/orch/src/spec.rs:
crates/orch/src/state.rs:
