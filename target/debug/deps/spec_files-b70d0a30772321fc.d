/root/repo/target/debug/deps/spec_files-b70d0a30772321fc.d: tests/spec_files.rs tests/../examples/specs/coral-pie-camera.yaml tests/../examples/specs/bodypix-camera.yaml tests/../examples/specs/segmentation-pipeline.yaml tests/../examples/specs/plain-service.yaml tests/../examples/specs/fleet.yaml

/root/repo/target/debug/deps/spec_files-b70d0a30772321fc: tests/spec_files.rs tests/../examples/specs/coral-pie-camera.yaml tests/../examples/specs/bodypix-camera.yaml tests/../examples/specs/segmentation-pipeline.yaml tests/../examples/specs/plain-service.yaml tests/../examples/specs/fleet.yaml

tests/spec_files.rs:
tests/../examples/specs/coral-pie-camera.yaml:
tests/../examples/specs/bodypix-camera.yaml:
tests/../examples/specs/segmentation-pipeline.yaml:
tests/../examples/specs/plain-service.yaml:
tests/../examples/specs/fleet.yaml:
