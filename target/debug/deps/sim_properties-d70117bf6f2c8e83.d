/root/repo/target/debug/deps/sim_properties-d70117bf6f2c8e83.d: tests/sim_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsim_properties-d70117bf6f2c8e83.rmeta: tests/sim_properties.rs Cargo.toml

tests/sim_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
