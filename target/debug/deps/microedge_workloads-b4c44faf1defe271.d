/root/repo/target/debug/deps/microedge_workloads-b4c44faf1defe271.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libmicroedge_workloads-b4c44faf1defe271.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libmicroedge_workloads-b4c44faf1defe271.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/camera.rs:
crates/workloads/src/coralpie.rs:
crates/workloads/src/dataset.rs:
crates/workloads/src/trace.rs:
