/root/repo/target/debug/deps/criterion-f0a5d5df876140e3.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f0a5d5df876140e3.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f0a5d5df876140e3.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
