/root/repo/target/debug/deps/microedge-6eadef57f1d16be3.d: src/lib.rs

/root/repo/target/debug/deps/libmicroedge-6eadef57f1d16be3.rlib: src/lib.rs

/root/repo/target/debug/deps/libmicroedge-6eadef57f1d16be3.rmeta: src/lib.rs

src/lib.rs:
