/root/repo/target/debug/deps/fig1_model_profiles-722368ce1ea2acd6.d: crates/bench/benches/fig1_model_profiles.rs

/root/repo/target/debug/deps/fig1_model_profiles-722368ce1ea2acd6: crates/bench/benches/fig1_model_profiles.rs

crates/bench/benches/fig1_model_profiles.rs:
