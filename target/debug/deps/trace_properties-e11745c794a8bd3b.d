/root/repo/target/debug/deps/trace_properties-e11745c794a8bd3b.d: tests/trace_properties.rs

/root/repo/target/debug/deps/trace_properties-e11745c794a8bd3b: tests/trace_properties.rs

tests/trace_properties.rs:
