/root/repo/target/debug/deps/large_scale-f0549c237ecca578.d: tests/large_scale.rs Cargo.toml

/root/repo/target/debug/deps/liblarge_scale-f0549c237ecca578.rmeta: tests/large_scale.rs Cargo.toml

tests/large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
