/root/repo/target/debug/deps/ablation_pipeline-24cf42f751fd8ce4.d: crates/bench/benches/ablation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pipeline-24cf42f751fd8ce4.rmeta: crates/bench/benches/ablation_pipeline.rs Cargo.toml

crates/bench/benches/ablation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
