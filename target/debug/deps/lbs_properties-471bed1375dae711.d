/root/repo/target/debug/deps/lbs_properties-471bed1375dae711.d: tests/lbs_properties.rs

/root/repo/target/debug/deps/lbs_properties-471bed1375dae711: tests/lbs_properties.rs

tests/lbs_properties.rs:
