/root/repo/target/debug/deps/microedge_metrics-fd7f9fc37e9eefab.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/debug/deps/microedge_metrics-fd7f9fc37e9eefab: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
