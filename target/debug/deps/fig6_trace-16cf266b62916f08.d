/root/repo/target/debug/deps/fig6_trace-16cf266b62916f08.d: crates/bench/benches/fig6_trace.rs

/root/repo/target/debug/deps/fig6_trace-16cf266b62916f08: crates/bench/benches/fig6_trace.rs

crates/bench/benches/fig6_trace.rs:
