/root/repo/target/debug/deps/microedge_sim-73340ca1f6319740.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmicroedge_sim-73340ca1f6319740.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmicroedge_sim-73340ca1f6319740.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/series.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
