/root/repo/target/debug/deps/tpu_properties-35f7b612489a5654.d: tests/tpu_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtpu_properties-35f7b612489a5654.rmeta: tests/tpu_properties.rs Cargo.toml

tests/tpu_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
