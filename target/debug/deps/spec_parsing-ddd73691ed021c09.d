/root/repo/target/debug/deps/spec_parsing-ddd73691ed021c09.d: tests/spec_parsing.rs Cargo.toml

/root/repo/target/debug/deps/libspec_parsing-ddd73691ed021c09.rmeta: tests/spec_parsing.rs Cargo.toml

tests/spec_parsing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
