/root/repo/target/debug/deps/microedge_metrics-60f32a05a6d5af94.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_metrics-60f32a05a6d5af94.rmeta: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
