/root/repo/target/debug/deps/packing_optimality-2ca5620f1d35afb1.d: tests/packing_optimality.rs

/root/repo/target/debug/deps/packing_optimality-2ca5620f1d35afb1: tests/packing_optimality.rs

tests/packing_optimality.rs:
