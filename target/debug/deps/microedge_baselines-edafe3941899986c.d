/root/repo/target/debug/deps/microedge_baselines-edafe3941899986c.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/debug/deps/microedge_baselines-edafe3941899986c: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
