/root/repo/target/debug/deps/serde-3ed9a8f9a47c7fee.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3ed9a8f9a47c7fee.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3ed9a8f9a47c7fee.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
