/root/repo/target/debug/deps/rand-cfd5b07e09e4c141.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-cfd5b07e09e4c141.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
