/root/repo/target/debug/deps/sim_properties-aa90044dc474c3b1.d: tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-aa90044dc474c3b1: tests/sim_properties.rs

tests/sim_properties.rs:
