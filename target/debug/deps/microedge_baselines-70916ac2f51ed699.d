/root/repo/target/debug/deps/microedge_baselines-70916ac2f51ed699.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_baselines-70916ac2f51ed699.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
