/root/repo/target/debug/deps/repro-f6de321e1f29bfd7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-f6de321e1f29bfd7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
