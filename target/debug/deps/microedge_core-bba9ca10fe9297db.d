/root/repo/target/debug/deps/microedge_core-bba9ca10fe9297db.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_core-bba9ca10fe9297db.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/lbs.rs:
crates/core/src/pool.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
