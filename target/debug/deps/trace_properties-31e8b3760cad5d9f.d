/root/repo/target/debug/deps/trace_properties-31e8b3760cad5d9f.d: tests/trace_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_properties-31e8b3760cad5d9f.rmeta: tests/trace_properties.rs Cargo.toml

tests/trace_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
