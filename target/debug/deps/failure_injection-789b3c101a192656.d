/root/repo/target/debug/deps/failure_injection-789b3c101a192656.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-789b3c101a192656: tests/failure_injection.rs

tests/failure_injection.rs:
