/root/repo/target/debug/deps/world_properties-95ca058eb43445a7.d: tests/world_properties.rs

/root/repo/target/debug/deps/world_properties-95ca058eb43445a7: tests/world_properties.rs

tests/world_properties.rs:
