/root/repo/target/debug/deps/microedge_cluster-2694fa2f4bbf8a0d.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/microedge_cluster-2694fa2f4bbf8a0d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
