/root/repo/target/debug/deps/criterion-6698501af12bd904.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-6698501af12bd904: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
