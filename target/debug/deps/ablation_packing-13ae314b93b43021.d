/root/repo/target/debug/deps/ablation_packing-13ae314b93b43021.d: crates/bench/benches/ablation_packing.rs Cargo.toml

/root/repo/target/debug/deps/libablation_packing-13ae314b93b43021.rmeta: crates/bench/benches/ablation_packing.rs Cargo.toml

crates/bench/benches/ablation_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
