/root/repo/target/debug/deps/fig5_scalability-c7b2ab1d8390dc21.d: crates/bench/benches/fig5_scalability.rs

/root/repo/target/debug/deps/fig5_scalability-c7b2ab1d8390dc21: crates/bench/benches/fig5_scalability.rs

crates/bench/benches/fig5_scalability.rs:
