/root/repo/target/debug/deps/table1_cost-4287a4dcd14387be.d: crates/bench/benches/table1_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_cost-4287a4dcd14387be.rmeta: crates/bench/benches/table1_cost.rs Cargo.toml

crates/bench/benches/table1_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
