/root/repo/target/debug/deps/fig7a_admission_overhead-1278aa2164f02aa2.d: crates/bench/benches/fig7a_admission_overhead.rs

/root/repo/target/debug/deps/fig7a_admission_overhead-1278aa2164f02aa2: crates/bench/benches/fig7a_admission_overhead.rs

crates/bench/benches/fig7a_admission_overhead.rs:
