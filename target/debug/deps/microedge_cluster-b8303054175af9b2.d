/root/repo/target/debug/deps/microedge_cluster-b8303054175af9b2.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_cluster-b8303054175af9b2.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
