/root/repo/target/debug/deps/microbenchmarks-ba5a59a7d4119e4c.d: crates/bench/benches/microbenchmarks.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobenchmarks-ba5a59a7d4119e4c.rmeta: crates/bench/benches/microbenchmarks.rs Cargo.toml

crates/bench/benches/microbenchmarks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
