/root/repo/target/debug/deps/microedge_core-8a78a24ea055c6d8.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

/root/repo/target/debug/deps/microedge_core-8a78a24ea055c6d8: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/lbs.rs:
crates/core/src/pool.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/units.rs:
