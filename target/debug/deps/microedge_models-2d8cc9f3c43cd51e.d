/root/repo/target/debug/deps/microedge_models-2d8cc9f3c43cd51e.d: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/debug/deps/libmicroedge_models-2d8cc9f3c43cd51e.rlib: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/debug/deps/libmicroedge_models-2d8cc9f3c43cd51e.rmeta: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

crates/models/src/lib.rs:
crates/models/src/catalog.rs:
crates/models/src/profile.rs:
