/root/repo/target/debug/deps/perf_probe-ecc111b025ef5aaa.d: crates/bench/src/bin/perf_probe.rs

/root/repo/target/debug/deps/perf_probe-ecc111b025ef5aaa: crates/bench/src/bin/perf_probe.rs

crates/bench/src/bin/perf_probe.rs:
