/root/repo/target/debug/deps/microedge_tpu-13f08b430f0cea1a.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/debug/deps/libmicroedge_tpu-13f08b430f0cea1a.rlib: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/debug/deps/libmicroedge_tpu-13f08b430f0cea1a.rmeta: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
