/root/repo/target/debug/deps/end_to_end-a03afa46378ec4c2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a03afa46378ec4c2: tests/end_to_end.rs

tests/end_to_end.rs:
