/root/repo/target/debug/deps/ablation_serverless-7a795a213e3fba6a.d: crates/bench/benches/ablation_serverless.rs Cargo.toml

/root/repo/target/debug/deps/libablation_serverless-7a795a213e3fba6a.rmeta: crates/bench/benches/ablation_serverless.rs Cargo.toml

crates/bench/benches/ablation_serverless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
