/root/repo/target/debug/deps/repro-6449fe66f5c1224d.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-6449fe66f5c1224d.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
