/root/repo/target/debug/deps/fig7a_admission_overhead-093e09aa633f5e08.d: crates/bench/benches/fig7a_admission_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig7a_admission_overhead-093e09aa633f5e08.rmeta: crates/bench/benches/fig7a_admission_overhead.rs Cargo.toml

crates/bench/benches/fig7a_admission_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
