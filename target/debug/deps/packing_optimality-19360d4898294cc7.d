/root/repo/target/debug/deps/packing_optimality-19360d4898294cc7.d: tests/packing_optimality.rs Cargo.toml

/root/repo/target/debug/deps/libpacking_optimality-19360d4898294cc7.rmeta: tests/packing_optimality.rs Cargo.toml

tests/packing_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
