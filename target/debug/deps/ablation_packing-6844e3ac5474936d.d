/root/repo/target/debug/deps/ablation_packing-6844e3ac5474936d.d: crates/bench/benches/ablation_packing.rs

/root/repo/target/debug/deps/ablation_packing-6844e3ac5474936d: crates/bench/benches/ablation_packing.rs

crates/bench/benches/ablation_packing.rs:
