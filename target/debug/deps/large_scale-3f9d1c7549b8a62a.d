/root/repo/target/debug/deps/large_scale-3f9d1c7549b8a62a.d: tests/large_scale.rs

/root/repo/target/debug/deps/large_scale-3f9d1c7549b8a62a: tests/large_scale.rs

tests/large_scale.rs:
