/root/repo/target/debug/deps/microedge_tpu-35cd2555def15c9d.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_tpu-35cd2555def15c9d.rmeta: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs Cargo.toml

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
