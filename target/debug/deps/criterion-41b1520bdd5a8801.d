/root/repo/target/debug/deps/criterion-41b1520bdd5a8801.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-41b1520bdd5a8801.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
