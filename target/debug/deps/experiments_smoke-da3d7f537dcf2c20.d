/root/repo/target/debug/deps/experiments_smoke-da3d7f537dcf2c20.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-da3d7f537dcf2c20: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
