/root/repo/target/debug/deps/parallel_determinism-c458b0c968fa597f.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-c458b0c968fa597f.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
