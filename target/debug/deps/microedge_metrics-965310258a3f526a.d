/root/repo/target/debug/deps/microedge_metrics-965310258a3f526a.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_metrics-965310258a3f526a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
