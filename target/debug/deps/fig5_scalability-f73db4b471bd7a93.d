/root/repo/target/debug/deps/fig5_scalability-f73db4b471bd7a93.d: crates/bench/benches/fig5_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scalability-f73db4b471bd7a93.rmeta: crates/bench/benches/fig5_scalability.rs Cargo.toml

crates/bench/benches/fig5_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
