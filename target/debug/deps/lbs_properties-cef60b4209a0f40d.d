/root/repo/target/debug/deps/lbs_properties-cef60b4209a0f40d.d: tests/lbs_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblbs_properties-cef60b4209a0f40d.rmeta: tests/lbs_properties.rs Cargo.toml

tests/lbs_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
