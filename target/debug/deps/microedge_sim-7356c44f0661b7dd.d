/root/repo/target/debug/deps/microedge_sim-7356c44f0661b7dd.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_sim-7356c44f0661b7dd.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/series.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
