/root/repo/target/debug/deps/criterion-35856181ea83eafb.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-35856181ea83eafb.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
