/root/repo/target/debug/deps/microedge_baselines-02c78d4cb756121f.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_baselines-02c78d4cb756121f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
