/root/repo/target/debug/deps/microedge_tpu-6bc4795ad113c352.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_tpu-6bc4795ad113c352.rmeta: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs Cargo.toml

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
