/root/repo/target/debug/deps/serde-0917c0c492a9fc0d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-0917c0c492a9fc0d: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
