/root/repo/target/debug/deps/microedge_cluster-327dda8578d44185.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libmicroedge_cluster-327dda8578d44185.rlib: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libmicroedge_cluster-327dda8578d44185.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
