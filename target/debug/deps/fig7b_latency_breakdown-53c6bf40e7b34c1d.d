/root/repo/target/debug/deps/fig7b_latency_breakdown-53c6bf40e7b34c1d.d: crates/bench/benches/fig7b_latency_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig7b_latency_breakdown-53c6bf40e7b34c1d.rmeta: crates/bench/benches/fig7b_latency_breakdown.rs Cargo.toml

crates/bench/benches/fig7b_latency_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
