/root/repo/target/debug/deps/microedge_workloads-0f806ef3f6a3a86e.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_workloads-0f806ef3f6a3a86e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/camera.rs:
crates/workloads/src/coralpie.rs:
crates/workloads/src/dataset.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
