/root/repo/target/debug/deps/microedge-2fee478d40f2c970.d: src/lib.rs

/root/repo/target/debug/deps/microedge-2fee478d40f2c970: src/lib.rs

src/lib.rs:
