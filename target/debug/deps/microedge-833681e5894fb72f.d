/root/repo/target/debug/deps/microedge-833681e5894fb72f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge-833681e5894fb72f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
