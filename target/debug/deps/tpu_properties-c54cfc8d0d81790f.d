/root/repo/target/debug/deps/tpu_properties-c54cfc8d0d81790f.d: tests/tpu_properties.rs

/root/repo/target/debug/deps/tpu_properties-c54cfc8d0d81790f: tests/tpu_properties.rs

tests/tpu_properties.rs:
