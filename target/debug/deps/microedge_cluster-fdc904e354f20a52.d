/root/repo/target/debug/deps/microedge_cluster-fdc904e354f20a52.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_cluster-fdc904e354f20a52.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
