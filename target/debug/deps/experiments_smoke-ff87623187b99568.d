/root/repo/target/debug/deps/experiments_smoke-ff87623187b99568.d: tests/experiments_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_smoke-ff87623187b99568.rmeta: tests/experiments_smoke.rs Cargo.toml

tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
