/root/repo/target/debug/deps/fig6_trace-dc9c3935b3408a17.d: crates/bench/benches/fig6_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_trace-dc9c3935b3408a17.rmeta: crates/bench/benches/fig6_trace.rs Cargo.toml

crates/bench/benches/fig6_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
