/root/repo/target/debug/deps/microedge_models-9c86a8b5a0edbe78.d: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_models-9c86a8b5a0edbe78.rmeta: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/catalog.rs:
crates/models/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
