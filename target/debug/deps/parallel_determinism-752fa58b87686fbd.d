/root/repo/target/debug/deps/parallel_determinism-752fa58b87686fbd.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-752fa58b87686fbd: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
