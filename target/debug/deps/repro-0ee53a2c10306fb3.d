/root/repo/target/debug/deps/repro-0ee53a2c10306fb3.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-0ee53a2c10306fb3.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
