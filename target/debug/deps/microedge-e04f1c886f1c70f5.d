/root/repo/target/debug/deps/microedge-e04f1c886f1c70f5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge-e04f1c886f1c70f5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
