/root/repo/target/debug/deps/failure_injection-10b2a70ac67741b4.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-10b2a70ac67741b4.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
