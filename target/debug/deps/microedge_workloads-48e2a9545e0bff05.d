/root/repo/target/debug/deps/microedge_workloads-48e2a9545e0bff05.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/microedge_workloads-48e2a9545e0bff05: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/camera.rs:
crates/workloads/src/coralpie.rs:
crates/workloads/src/dataset.rs:
crates/workloads/src/trace.rs:
