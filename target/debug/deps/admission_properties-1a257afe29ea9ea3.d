/root/repo/target/debug/deps/admission_properties-1a257afe29ea9ea3.d: tests/admission_properties.rs Cargo.toml

/root/repo/target/debug/deps/libadmission_properties-1a257afe29ea9ea3.rmeta: tests/admission_properties.rs Cargo.toml

tests/admission_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
