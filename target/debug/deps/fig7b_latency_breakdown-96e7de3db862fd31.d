/root/repo/target/debug/deps/fig7b_latency_breakdown-96e7de3db862fd31.d: crates/bench/benches/fig7b_latency_breakdown.rs

/root/repo/target/debug/deps/fig7b_latency_breakdown-96e7de3db862fd31: crates/bench/benches/fig7b_latency_breakdown.rs

crates/bench/benches/fig7b_latency_breakdown.rs:
