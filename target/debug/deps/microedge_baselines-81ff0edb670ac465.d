/root/repo/target/debug/deps/microedge_baselines-81ff0edb670ac465.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/debug/deps/libmicroedge_baselines-81ff0edb670ac465.rlib: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/debug/deps/libmicroedge_baselines-81ff0edb670ac465.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
