/root/repo/target/debug/deps/microedge_metrics-c59b4ef15b4d1925.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/debug/deps/libmicroedge_metrics-c59b4ef15b4d1925.rlib: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/debug/deps/libmicroedge_metrics-c59b4ef15b4d1925.rmeta: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
