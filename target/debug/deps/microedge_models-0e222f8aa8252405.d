/root/repo/target/debug/deps/microedge_models-0e222f8aa8252405.d: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/debug/deps/microedge_models-0e222f8aa8252405: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

crates/models/src/lib.rs:
crates/models/src/catalog.rs:
crates/models/src/profile.rs:
