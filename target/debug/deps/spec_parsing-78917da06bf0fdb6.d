/root/repo/target/debug/deps/spec_parsing-78917da06bf0fdb6.d: tests/spec_parsing.rs

/root/repo/target/debug/deps/spec_parsing-78917da06bf0fdb6: tests/spec_parsing.rs

tests/spec_parsing.rs:
