/root/repo/target/debug/deps/microedge_bench-d49bc315b92a7987.d: crates/bench/src/lib.rs crates/bench/src/admission_overhead.rs crates/bench/src/cost.rs crates/bench/src/csv.rs crates/bench/src/diff_detector.rs crates/bench/src/fig1.rs crates/bench/src/latency_breakdown.rs crates/bench/src/packing.rs crates/bench/src/par.rs crates/bench/src/perf.rs crates/bench/src/pipeline_ablation.rs crates/bench/src/runner.rs crates/bench/src/scalability.rs crates/bench/src/tail_latency.rs crates/bench/src/trace_study.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_bench-d49bc315b92a7987.rmeta: crates/bench/src/lib.rs crates/bench/src/admission_overhead.rs crates/bench/src/cost.rs crates/bench/src/csv.rs crates/bench/src/diff_detector.rs crates/bench/src/fig1.rs crates/bench/src/latency_breakdown.rs crates/bench/src/packing.rs crates/bench/src/par.rs crates/bench/src/perf.rs crates/bench/src/pipeline_ablation.rs crates/bench/src/runner.rs crates/bench/src/scalability.rs crates/bench/src/tail_latency.rs crates/bench/src/trace_study.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/admission_overhead.rs:
crates/bench/src/cost.rs:
crates/bench/src/csv.rs:
crates/bench/src/diff_detector.rs:
crates/bench/src/fig1.rs:
crates/bench/src/latency_breakdown.rs:
crates/bench/src/packing.rs:
crates/bench/src/par.rs:
crates/bench/src/perf.rs:
crates/bench/src/pipeline_ablation.rs:
crates/bench/src/runner.rs:
crates/bench/src/scalability.rs:
crates/bench/src/tail_latency.rs:
crates/bench/src/trace_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
