/root/repo/target/debug/deps/repro-9de0e7067d36bbea.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9de0e7067d36bbea: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
