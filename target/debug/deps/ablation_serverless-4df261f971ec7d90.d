/root/repo/target/debug/deps/ablation_serverless-4df261f971ec7d90.d: crates/bench/benches/ablation_serverless.rs

/root/repo/target/debug/deps/ablation_serverless-4df261f971ec7d90: crates/bench/benches/ablation_serverless.rs

crates/bench/benches/ablation_serverless.rs:
