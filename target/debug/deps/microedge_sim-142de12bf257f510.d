/root/repo/target/debug/deps/microedge_sim-142de12bf257f510.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/microedge_sim-142de12bf257f510: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/series.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
