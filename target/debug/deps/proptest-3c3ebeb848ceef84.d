/root/repo/target/debug/deps/proptest-3c3ebeb848ceef84.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-3c3ebeb848ceef84.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
