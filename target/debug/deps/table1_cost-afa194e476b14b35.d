/root/repo/target/debug/deps/table1_cost-afa194e476b14b35.d: crates/bench/benches/table1_cost.rs

/root/repo/target/debug/deps/table1_cost-afa194e476b14b35: crates/bench/benches/table1_cost.rs

crates/bench/benches/table1_cost.rs:
