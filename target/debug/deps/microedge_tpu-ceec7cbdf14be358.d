/root/repo/target/debug/deps/microedge_tpu-ceec7cbdf14be358.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/debug/deps/microedge_tpu-ceec7cbdf14be358: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
