/root/repo/target/debug/deps/microbenchmarks-c5ca90b184f7d38b.d: crates/bench/benches/microbenchmarks.rs

/root/repo/target/debug/deps/microbenchmarks-c5ca90b184f7d38b: crates/bench/benches/microbenchmarks.rs

crates/bench/benches/microbenchmarks.rs:
