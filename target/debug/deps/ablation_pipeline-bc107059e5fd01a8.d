/root/repo/target/debug/deps/ablation_pipeline-bc107059e5fd01a8.d: crates/bench/benches/ablation_pipeline.rs

/root/repo/target/debug/deps/ablation_pipeline-bc107059e5fd01a8: crates/bench/benches/ablation_pipeline.rs

crates/bench/benches/ablation_pipeline.rs:
