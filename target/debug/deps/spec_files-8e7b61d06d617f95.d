/root/repo/target/debug/deps/spec_files-8e7b61d06d617f95.d: tests/spec_files.rs tests/../examples/specs/coral-pie-camera.yaml tests/../examples/specs/bodypix-camera.yaml tests/../examples/specs/segmentation-pipeline.yaml tests/../examples/specs/plain-service.yaml tests/../examples/specs/fleet.yaml Cargo.toml

/root/repo/target/debug/deps/libspec_files-8e7b61d06d617f95.rmeta: tests/spec_files.rs tests/../examples/specs/coral-pie-camera.yaml tests/../examples/specs/bodypix-camera.yaml tests/../examples/specs/segmentation-pipeline.yaml tests/../examples/specs/plain-service.yaml tests/../examples/specs/fleet.yaml Cargo.toml

tests/spec_files.rs:
tests/../examples/specs/coral-pie-camera.yaml:
tests/../examples/specs/bodypix-camera.yaml:
tests/../examples/specs/segmentation-pipeline.yaml:
tests/../examples/specs/plain-service.yaml:
tests/../examples/specs/fleet.yaml:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
