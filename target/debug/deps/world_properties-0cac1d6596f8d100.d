/root/repo/target/debug/deps/world_properties-0cac1d6596f8d100.d: tests/world_properties.rs Cargo.toml

/root/repo/target/debug/deps/libworld_properties-0cac1d6596f8d100.rmeta: tests/world_properties.rs Cargo.toml

tests/world_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
