/root/repo/target/debug/deps/microedge_orch-7e869478ea83a42b.d: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libmicroedge_orch-7e869478ea83a42b.rmeta: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs Cargo.toml

crates/orch/src/lib.rs:
crates/orch/src/control_latency.rs:
crates/orch/src/events.rs:
crates/orch/src/lifecycle.rs:
crates/orch/src/pod.rs:
crates/orch/src/scheduler.rs:
crates/orch/src/spec.rs:
crates/orch/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
