/root/repo/target/debug/examples/offline_profiler-410684c1ad1f1f96.d: examples/offline_profiler.rs Cargo.toml

/root/repo/target/debug/examples/liboffline_profiler-410684c1ad1f1f96.rmeta: examples/offline_profiler.rs Cargo.toml

examples/offline_profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
