/root/repo/target/debug/examples/vehicle_tracking-2b8b6bf8137d3672.d: examples/vehicle_tracking.rs

/root/repo/target/debug/examples/vehicle_tracking-2b8b6bf8137d3672: examples/vehicle_tracking.rs

examples/vehicle_tracking.rs:
