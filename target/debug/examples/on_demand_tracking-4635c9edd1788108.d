/root/repo/target/debug/examples/on_demand_tracking-4635c9edd1788108.d: examples/on_demand_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libon_demand_tracking-4635c9edd1788108.rmeta: examples/on_demand_tracking.rs Cargo.toml

examples/on_demand_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
