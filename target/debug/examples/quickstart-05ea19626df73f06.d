/root/repo/target/debug/examples/quickstart-05ea19626df73f06.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-05ea19626df73f06.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
