/root/repo/target/debug/examples/capacity_planner-0e8539c633bdc6b0.d: examples/capacity_planner.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planner-0e8539c633bdc6b0.rmeta: examples/capacity_planner.rs Cargo.toml

examples/capacity_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
