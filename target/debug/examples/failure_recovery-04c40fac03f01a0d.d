/root/repo/target/debug/examples/failure_recovery-04c40fac03f01a0d.d: examples/failure_recovery.rs

/root/repo/target/debug/examples/failure_recovery-04c40fac03f01a0d: examples/failure_recovery.rs

examples/failure_recovery.rs:
