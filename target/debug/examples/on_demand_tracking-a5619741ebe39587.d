/root/repo/target/debug/examples/on_demand_tracking-a5619741ebe39587.d: examples/on_demand_tracking.rs

/root/repo/target/debug/examples/on_demand_tracking-a5619741ebe39587: examples/on_demand_tracking.rs

examples/on_demand_tracking.rs:
