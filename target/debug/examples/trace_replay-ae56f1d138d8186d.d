/root/repo/target/debug/examples/trace_replay-ae56f1d138d8186d.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-ae56f1d138d8186d.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
