/root/repo/target/debug/examples/trace_replay-7883003f5ac09f90.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-7883003f5ac09f90: examples/trace_replay.rs

examples/trace_replay.rs:
