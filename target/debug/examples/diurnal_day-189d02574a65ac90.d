/root/repo/target/debug/examples/diurnal_day-189d02574a65ac90.d: examples/diurnal_day.rs Cargo.toml

/root/repo/target/debug/examples/libdiurnal_day-189d02574a65ac90.rmeta: examples/diurnal_day.rs Cargo.toml

examples/diurnal_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
