/root/repo/target/debug/examples/capacity_planner-f85b86fc136af074.d: examples/capacity_planner.rs

/root/repo/target/debug/examples/capacity_planner-f85b86fc136af074: examples/capacity_planner.rs

examples/capacity_planner.rs:
