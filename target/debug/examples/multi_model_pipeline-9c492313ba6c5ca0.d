/root/repo/target/debug/examples/multi_model_pipeline-9c492313ba6c5ca0.d: examples/multi_model_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_model_pipeline-9c492313ba6c5ca0.rmeta: examples/multi_model_pipeline.rs Cargo.toml

examples/multi_model_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
