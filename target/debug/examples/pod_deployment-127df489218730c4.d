/root/repo/target/debug/examples/pod_deployment-127df489218730c4.d: examples/pod_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libpod_deployment-127df489218730c4.rmeta: examples/pod_deployment.rs Cargo.toml

examples/pod_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
