/root/repo/target/debug/examples/person_segmentation-0119bd9b1b9bcc49.d: examples/person_segmentation.rs Cargo.toml

/root/repo/target/debug/examples/libperson_segmentation-0119bd9b1b9bcc49.rmeta: examples/person_segmentation.rs Cargo.toml

examples/person_segmentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
