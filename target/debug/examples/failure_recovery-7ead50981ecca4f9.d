/root/repo/target/debug/examples/failure_recovery-7ead50981ecca4f9.d: examples/failure_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_recovery-7ead50981ecca4f9.rmeta: examples/failure_recovery.rs Cargo.toml

examples/failure_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
