/root/repo/target/debug/examples/quickstart-79b05a1300d9d4a6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-79b05a1300d9d4a6: examples/quickstart.rs

examples/quickstart.rs:
