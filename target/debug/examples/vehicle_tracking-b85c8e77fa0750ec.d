/root/repo/target/debug/examples/vehicle_tracking-b85c8e77fa0750ec.d: examples/vehicle_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libvehicle_tracking-b85c8e77fa0750ec.rmeta: examples/vehicle_tracking.rs Cargo.toml

examples/vehicle_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
