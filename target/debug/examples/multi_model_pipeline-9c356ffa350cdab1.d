/root/repo/target/debug/examples/multi_model_pipeline-9c356ffa350cdab1.d: examples/multi_model_pipeline.rs

/root/repo/target/debug/examples/multi_model_pipeline-9c356ffa350cdab1: examples/multi_model_pipeline.rs

examples/multi_model_pipeline.rs:
