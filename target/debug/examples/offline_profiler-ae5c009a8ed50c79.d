/root/repo/target/debug/examples/offline_profiler-ae5c009a8ed50c79.d: examples/offline_profiler.rs

/root/repo/target/debug/examples/offline_profiler-ae5c009a8ed50c79: examples/offline_profiler.rs

examples/offline_profiler.rs:
