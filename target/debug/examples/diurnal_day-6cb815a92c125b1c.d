/root/repo/target/debug/examples/diurnal_day-6cb815a92c125b1c.d: examples/diurnal_day.rs

/root/repo/target/debug/examples/diurnal_day-6cb815a92c125b1c: examples/diurnal_day.rs

examples/diurnal_day.rs:
