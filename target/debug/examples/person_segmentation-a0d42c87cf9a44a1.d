/root/repo/target/debug/examples/person_segmentation-a0d42c87cf9a44a1.d: examples/person_segmentation.rs

/root/repo/target/debug/examples/person_segmentation-a0d42c87cf9a44a1: examples/person_segmentation.rs

examples/person_segmentation.rs:
