/root/repo/target/debug/examples/pod_deployment-42ee9519370d3c98.d: examples/pod_deployment.rs

/root/repo/target/debug/examples/pod_deployment-42ee9519370d3c98: examples/pod_deployment.rs

examples/pod_deployment.rs:
