/root/repo/target/release/deps/microedge_baselines-cda28d440ce1d293.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/release/deps/libmicroedge_baselines-cda28d440ce1d293.rlib: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/release/deps/libmicroedge_baselines-cda28d440ce1d293.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
