/root/repo/target/release/deps/serde-1362ebad196ce886.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1362ebad196ce886.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1362ebad196ce886.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
