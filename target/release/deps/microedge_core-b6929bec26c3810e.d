/root/repo/target/release/deps/microedge_core-b6929bec26c3810e.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

/root/repo/target/release/deps/libmicroedge_core-b6929bec26c3810e.rlib: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

/root/repo/target/release/deps/libmicroedge_core-b6929bec26c3810e.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/lbs.rs:
crates/core/src/pool.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/units.rs:
