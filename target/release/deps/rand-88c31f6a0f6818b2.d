/root/repo/target/release/deps/rand-88c31f6a0f6818b2.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-88c31f6a0f6818b2.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-88c31f6a0f6818b2.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
