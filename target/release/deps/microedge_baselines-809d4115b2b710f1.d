/root/repo/target/release/deps/microedge_baselines-809d4115b2b710f1.d: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/release/deps/libmicroedge_baselines-809d4115b2b710f1.rlib: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

/root/repo/target/release/deps/libmicroedge_baselines-809d4115b2b710f1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dedicated.rs crates/baselines/src/serverless.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dedicated.rs:
crates/baselines/src/serverless.rs:
