/root/repo/target/release/deps/microedge-119f6dfaf6283eca.d: src/lib.rs

/root/repo/target/release/deps/libmicroedge-119f6dfaf6283eca.rlib: src/lib.rs

/root/repo/target/release/deps/libmicroedge-119f6dfaf6283eca.rmeta: src/lib.rs

src/lib.rs:
