/root/repo/target/release/deps/microedge_cluster-e3fbca93ff0e9cc8.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libmicroedge_cluster-e3fbca93ff0e9cc8.rlib: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libmicroedge_cluster-e3fbca93ff0e9cc8.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
