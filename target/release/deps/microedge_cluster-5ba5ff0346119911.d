/root/repo/target/release/deps/microedge_cluster-5ba5ff0346119911.d: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libmicroedge_cluster-5ba5ff0346119911.rlib: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libmicroedge_cluster-5ba5ff0346119911.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cost.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/topology.rs:
