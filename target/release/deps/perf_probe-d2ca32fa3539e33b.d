/root/repo/target/release/deps/perf_probe-d2ca32fa3539e33b.d: crates/bench/src/bin/perf_probe.rs

/root/repo/target/release/deps/perf_probe-d2ca32fa3539e33b: crates/bench/src/bin/perf_probe.rs

crates/bench/src/bin/perf_probe.rs:
