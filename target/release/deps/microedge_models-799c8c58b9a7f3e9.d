/root/repo/target/release/deps/microedge_models-799c8c58b9a7f3e9.d: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/release/deps/libmicroedge_models-799c8c58b9a7f3e9.rlib: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/release/deps/libmicroedge_models-799c8c58b9a7f3e9.rmeta: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

crates/models/src/lib.rs:
crates/models/src/catalog.rs:
crates/models/src/profile.rs:
