/root/repo/target/release/deps/perf_probe-652bef9bc541550c.d: crates/bench/src/bin/perf_probe.rs

/root/repo/target/release/deps/perf_probe-652bef9bc541550c: crates/bench/src/bin/perf_probe.rs

crates/bench/src/bin/perf_probe.rs:
