/root/repo/target/release/deps/microedge_bench-8f39fe98079ae748.d: crates/bench/src/lib.rs crates/bench/src/admission_overhead.rs crates/bench/src/cost.rs crates/bench/src/csv.rs crates/bench/src/diff_detector.rs crates/bench/src/fig1.rs crates/bench/src/latency_breakdown.rs crates/bench/src/packing.rs crates/bench/src/par.rs crates/bench/src/perf.rs crates/bench/src/pipeline_ablation.rs crates/bench/src/runner.rs crates/bench/src/scalability.rs crates/bench/src/tail_latency.rs crates/bench/src/trace_study.rs

/root/repo/target/release/deps/libmicroedge_bench-8f39fe98079ae748.rlib: crates/bench/src/lib.rs crates/bench/src/admission_overhead.rs crates/bench/src/cost.rs crates/bench/src/csv.rs crates/bench/src/diff_detector.rs crates/bench/src/fig1.rs crates/bench/src/latency_breakdown.rs crates/bench/src/packing.rs crates/bench/src/par.rs crates/bench/src/perf.rs crates/bench/src/pipeline_ablation.rs crates/bench/src/runner.rs crates/bench/src/scalability.rs crates/bench/src/tail_latency.rs crates/bench/src/trace_study.rs

/root/repo/target/release/deps/libmicroedge_bench-8f39fe98079ae748.rmeta: crates/bench/src/lib.rs crates/bench/src/admission_overhead.rs crates/bench/src/cost.rs crates/bench/src/csv.rs crates/bench/src/diff_detector.rs crates/bench/src/fig1.rs crates/bench/src/latency_breakdown.rs crates/bench/src/packing.rs crates/bench/src/par.rs crates/bench/src/perf.rs crates/bench/src/pipeline_ablation.rs crates/bench/src/runner.rs crates/bench/src/scalability.rs crates/bench/src/tail_latency.rs crates/bench/src/trace_study.rs

crates/bench/src/lib.rs:
crates/bench/src/admission_overhead.rs:
crates/bench/src/cost.rs:
crates/bench/src/csv.rs:
crates/bench/src/diff_detector.rs:
crates/bench/src/fig1.rs:
crates/bench/src/latency_breakdown.rs:
crates/bench/src/packing.rs:
crates/bench/src/par.rs:
crates/bench/src/perf.rs:
crates/bench/src/pipeline_ablation.rs:
crates/bench/src/runner.rs:
crates/bench/src/scalability.rs:
crates/bench/src/tail_latency.rs:
crates/bench/src/trace_study.rs:
