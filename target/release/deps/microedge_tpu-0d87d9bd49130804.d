/root/repo/target/release/deps/microedge_tpu-0d87d9bd49130804.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/release/deps/libmicroedge_tpu-0d87d9bd49130804.rlib: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/release/deps/libmicroedge_tpu-0d87d9bd49130804.rmeta: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
