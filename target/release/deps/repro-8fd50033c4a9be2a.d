/root/repo/target/release/deps/repro-8fd50033c4a9be2a.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-8fd50033c4a9be2a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
