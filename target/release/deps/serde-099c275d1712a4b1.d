/root/repo/target/release/deps/serde-099c275d1712a4b1.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-099c275d1712a4b1.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-099c275d1712a4b1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
