/root/repo/target/release/deps/microedge_metrics-9642416888016313.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/release/deps/libmicroedge_metrics-9642416888016313.rlib: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/release/deps/libmicroedge_metrics-9642416888016313.rmeta: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
