/root/repo/target/release/deps/microedge_metrics-fc8e24dd215602ad.d: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/release/deps/libmicroedge_metrics-fc8e24dd215602ad.rlib: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

/root/repo/target/release/deps/libmicroedge_metrics-fc8e24dd215602ad.rmeta: crates/metrics/src/lib.rs crates/metrics/src/latency.rs crates/metrics/src/report.rs crates/metrics/src/throughput.rs crates/metrics/src/utilization.rs

crates/metrics/src/lib.rs:
crates/metrics/src/latency.rs:
crates/metrics/src/report.rs:
crates/metrics/src/throughput.rs:
crates/metrics/src/utilization.rs:
