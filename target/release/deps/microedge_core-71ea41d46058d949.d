/root/repo/target/release/deps/microedge_core-71ea41d46058d949.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

/root/repo/target/release/deps/libmicroedge_core-71ea41d46058d949.rlib: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

/root/repo/target/release/deps/libmicroedge_core-71ea41d46058d949.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/lbs.rs crates/core/src/pool.rs crates/core/src/runtime.rs crates/core/src/scheduler.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/lbs.rs:
crates/core/src/pool.rs:
crates/core/src/runtime.rs:
crates/core/src/scheduler.rs:
crates/core/src/units.rs:
