/root/repo/target/release/deps/microedge_workloads-661ac54f1ee5c2ae.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libmicroedge_workloads-661ac54f1ee5c2ae.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libmicroedge_workloads-661ac54f1ee5c2ae.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/camera.rs:
crates/workloads/src/coralpie.rs:
crates/workloads/src/dataset.rs:
crates/workloads/src/trace.rs:
