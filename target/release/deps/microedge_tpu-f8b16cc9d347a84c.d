/root/repo/target/release/deps/microedge_tpu-f8b16cc9d347a84c.d: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/release/deps/libmicroedge_tpu-f8b16cc9d347a84c.rlib: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

/root/repo/target/release/deps/libmicroedge_tpu-f8b16cc9d347a84c.rmeta: crates/tpu/src/lib.rs crates/tpu/src/cocompile.rs crates/tpu/src/device.rs crates/tpu/src/spec.rs

crates/tpu/src/lib.rs:
crates/tpu/src/cocompile.rs:
crates/tpu/src/device.rs:
crates/tpu/src/spec.rs:
