/root/repo/target/release/deps/microedge_models-5c19d2c8feb10191.d: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/release/deps/libmicroedge_models-5c19d2c8feb10191.rlib: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

/root/repo/target/release/deps/libmicroedge_models-5c19d2c8feb10191.rmeta: crates/models/src/lib.rs crates/models/src/catalog.rs crates/models/src/profile.rs

crates/models/src/lib.rs:
crates/models/src/catalog.rs:
crates/models/src/profile.rs:
