/root/repo/target/release/deps/microedge_sim-14d947ffe5efa7e9.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmicroedge_sim-14d947ffe5efa7e9.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmicroedge_sim-14d947ffe5efa7e9.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/series.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/series.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
