/root/repo/target/release/deps/microedge_workloads-01c2fc0b9a5a77b0.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libmicroedge_workloads-01c2fc0b9a5a77b0.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libmicroedge_workloads-01c2fc0b9a5a77b0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/camera.rs crates/workloads/src/coralpie.rs crates/workloads/src/dataset.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/camera.rs:
crates/workloads/src/coralpie.rs:
crates/workloads/src/dataset.rs:
crates/workloads/src/trace.rs:
