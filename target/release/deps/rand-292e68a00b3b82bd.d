/root/repo/target/release/deps/rand-292e68a00b3b82bd.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-292e68a00b3b82bd.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-292e68a00b3b82bd.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
