/root/repo/target/release/deps/microedge_orch-8e6548f02aeede5f.d: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs

/root/repo/target/release/deps/libmicroedge_orch-8e6548f02aeede5f.rlib: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs

/root/repo/target/release/deps/libmicroedge_orch-8e6548f02aeede5f.rmeta: crates/orch/src/lib.rs crates/orch/src/control_latency.rs crates/orch/src/events.rs crates/orch/src/lifecycle.rs crates/orch/src/pod.rs crates/orch/src/scheduler.rs crates/orch/src/spec.rs crates/orch/src/state.rs

crates/orch/src/lib.rs:
crates/orch/src/control_latency.rs:
crates/orch/src/events.rs:
crates/orch/src/lifecycle.rs:
crates/orch/src/pod.rs:
crates/orch/src/scheduler.rs:
crates/orch/src/spec.rs:
crates/orch/src/state.rs:
