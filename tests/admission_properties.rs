//! Property-based tests for the admission-control invariants (Algorithm 1).

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::admission::{AdmissionPolicy, BestFit, FirstFit, NextFit, WorstFit};
use microedge::core::config::Features;
use microedge::core::pool::{Allocation, TpuPool};
use microedge::core::units::TpuUnits;
use microedge::models::catalog::{fig1_models, Catalog};
use microedge::models::profile::ModelProfile;
use microedge::tpu::spec::TpuSpec;

fn pool(tpus: u32) -> TpuPool {
    let cluster = ClusterBuilder::new().trpis(tpus).vrpis(1).build();
    TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
}

fn models() -> Vec<ModelProfile> {
    fig1_models()
}

/// A random request stream: (model index, micro-units, features).
fn request_strategy() -> impl Strategy<Value = Vec<(usize, u64, bool, bool)>> {
    prop::collection::vec(
        (
            0..8usize,
            50_000u64..1_500_000,
            prop::bool::ANY,
            prop::bool::ANY,
        ),
        1..60,
    )
}

fn check_invariants(pool: &TpuPool, catalog: &Catalog) {
    for account in pool.accounts() {
        // TPU Units Rule: no TPU oversubscribed.
        assert!(
            account.load() <= TpuUnits::ONE,
            "{} oversubscribed at {}",
            account.id(),
            account.load()
        );
        // Model Size Rule: live model parameter data fits the budget,
        // except for a TPU whose *single* model alone exceeds it (partial
        // caching handles that case on-device).
        let live = account.live_models();
        let bytes: u64 = live.iter().map(|m| catalog.expect(m).param_bytes()).sum();
        if live.len() > 1 {
            assert!(
                bytes <= pool.param_budget(),
                "{} violates the Model Size Rule with {bytes} bytes",
                account.id()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No sequence of admissions can violate the TPU Units Rule or the
    /// Model Size Rule, under any policy.
    #[test]
    fn no_policy_violates_the_rules(requests in request_strategy(), policy_idx in 0..4usize) {
        let catalog = Catalog::builtin();
        let models = models();
        let mut pool = pool(5);
        let mut policy: Box<dyn AdmissionPolicy> = match policy_idx {
            0 => Box::new(FirstFit::new()),
            1 => Box::new(BestFit::new()),
            2 => Box::new(WorstFit::new()),
            _ => Box::new(NextFit::new()),
        };
        for (model_idx, micro, wp, cc) in requests {
            let features = Features { workload_partitioning: wp, co_compiling: cc };
            let model = &models[model_idx];
            let units = TpuUnits::from_micro(micro);
            if let Some(plan) = policy.plan(&pool, model, units, features) {
                // The plan grants exactly what was asked.
                let total: TpuUnits = plan.iter().map(Allocation::units).sum();
                prop_assert_eq!(total, units);
                pool.commit(model, &plan);
            }
            check_invariants(&pool, &catalog);
        }
    }

    /// Workload partitioning never splits a request that fits whole on one
    /// TPU (Algorithm 1 tries the unsplit placement first).
    #[test]
    fn unsplit_placement_preferred(micro in 50_000u64..=1_000_000) {
        let models = models();
        let mut policy = FirstFit::new();
        let pool = pool(3);
        let units = TpuUnits::from_micro(micro);
        let plan = policy
            .plan(&pool, &models[0], units, Features::all())
            .expect("an empty pool admits anything ≤ 3 units");
        prop_assert_eq!(plan.len(), 1, "fits whole on an empty TPU");
    }

    /// commit / release is an exact inverse for pool load.
    #[test]
    fn commit_release_roundtrip(requests in request_strategy()) {
        let models = models();
        let mut pool = pool(4);
        let mut policy = FirstFit::new();
        let mut committed: Vec<(ModelProfile, Vec<Allocation>)> = Vec::new();
        for (model_idx, micro, _, _) in requests {
            let model = &models[model_idx];
            let units = TpuUnits::from_micro(micro);
            if let Some(plan) = policy.plan(&pool, model, units, Features::all()) {
                pool.commit(model, &plan);
                committed.push((model.clone(), plan));
            }
        }
        for (model, plan) in committed.iter().rev() {
            pool.release(model.id(), plan);
        }
        for account in pool.accounts() {
            prop_assert_eq!(account.load(), TpuUnits::ZERO);
            prop_assert!(account.live_models().is_empty());
        }
    }

    /// Rejection is honest: when First-Fit with partitioning rejects, the
    /// pool genuinely lacks capacity for the request on admissible TPUs.
    #[test]
    fn rejection_implies_no_capacity(
        loads in prop::collection::vec(0u64..=1_000_000, 4),
        micro in 1u64..=1_000_000,
    ) {
        let models = models();
        let model = &models[0];
        let mut pool = pool(4);
        for (i, &load) in loads.iter().enumerate() {
            if load > 0 {
                let account_id = pool.accounts()[i].id();
                pool.commit(model, &[Allocation::new(account_id, TpuUnits::from_micro(load))]);
            }
        }
        let mut policy = FirstFit::new();
        let units = TpuUnits::from_micro(micro);
        if policy.plan(&pool, model, units, Features::all()).is_none() {
            prop_assert!(
                pool.total_free_units() < units,
                "rejected {units} with {} free",
                pool.total_free_units()
            );
        }
    }
}

/// Deterministic regression: the exact paper example from §4.3.
#[test]
fn paper_example_three_pods_two_tpus() {
    let models = models();
    let model = &models[1]; // ssd-mobilenet-v2
    let mut pool = pool(2);
    let mut policy = FirstFit::new();
    let u06 = TpuUnits::from_f64(0.6);
    for _ in 0..3 {
        let plan = policy
            .plan(&pool, model, u06, Features::all())
            .expect("three 0.6-unit pods fit two TPUs with partitioning");
        pool.commit(model, &plan);
    }
    assert_eq!(pool.used_tpus(), 2);
    // Without partitioning the third pod is rejected on two TPUs.
    let mut pool = pool2();
    let mut policy = FirstFit::new();
    for i in 0..3 {
        let plan = policy.plan(&pool, model, u06, Features::co_compiling_only());
        if i < 2 {
            pool.commit(model, &plan.expect("first two fit"));
        } else {
            assert!(plan.is_none(), "third 0.6 needs partitioning");
        }
    }
}

fn pool2() -> TpuPool {
    pool(2)
}
