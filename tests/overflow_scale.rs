//! The 100k-camera sharded tier under arithmetic overflow traps.
//!
//! `[profile.test]` enables `overflow-checks`, but the ordinary test run
//! only reaches a few hundred streams; the counters most likely to wrap
//! (event sequence numbers, epoch export tallies, micro-unit sums over a
//! 2 400-TPU fleet) need the real tier to get anywhere near their range.
//! CI runs this `#[ignore]`d test in an optimised build with
//! `RUSTFLAGS="-C overflow-checks=on"`, so every add/mul on the replay hot
//! path traps instead of wrapping silently into a plausible artifact.
//!
//! The pinned expectations mirror the committed `BENCH_scale.json` sharded
//! 100k point, so a wrap that *doesn't* trap but changes a tally still
//! fails loudly.

use microedge_bench::scale::SCALE_FRAME_LIMIT;
use microedge_bench::scale_sharded::run_sharded_point_with_workers;

#[test]
#[ignore = "full 100k tier; CI runs it with RUSTFLAGS=\"-C overflow-checks=on\" --release"]
fn sharded_100k_tier_runs_clean_under_overflow_checks() {
    let point = run_sharded_point_with_workers(100_000, 50, SCALE_FRAME_LIMIT, 8);
    assert_eq!(point.streams, 100_000);
    assert_eq!(point.frames, 500_000, "every camera completes every frame");
    assert_eq!(point.events, 1_562_500, "pinned by BENCH_scale.json");
    assert_eq!(
        point.exports, 62_500,
        "every 8th stream exports cross-shard"
    );
}
