//! Chaos property tests: random interleavings of fault injection,
//! repairs, admissions, removals, and time advancement under the
//! self-healing configuration must preserve the global invariants —
//! no TPU oversubscription, no leaked units, every stream in exactly
//! one lifecycle phase — and identical scenarios must replay
//! bit-for-bit.

use proptest::prelude::*;

use microedge::cluster::node::NodeId;
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::faults::{
    ChaosConfig, ClassRates, FaultEvent, FaultKind, FaultModel, FaultSchedule,
};
use microedge::core::runtime::{StreamId, StreamPhase, StreamSpec, World};
use microedge::core::units::TpuUnits;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::tpu::device::TpuId;
use microedge::workloads::apps::CameraApp;

const TPUS: u32 = 3;

fn chaos_world() -> World {
    let cluster = ClusterBuilder::new().trpis(TPUS).vrpis(12).build();
    let mut world = World::new(cluster, Features::all());
    world.enable_chaos(ChaosConfig::heal_degrade());
    world
}

#[derive(Debug, Clone)]
enum Op {
    /// Admit a camera of one of the three trace apps.
    Admit(usize),
    /// Remove the n-th admitted stream, if still around.
    Remove(usize),
    /// Fail a component (0 = TPU, 1 = node, 2 = uplink) and schedule its
    /// repair after the given delay in milliseconds.
    Fault(u8, usize, u64),
    /// Advance simulated time (crossing heartbeat/lease boundaries).
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..3usize).prop_map(Op::Admit),
            1 => (0..24usize).prop_map(Op::Remove),
            2 => (0u8..3, 0..16usize, 500u64..30_000)
                .prop_map(|(class, target, delay)| Op::Fault(class, target, delay)),
            3 => (50u64..6_000).prop_map(Op::Advance),
        ],
        1..40,
    )
}

/// The invariants that must hold at every observable instant, fault or
/// no fault: the TPU Units Rule, unit conservation against the set of
/// running pods (the replayed oracle), stream-phase accounting, and the
/// pending-restart queue only holding parked streams.
fn check_invariants(world: &World, admitted: &[StreamId]) {
    let pool = world.scheduler().pool();
    let mut total_load = TpuUnits::ZERO;
    for account in pool.accounts() {
        assert!(account.load() <= TpuUnits::ONE, "TPU Units Rule violated");
        total_load += account.load();
    }
    let assigned: TpuUnits = world
        .orchestrator()
        .running_pods()
        .iter()
        .filter_map(|&pod| world.scheduler().assignment(pod))
        .flatten()
        .map(|a| a.units())
        .sum();
    assert_eq!(
        total_load, assigned,
        "pool load must equal the running pods' assignments"
    );
    // Every admitted stream is in exactly one phase, and the live ones are
    // exactly the active count.
    let live = admitted
        .iter()
        .filter(|&&id| {
            world
                .stream_phase(id)
                .expect("every admitted stream has a phase")
                .is_live()
        })
        .count();
    assert_eq!(world.active_streams(), live);
    for id in world.pending_restarts() {
        assert_eq!(world.stream_phase(id), Some(StreamPhase::Parked));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random churn of faults, repairs, admissions, and removals never
    /// oversubscribes a TPU, leaks units, or corrupts phase accounting —
    /// while events are in flight and after the dust settles.
    #[test]
    fn fault_churn_preserves_invariants(ops in op_strategy()) {
        let apps = CameraApp::trace_apps();
        let mut world = chaos_world();
        let nodes: Vec<NodeId> = world
            .orchestrator()
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.id())
            .collect();
        let mut admitted: Vec<StreamId> = Vec::new();
        let mut seq = 0u32;

        for op in ops {
            match op {
                Op::Admit(app_idx) => {
                    let app = &apps[app_idx];
                    let spec = StreamSpec::builder(
                        &format!("churn-{seq}"),
                        app.model().as_str(),
                    )
                    .units(app.units())
                    .fps(app.fps())
                    .build();
                    seq += 1;
                    if let Ok(id) = world.admit_stream(spec) {
                        admitted.push(id);
                    }
                }
                Op::Remove(idx) => {
                    if let Some(&id) = admitted.get(idx) {
                        // May be parked or already gone; every outcome is
                        // legal, the invariants below are not optional.
                        let _ = world.remove_stream(id);
                    }
                }
                Op::Fault(class, target, repair_ms) => {
                    let at = world.now() + SimDuration::from_millis(1);
                    let back = at + SimDuration::from_millis(repair_ms);
                    let (fail, repair) = match class {
                        0 => {
                            let tpu = TpuId(target as u32 % TPUS);
                            (FaultKind::TpuFail(tpu), FaultKind::TpuRepair(tpu))
                        }
                        1 => {
                            let node = nodes[target % nodes.len()];
                            (FaultKind::NodeFail(node), FaultKind::NodeRepair(node))
                        }
                        _ => {
                            let node = nodes[target % nodes.len()];
                            (FaultKind::LinkFail(node), FaultKind::LinkRepair(node))
                        }
                    };
                    world.inject_faults(&FaultSchedule::scripted(vec![
                        FaultEvent { at, kind: fail },
                        FaultEvent { at: back, kind: repair },
                    ]));
                }
                Op::Advance(ms) => {
                    let next = world.now() + SimDuration::from_millis(ms);
                    world.run_until(next);
                }
            }
            // Units of crashed/parked pods are held until the reclamation
            // poll; run it before the conservation check.
            world.poll_reclamation();
            check_invariants(&world, &admitted);
        }

        // Let every repair land and the reconciler drain, then check the
        // final state: the invariants still hold and no stream is stuck in
        // a transient phase once all hardware is back.
        let end = world.now() + SimDuration::from_secs(120);
        world.run_until(end);
        world.poll_reclamation();
        check_invariants(&world, &admitted);
        for &id in &admitted {
            let phase = world.stream_phase(id).unwrap();
            assert_ne!(
                phase,
                StreamPhase::Interrupted,
                "all hardware repaired, nothing may stay interrupted"
            );
        }
        let results = world.finish(end);
        for &id in &admitted {
            prop_assert!(results.stream_phase(id).is_some());
        }
    }

    /// A generated MTBF/MTTR schedule replays bit-for-bit: two worlds fed
    /// the identical seed produce identical event counts, phases, and
    /// recovery metrics.
    #[test]
    fn generated_schedules_replay_identically(seed in 0u64..1_000, horizon_s in 20u64..90) {
        let horizon = SimTime::from_secs(horizon_s);
        let fingerprint = || {
            let cluster = ClusterBuilder::new().trpis(TPUS).vrpis(12).build();
            let mut world = World::new(cluster.clone(), Features::all());
            world.enable_chaos(ChaosConfig::heal_degrade());
            let mut ids = Vec::new();
            for i in 0..5u64 {
                let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                    .start_offset(SimDuration::from_millis(i * 13))
                    .build();
                ids.push(world.admit_stream(spec).unwrap());
            }
            let model = FaultModel {
                tpu: Some(ClassRates::new(
                    SimDuration::from_secs(40),
                    SimDuration::from_secs(10),
                )),
                node: Some(ClassRates::new(
                    SimDuration::from_secs(120),
                    SimDuration::from_secs(15),
                )),
                link: Some(ClassRates::new(
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(3),
                )),
            };
            world.inject_faults(&FaultSchedule::generate(&model, &cluster, horizon, seed));
            world.run_until(horizon);
            let results = world.finish(horizon);
            let streams: Vec<(String, u64, u64)> = ids
                .iter()
                .map(|&id| {
                    let r = results.report(id).expect("reported");
                    (
                        format!("{:?}", results.stream_phase(id)),
                        r.emitted(),
                        r.completed(),
                    )
                })
                .collect();
            let downtime: Vec<u64> = results
                .availabilities()
                .values()
                .map(|a| a.downtime.as_nanos())
                .collect();
            (
                results.events_processed(),
                results.frames_dropped(),
                results.recovery().count(),
                streams,
                downtime,
            )
        };
        prop_assert_eq!(fingerprint(), fingerprint());
    }
}
