//! Property tests for the sharded replay: random mixed-model workloads —
//! with fault injection riding the cross-shard command path — must produce
//! byte-identical results at every `MICROEDGE_WORKERS` value, and the
//! sharding machinery itself must be invisible: a one-shard replay of a
//! command-free workload is indistinguishable from the plain `World` it
//! wraps.
//!
//! The two oracles are deliberately split. Worker-count invariance holds
//! unconditionally (workers only change which thread steps a shard, never
//! what the shard observes). The plain-`World` oracle is stated for
//! command-free workloads because command-delivered faults consume event
//! sequence numbers that `World::inject_faults` does not, so the two paths
//! legally diverge in tie-breaking order at identical timestamps.

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::faults::{ClassRates, FaultModel, FaultSchedule};
use microedge::core::runtime::{RunResults, StreamSpec, World};
use microedge::core::shard::ShardedWorld;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::apps::CameraApp;

/// One randomly drawn camera: which trace app it runs, how many frames it
/// emits, when it starts, and whether its completions export cross-shard.
#[derive(Debug, Clone)]
struct Cam {
    app: usize,
    frame_limit: u64,
    offset_ms: u64,
    export: bool,
}

fn cam_strategy() -> impl Strategy<Value = Cam> {
    (0..3usize, 1u64..5, 0u64..900, prop::bool::ANY).prop_map(
        |(app, frame_limit, offset_ms, export)| Cam {
            app,
            frame_limit,
            offset_ms,
            export,
        },
    )
}

/// A full workload: per-shard camera lists (2–3 shards, 1–5 cameras each)
/// plus a fault-schedule seed.
fn workload_strategy() -> impl Strategy<Value = (Vec<Vec<Cam>>, u64)> {
    (
        prop::collection::vec(prop::collection::vec(cam_strategy(), 1..5), 2..4),
        0u64..u64::MAX,
    )
}

fn spec_for(shard: usize, idx: usize, cam: &Cam) -> StreamSpec {
    let app = &CameraApp::trace_apps()[cam.app];
    StreamSpec::builder(&format!("prop-{shard}-{idx}"), app.model().as_str())
        .units(app.units())
        .fps(app.fps())
        .frame_limit(cam.frame_limit)
        .start_offset(SimDuration::from_millis(cam.offset_ms))
        .export_completions(cam.export)
        .build()
}

/// Builds the sharded world for a workload, optionally arming each shard
/// with a generated fault schedule, and runs it at `workers`.
fn run_sharded(shards: &[Vec<Cam>], fault_seed: Option<u64>, workers: usize) -> RunResults {
    let clusters: Vec<_> = shards
        .iter()
        .map(|_| ClusterBuilder::new().trpis(2).vrpis(8).build())
        .collect();
    let mut world = ShardedWorld::new(clusters, Features::all());
    for (shard, cams) in shards.iter().enumerate() {
        for (idx, cam) in cams.iter().enumerate() {
            // Refusals are part of the workload: both replays being compared
            // see the identical admission sequence either way.
            let _ = world.admit_stream(u32::try_from(shard).unwrap(), spec_for(shard, idx, cam));
        }
    }
    if let Some(seed) = fault_seed {
        let model = FaultModel {
            tpu: Some(ClassRates::new(
                SimDuration::from_secs(20),
                SimDuration::from_secs(4),
            )),
            node: None,
            link: None,
        };
        for shard in 0..u32::try_from(shards.len()).unwrap() {
            let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
            let schedule = FaultSchedule::generate(
                &model,
                &cluster,
                SimTime::from_secs(30),
                seed ^ u64::from(shard),
            );
            world.inject_faults(shard, &schedule);
        }
    }
    world.run_with_workers(SimTime::from_secs(120), workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded replay with fault injection is byte-identical across
    /// `MICROEDGE_WORKERS` ∈ {1, 2, 8}: the single-worker replay is the
    /// oracle and the parallel replays must reproduce it exactly.
    #[test]
    fn worker_count_is_invisible_under_faults((shards, seed) in workload_strategy()) {
        let oracle = format!("{:?}", run_sharded(&shards, Some(seed), 1));
        for workers in [2usize, 8] {
            let digest = format!("{:?}", run_sharded(&shards, Some(seed), workers));
            prop_assert_eq!(
                &oracle,
                &digest,
                "sharded replay diverged at {} workers",
                workers
            );
        }
    }

    /// For command-free workloads the whole sharding apparatus — epoch
    /// barriers, clock alignment, shard merge — is invisible: one shard
    /// replaying the workload equals the plain `World` it wraps. Exports
    /// are disabled because a one-shard ring routes them back to itself,
    /// an ingest stream the plain `World` has no counterpart for.
    #[test]
    fn one_shard_equals_the_plain_world(mut cams in prop::collection::vec(cam_strategy(), 1..8)) {
        for cam in &mut cams {
            cam.export = false;
        }
        let shards = vec![cams.clone()];
        let sharded = run_sharded(&shards, None, 1);

        let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
        let mut world = World::new(cluster, Features::all());
        for (idx, cam) in cams.iter().enumerate() {
            let _ = world.admit_stream(spec_for(0, idx, cam));
        }
        world.run_until(SimTime::from_secs(120));
        // The sharded run reports its last epoch barrier as the end time;
        // close the plain world at the same instant so the metric windows
        // line up.
        let oracle = format!("{:?}", world.finish(sharded.end()));
        let sharded = format!("{sharded:?}");
        prop_assert_eq!(&oracle, &sharded, "one-shard replay diverged from the plain World");
    }
}
