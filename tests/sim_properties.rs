//! Property-based tests for the simulation kernel and the TPU-units
//! arithmetic the whole system rests on.

use proptest::prelude::*;

use microedge::core::units::TpuUnits;
use microedge::sim::event::EventQueue;
use microedge::sim::series::StepSeries;
use microedge::sim::stats::{Histogram, OnlineStats};
use microedge::sim::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue is a total order: pops are sorted by time, and
    /// same-time events preserve insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "insertion order broken on ties");
                }
            }
            prop_assert_eq!(SimTime::from_millis(times[idx]), t);
            last = Some((t, idx));
        }
        prop_assert_eq!(q.events_processed(), times.len() as u64);
    }

    /// StepSeries conserves mass: the weighted sum of window averages
    /// equals the exact integral of the step function.
    #[test]
    fn step_series_conserves_integral(
        steps in prop::collection::vec((1u64..5_000, 0u32..20), 1..50),
        window_ms in 100u64..5_000,
    ) {
        let mut series = StepSeries::new(SimDuration::from_millis(window_ms));
        let mut t = 0u64;
        let mut exact = 0.0f64;
        let mut level = 0.0f64;
        let mut last = 0u64;
        for (gap, value) in steps {
            t += gap;
            exact += level * (t - last) as f64;
            series.set(SimTime::from_millis(t), f64::from(value));
            level = f64::from(value);
            last = t;
        }
        let end = t + 1;
        exact += level * (end - last) as f64;
        let buckets = series.finish(SimTime::from_millis(end));
        let mut reconstructed = 0.0;
        for (i, avg) in buckets.iter().enumerate() {
            let start = i as u64 * window_ms;
            let width = window_ms.min(end - start);
            reconstructed += avg * width as f64;
        }
        prop_assert!(
            (reconstructed - exact).abs() < 1e-6 * exact.max(1.0),
            "integral {exact} vs reconstructed {reconstructed}"
        );
    }

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn stats_merge_equals_sequential(
        xs in prop::collection::vec(-1_000.0f64..1_000.0, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] {
            left.record(x);
        }
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Histogram percentiles are monotone and bounded by min/max.
    #[test]
    fn percentiles_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut h: Histogram = xs.iter().copied().collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= prev);
            prop_assert!((lo..=hi).contains(&v));
            prev = v;
        }
    }

    /// TPU-units duty cycles never understate demand, and float round-trips
    /// are exact at micro-unit precision.
    #[test]
    fn units_roundtrip_and_duty_cycle(micro in 0u64..10_000_000, service_ns in 1u64..10u64.pow(9), period_ns in 1u64..10u64.pow(9)) {
        let u = TpuUnits::from_micro(micro);
        prop_assert_eq!(TpuUnits::from_f64(u.as_f64()), u, "float round-trip");

        let duty = TpuUnits::from_duty_cycle(
            SimDuration::from_nanos(service_ns),
            SimDuration::from_nanos(period_ns),
        );
        let exact = service_ns as f64 / period_ns as f64;
        prop_assert!(duty.as_f64() >= exact - 1e-12, "never understates");
        prop_assert!(duty.as_f64() <= exact + 1e-6, "rounds up by < 1 micro-unit");
    }

    /// Units addition is associative and ordered (the exactness the
    /// admission proofs rely on).
    #[test]
    fn units_arithmetic_exact(a in 0u64..2_000_000, b in 0u64..2_000_000, c in 0u64..2_000_000) {
        let (ua, ub, uc) = (TpuUnits::from_micro(a), TpuUnits::from_micro(b), TpuUnits::from_micro(c));
        prop_assert_eq!((ua + ub) + uc, ua + (ub + uc));
        prop_assert_eq!((ua + ub).saturating_sub(ub), ua);
        prop_assert_eq!(ua.checked_add(ub), Some(ua + ub));
    }
}
