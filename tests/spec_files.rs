//! The shipped sample Yaml specs parse and deploy end to end.

use microedge::cluster::topology::Cluster;
use microedge::core::config::Features;
use microedge::core::scheduler::{ExtendedScheduler, TpuRequest};
use microedge::core::units::TpuUnits;
use microedge::models::catalog::Catalog;
use microedge::orch::lifecycle::Orchestrator;
use microedge::orch::spec::{parse_pod_spec, parse_pod_specs};

const CORAL_PIE: &str = include_str!("../examples/specs/coral-pie-camera.yaml");
const BODYPIX: &str = include_str!("../examples/specs/bodypix-camera.yaml");
const PIPELINE: &str = include_str!("../examples/specs/segmentation-pipeline.yaml");
const PLAIN: &str = include_str!("../examples/specs/plain-service.yaml");
const FLEET: &str = include_str!("../examples/specs/fleet.yaml");

fn fresh() -> (Orchestrator, ExtendedScheduler) {
    let cluster = Cluster::microedge_default();
    let sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all());
    (Orchestrator::new(cluster), sched)
}

#[test]
fn every_sample_spec_parses() {
    for (name, text) in [
        ("coral-pie", CORAL_PIE),
        ("bodypix", BODYPIX),
        ("pipeline", PIPELINE),
        ("plain", PLAIN),
    ] {
        parse_pod_spec(text).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn coral_pie_spec_deploys_with_paper_units() {
    let spec = parse_pod_spec(CORAL_PIE).unwrap();
    let requests = TpuRequest::from_spec(&spec).unwrap();
    assert_eq!(requests.len(), 1);
    assert_eq!(requests[0].units(), TpuUnits::from_f64(0.35));
    assert_eq!(
        spec.node_selector()
            .get("microedge.io/tpu")
            .map(String::as_str),
        Some("true")
    );

    let (mut orch, mut sched) = fresh();
    let d = sched.deploy(&mut orch, spec).unwrap();
    assert_eq!(d.allocations().len(), 1);
}

#[test]
fn bodypix_spec_partitions_across_tpus() {
    let (mut orch, mut sched) = fresh();
    let d = sched
        .deploy(&mut orch, parse_pod_spec(BODYPIX).unwrap())
        .unwrap();
    assert_eq!(d.allocations().len(), 2, "1.2 units span two TPUs");
}

#[test]
fn pipeline_spec_creates_two_stages() {
    let (mut orch, mut sched) = fresh();
    let d = sched
        .deploy(&mut orch, parse_pod_spec(PIPELINE).unwrap())
        .unwrap();
    assert_eq!(d.stages().len(), 2);
    assert_eq!(d.stages()[0].model().as_str(), "unet-v2");
    assert_eq!(d.stages()[1].model().as_str(), "mobilenet-v1");
}

#[test]
fn plain_spec_takes_the_native_path() {
    let spec = parse_pod_spec(PLAIN).unwrap();
    assert!(TpuRequest::from_spec(&spec).unwrap().is_empty());
    let (mut orch, mut sched) = fresh();
    let d = sched.deploy(&mut orch, spec).unwrap();
    assert!(d.stages().is_empty());
    assert_eq!(d.control_rpcs(), 0);
}

#[test]
fn all_samples_fit_the_paper_cluster_simultaneously() {
    let (mut orch, mut sched) = fresh();
    for text in [CORAL_PIE, BODYPIX, PIPELINE, PLAIN] {
        sched
            .deploy(&mut orch, parse_pod_spec(text).unwrap())
            .unwrap();
    }
    // 0.35 + 1.2 + 0.675 + 0.215 = 2.44 units across 6 TPUs.
    assert_eq!(
        sched.pool().total_free_units(),
        TpuUnits::from_f64(6.0 - 2.44)
    );
}

#[test]
fn multi_document_fleet_deploys_in_one_pass() {
    let specs = parse_pod_specs(FLEET).unwrap();
    assert_eq!(specs.len(), 3);
    let (mut orch, mut sched) = fresh();
    let mut tpu_pods = 0;
    for spec in specs {
        let d = sched.deploy(&mut orch, spec).unwrap();
        if !d.stages().is_empty() {
            tpu_pods += 1;
        }
    }
    assert_eq!(tpu_pods, 2);
    assert_eq!(
        sched.pool().total_free_units(),
        TpuUnits::from_f64(6.0 - 0.35 - 1.2)
    );
}
