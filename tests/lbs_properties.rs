//! Property-based tests for the load-balancing service: smooth WRR must
//! realise the extended scheduler's partitioning weights exactly.

use std::collections::BTreeMap;

use proptest::prelude::*;

use microedge::core::lbs::LbService;
use microedge::core::pool::Allocation;
use microedge::core::units::TpuUnits;
use microedge::tpu::device::TpuId;

fn weights_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1_000u64..=1_000_000, 1..6)
}

fn lbs_from(weights: &[u64]) -> LbService {
    let allocations: Vec<Allocation> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| Allocation::new(TpuId(i as u32), TpuUnits::from_micro(w)))
        .collect();
    LbService::from_allocations(&allocations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Over any long horizon, per-target frequencies differ from the exact
    /// weight proportions by less than one pick per target (SWRR's bounded
    /// unfairness).
    #[test]
    fn frequencies_converge_to_weights(weights in weights_strategy()) {
        let mut lbs = lbs_from(&weights);
        let total: u64 = weights.iter().sum();
        let picks = 5_000u64;
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for _ in 0..picks {
            *counts.entry(lbs.next().0).or_insert(0) += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = picks as f64 * w as f64 / total as f64;
            let got = *counts.get(&(i as u32)).unwrap_or(&0) as f64;
            prop_assert!(
                (got - expected).abs() <= 1.0 + picks as f64 * 1e-9,
                "target {i}: expected {expected:.1}, got {got}"
            );
        }
    }

    /// The spread is smooth: within any window of roughly two proportional
    /// periods (`2·total/max_weight + 2` picks), the heaviest target
    /// appears at least once — no bursty starvation, which plain WRR would
    /// exhibit.
    #[test]
    fn heaviest_target_never_starves(weights in weights_strategy()) {
        let mut lbs = lbs_from(&weights);
        let total: u64 = weights.iter().sum();
        let (heaviest, &max_w) = weights
            .iter()
            .enumerate()
            .max_by_key(|&(i, w)| (*w, std::cmp::Reverse(i)))
            .unwrap();
        let window = (2 * total / max_w + 2) as usize;
        let picks: Vec<u32> = (0..window * 20).map(|_| lbs.next().0).collect();
        for chunk in picks.windows(window) {
            prop_assert!(
                chunk.contains(&(heaviest as u32)),
                "heaviest target {heaviest} starved in a window of {window}"
            );
        }
    }

    /// Determinism: two LBS instances with identical weights produce
    /// identical sequences.
    #[test]
    fn identical_weights_identical_sequences(weights in weights_strategy()) {
        let mut a = lbs_from(&weights);
        let mut b = lbs_from(&weights);
        for _ in 0..500 {
            prop_assert_eq!(a.next(), b.next());
        }
    }

    /// Removing a target preserves the relative proportions of the rest.
    #[test]
    fn removal_preserves_remaining_proportions(weights in prop::collection::vec(1_000u64..=1_000_000, 2..6)) {
        let mut lbs = lbs_from(&weights);
        prop_assert!(lbs.remove_target(TpuId(0)));
        let total: u64 = weights.iter().skip(1).sum();
        let picks = 4_000u64;
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for _ in 0..picks {
            *counts.entry(lbs.next().0).or_insert(0) += 1;
        }
        prop_assert!(!counts.contains_key(&0), "removed target still picked");
        for (i, &w) in weights.iter().enumerate().skip(1) {
            let expected = picks as f64 * w as f64 / total as f64;
            let got = *counts.get(&(i as u32)).unwrap_or(&0) as f64;
            prop_assert!((got - expected).abs() <= 1.0 + picks as f64 * 1e-9);
        }
    }
}
