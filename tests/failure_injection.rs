//! Failure-injection tests: TPU loss mid-run and reclamation after pod
//! crashes (the paper's §8 failure-recovery extension).

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::core::units::TpuUnits;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::tpu::device::TpuId;

fn world(tpus: u32) -> World {
    World::new(
        ClusterBuilder::new().trpis(tpus).vrpis(8).build(),
        Features::all(),
    )
}

fn coral(name: &str) -> StreamSpec {
    StreamSpec::builder(name, "ssd-mobilenet-v2").build()
}

#[test]
fn failed_tpu_never_receives_new_admissions() {
    let mut w = world(2);
    let lost = w.fail_tpu(TpuId(0));
    assert!(lost.is_empty());
    // Capacity halves: only two 0.35-unit streams fit the surviving TPU.
    assert!(w.admit_stream(coral("a")).is_ok());
    assert!(w.admit_stream(coral("b")).is_ok());
    assert!(w.admit_stream(coral("c")).is_err());
    for alloc in w
        .scheduler()
        .assignment(w.orchestrator().running_pods()[0])
        .unwrap()
    {
        assert_ne!(alloc.tpu(), TpuId(0));
    }
}

#[test]
fn displaced_streams_keep_their_slo_after_recovery() {
    let mut w = world(3);
    let mut cams = Vec::new();
    for i in 0..4 {
        cams.push(
            w.admit_stream(
                StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                    .start_offset(SimDuration::from_millis(i * 11))
                    .build(),
            )
            .unwrap(),
        );
    }
    w.run_until(SimTime::from_secs(5));
    let lost = w.fail_tpu(TpuId(0));
    assert!(lost.is_empty(), "3 TPUs → 2 leaves room for 4 × 0.35");
    w.run_until(SimTime::from_secs(30));
    let results = w.finish(SimTime::from_secs(30));
    for cam in cams {
        let r = results.report(cam).unwrap();
        // A handful of frames die at the failure instant; the stream keeps
        // flowing at very nearly full rate afterwards.
        assert!(
            r.achieved_fps() > 14.5,
            "{}: {:.2} FPS",
            r.stream(),
            r.achieved_fps()
        );
    }
}

#[test]
fn overloaded_failure_degrades_only_the_unplaceable_streams() {
    let mut w = world(2);
    let mut cams = Vec::new();
    for i in 0..5 {
        cams.push(w.admit_stream(coral(&format!("cam-{i}"))).unwrap());
    }
    w.run_until(SimTime::from_secs(3));
    // Losing one TPU leaves 1.0 unit for 5 × 0.35 = 1.75 of demand.
    let lost = w.fail_tpu(TpuId(0));
    assert!(!lost.is_empty(), "some streams must be unplaceable");
    assert!(lost.len() <= 3, "at most the overflow is lost: {lost:?}");
    let survivors = cams.iter().filter(|c| !lost.contains(c)).count();
    assert_eq!(survivors + lost.len(), 5);
    assert_eq!(w.active_streams(), survivors);
    // The surviving TPU is never oversubscribed.
    let load = w.scheduler().pool().account(TpuId(1)).load();
    assert!(load <= TpuUnits::ONE);
}

#[test]
fn frames_in_flight_on_failed_tpu_are_counted_dropped() {
    let mut w = world(1);
    w.admit_stream(coral("cam")).unwrap();
    // Frame 0: emitted at t=0, reaches the TPU Service at ≈13 ms
    // (5 ms pre-process + 8 ms transmission), busy until ≈36 ms. Failing
    // at 20 ms catches it mid-inference.
    w.run_until(SimTime::from_millis(20));
    w.fail_tpu(TpuId(0));
    w.run_until(SimTime::from_secs(4));
    let results = w.finish(SimTime::from_secs(4));
    assert!(results.frames_dropped() >= 1);
}

#[test]
fn restore_and_reuse_after_failure() {
    let mut w = world(2);
    w.admit_stream(coral("a")).unwrap();
    let lost = w.fail_tpu(TpuId(1));
    assert!(lost.is_empty());
    // The pool exposes restore for operator-driven recovery; capacity
    // returns.
    // (Restore is a scheduler/pool-level operation; admission through the
    // world sees the restored TPU immediately.)
    // Note: World::fail_tpu kills the data-plane service permanently; this
    // test only checks control-plane capacity accounting.
    assert_eq!(
        w.scheduler().pool().total_free_units(),
        TpuUnits::ONE - TpuUnits::from_f64(0.35)
    );
}

#[test]
fn node_failure_kills_its_tpu_and_hosted_pods() {
    use microedge::cluster::node::NodeId;
    // tRPis get the lowest node ids; node-0 hosts tpu-0.
    let mut w = world(2);
    let mut cams = Vec::new();
    for i in 0..4 {
        cams.push(w.admit_stream(coral(&format!("cam-{i}"))).unwrap());
    }
    w.run_until(SimTime::from_secs(2));
    let stopped = w.fail_node(NodeId(0));
    // Demand was 1.4 units on 2 TPUs; one TPU left → at least one stream
    // stops (either displaced from the dead TPU without room, or its app
    // container lived on node-0).
    assert!(!stopped.is_empty());
    assert!(stopped.iter().all(|s| cams.contains(s)));
    // Survivors keep flowing and the surviving TPU is never oversubscribed.
    w.run_until(SimTime::from_secs(6));
    let load = w.scheduler().pool().account(TpuId(1)).load();
    assert!(load <= TpuUnits::ONE);
    assert_eq!(w.active_streams(), 4 - stopped.len());
    // No TPU units leak: active streams' demand equals the pool load.
    let expected = TpuUnits::from_f64(0.35 * (4 - stopped.len()) as f64);
    assert_eq!(load, expected);
}

#[test]
fn vrpi_node_failure_stops_hosted_camera_pods_only() {
    use microedge::cluster::node::NodeId;
    let mut w = world(1);
    let cam = w.admit_stream(coral("cam")).unwrap();
    w.run_until(SimTime::from_secs(1));
    let pod = w.pod_of(cam).unwrap();
    let host = w.orchestrator().node_of(pod).unwrap();
    // The camera pod is hosted on some node; failing a *different* vRPi
    // leaves the stream untouched.
    let other = w
        .orchestrator()
        .cluster()
        .nodes()
        .iter()
        .map(|n| n.id())
        .find(|&id| id != host && id != NodeId(0))
        .unwrap();
    assert!(w.fail_node(other).is_empty());
    assert_eq!(w.active_streams(), 1);
    // Failing the hosting node stops the stream and frees its units.
    let stopped = w.fail_node(host);
    if host == NodeId(0) {
        // The host was the tRPi itself: the TPU died with it.
        assert_eq!(stopped, vec![cam]);
    } else {
        assert_eq!(stopped, vec![cam]);
        assert_eq!(
            w.scheduler().pool().total_free_units(),
            TpuUnits::ONE,
            "reclamation freed the dead pod's units"
        );
    }
}
