//! Property-based tests for the Coral TPU device model: the co-compiler's
//! packing invariants and the execution engine's cost accounting.

use proptest::prelude::*;

use microedge::models::profile::{ModelId, ModelKind, ModelProfile};
use microedge::sim::time::SimDuration;
use microedge::tpu::cocompile::{CoCompileError, CoCompiler};
use microedge::tpu::device::TpuDevice;
use microedge::tpu::spec::TpuSpec;

fn synthetic_model(idx: usize, inference_us: u64, param_bytes: u64) -> ModelProfile {
    ModelProfile::new(
        ModelId::new(&format!("model-{idx}")),
        ModelKind::Classification,
        SimDuration::from_micros(inference_us),
        param_bytes,
        224,
        224,
    )
}

fn model_set() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((1_000u64..100_000, 1_000u64..9_000_000), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The co-compiler never exceeds the parameter budget, grants memory in
    /// strict priority order, and accounts for every byte.
    #[test]
    fn cocompiler_packing_invariants(models in model_set()) {
        let spec = TpuSpec::coral_usb();
        let profiles: Vec<ModelProfile> = models
            .iter()
            .enumerate()
            .map(|(i, &(inf, bytes))| synthetic_model(i, inf, bytes))
            .collect();
        let plan = CoCompiler::new(spec).plan(&profiles).unwrap();

        prop_assert!(plan.cached_bytes() <= spec.param_budget_bytes());
        prop_assert_eq!(plan.len(), profiles.len());

        // Priority order: once one model is not fully cached, every later
        // model gets nothing.
        let mut starved = false;
        for alloc in plan.allocations() {
            if starved {
                prop_assert_eq!(alloc.cached_bytes(), 0);
            }
            prop_assert!(alloc.cached_bytes() <= alloc.param_bytes());
            prop_assert_eq!(
                alloc.uncached_bytes(),
                alloc.param_bytes() - alloc.cached_bytes()
            );
            if !alloc.is_fully_cached() {
                starved = true;
            }
        }

        // Greedy exactness: either everything is cached or the budget is
        // exhausted to the byte.
        if !plan.is_fully_cached() {
            prop_assert_eq!(plan.cached_bytes(), spec.param_budget_bytes());
        }
    }

    /// Device cost accounting: a cached invoke costs exactly the inference
    /// time plus the streaming of its uncached bytes; a swap costs at least
    /// the full parameter transfer extra.
    #[test]
    fn device_costs_are_exact(models in model_set(), picks in prop::collection::vec(0usize..8, 1..40)) {
        let spec = TpuSpec::coral_usb();
        let profiles: Vec<ModelProfile> = models
            .iter()
            .enumerate()
            .map(|(i, &(inf, bytes))| synthetic_model(i, inf, bytes))
            .collect();
        let plan = CoCompiler::new(spec).plan(&profiles).unwrap();
        let mut device = TpuDevice::new(spec);
        device.load_plan(plan.clone());

        let mut expected_busy = SimDuration::ZERO;
        for &p in &picks {
            let profile = &profiles[p % profiles.len()];
            let resident_before = device.is_resident(profile.id());
            let outcome = device.invoke(profile);
            if resident_before {
                let alloc = device
                    .resident()
                    .allocation(profile.id())
                    .expect("still resident");
                prop_assert!(!outcome.swapped());
                prop_assert_eq!(outcome.streamed_bytes(), alloc.uncached_bytes());
                prop_assert_eq!(
                    outcome.busy(),
                    profile.inference_time() + spec.stream_time(alloc.uncached_bytes())
                );
            } else {
                prop_assert!(outcome.swapped());
                prop_assert!(
                    outcome.busy()
                        >= profile.inference_time() + spec.swap_time(profile.param_bytes())
                );
            }
            expected_busy += outcome.busy();
        }
        prop_assert_eq!(device.stats().busy(), expected_busy);
        prop_assert_eq!(device.stats().invocations(), picks.len() as u64);
    }

    /// Co-compiled residents never swap, in any invocation order.
    #[test]
    fn cocompiled_set_never_swaps(models in model_set(), picks in prop::collection::vec(0usize..8, 1..60)) {
        let spec = TpuSpec::coral_usb();
        let profiles: Vec<ModelProfile> = models
            .iter()
            .enumerate()
            .map(|(i, &(inf, bytes))| synthetic_model(i, inf, bytes))
            .collect();
        let mut device = TpuDevice::new(spec);
        device.load_plan(CoCompiler::new(spec).plan(&profiles).unwrap());
        for &p in &picks {
            device.invoke(&profiles[p % profiles.len()]);
        }
        prop_assert_eq!(device.stats().swaps(), 0);
    }
}

/// Deterministic edge case: duplicate ids are rejected with the offending
/// name.
#[test]
fn duplicate_model_rejected() {
    let spec = TpuSpec::coral_usb();
    let m = synthetic_model(0, 1_000, 1_000);
    let err = CoCompiler::new(spec).plan(&[m.clone(), m]).unwrap_err();
    assert!(matches!(err, CoCompileError::DuplicateModel(_)));
}
