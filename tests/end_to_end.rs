//! Cross-crate integration tests: the paper's workflows end to end.

use microedge::bench::runner::SystemConfig;
use microedge::bench::scalability::max_cameras;
use microedge::cluster::topology::{Cluster, ClusterBuilder};
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::core::scheduler::ExtendedScheduler;
use microedge::core::units::TpuUnits;
use microedge::models::catalog::Catalog;
use microedge::orch::lifecycle::Orchestrator;
use microedge::orch::spec::parse_pod_spec;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::apps::CameraApp;

/// The headline claim: 2.8× cameras over the baseline at 6 TPUs.
#[test]
fn headline_2_8x_capacity_on_paper_cluster() {
    let app = CameraApp::coral_pie();
    let baseline = max_cameras(&app, SystemConfig::Baseline, 6);
    let microedge = max_cameras(&app, SystemConfig::microedge_full(), 6);
    assert_eq!(baseline, 6);
    assert_eq!(microedge, 17);
}

/// The full §3.1 workflow driven from a Yaml file on the paper's exact
/// cluster (19 vRPis + 6 tRPis).
#[test]
fn yaml_to_running_pod_to_reclamation() {
    let cluster = Cluster::microedge_default();
    let mut orch = Orchestrator::new(cluster.clone());
    let mut sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all());

    let yaml = "name: cam\nimage: coral-pie:latest\nresources:\n  cpu: 500m\n  memory: 256Mi\nextensions:\n  microedge.io/model: ssd-mobilenet-v2\n  microedge.io/tpu-units: \"0.35\"\n";
    let spec = parse_pod_spec(yaml).unwrap();
    let deployment = sched.deploy(&mut orch, spec).unwrap();
    assert_eq!(deployment.allocations().len(), 1);
    assert!(deployment.cocompiled());

    // Pool reflects the grant.
    let tpu = deployment.allocations()[0].tpu();
    assert_eq!(sched.pool().account(tpu).load(), TpuUnits::from_f64(0.35));

    // Crash the pod; reclamation notices.
    orch.delete_pod(deployment.pod()).unwrap();
    assert_eq!(sched.reclaim_terminated(&orch), vec![deployment.pod()]);
    assert_eq!(sched.pool().account(tpu).load(), TpuUnits::ZERO);
}

/// Admission + data plane keep the SLO at exactly full capacity.
#[test]
fn seventeen_cameras_hold_15fps_on_six_tpus() {
    let cluster = ClusterBuilder::new().trpis(6).vrpis(32).build();
    let mut world = World::new(cluster, Features::all());
    let app = CameraApp::coral_pie();
    for i in 0..17 {
        let offset = app.frame_interval().mul_f64(f64::from(i) / 17.0);
        let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
            .frame_limit(500)
            .start_offset(offset)
            .build();
        world.admit_stream(spec).unwrap();
    }
    let results = world.run_to_completion(SimTime::from_secs(120));
    assert!(results.all_met_fps());
    assert!(
        results.average_utilization() > 0.95,
        "nearly saturated: {}",
        results.average_utilization()
    );
}

/// Mixed-model tenancy: co-compiled models share TPUs without swap thrash.
#[test]
fn mixed_models_share_tpus_without_swaps() {
    let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
    let mut world = World::new(cluster, Features::all());
    // MobileNet V1 (0.215) and UNet V2 (0.675) co-fit one TPU's memory.
    for (i, model) in ["mobilenet-v1", "unet-v2", "mobilenet-v1"]
        .iter()
        .enumerate()
    {
        let spec = StreamSpec::builder(&format!("s-{i}"), model)
            .frame_limit(300)
            .start_offset(SimDuration::from_millis(7 * i as u64))
            .build();
        world.admit_stream(spec).unwrap();
    }
    let results = world.run_to_completion(SimTime::from_secs(60));
    assert!(results.all_met_fps());
    let swaps: u64 = results.device_stats().iter().map(|s| s.swaps()).sum();
    assert_eq!(swaps, 0, "co-compiled residents never swap");
}

/// Without co-compiling, distinct models may not share a TPU; capacity
/// shrinks accordingly.
#[test]
fn co_compiling_increases_mixed_model_capacity() {
    let admit_both = |features: Features| -> usize {
        let cluster = ClusterBuilder::new().trpis(1).vrpis(8).build();
        let mut world = World::new(cluster, features);
        let mut count = 0;
        for (i, model) in ["mobilenet-v1", "unet-v2"].iter().enumerate() {
            let spec = StreamSpec::builder(&format!("s-{i}"), model)
                .frame_limit(10)
                .build();
            if world.admit_stream(spec).is_ok() {
                count += 1;
            }
        }
        count
    };
    assert_eq!(admit_both(Features::all()), 2);
    assert_eq!(admit_both(Features::partitioning_only()), 1);
}

/// Stream churn: capacity released by departures is reusable indefinitely.
#[test]
fn repeated_admit_remove_cycles_are_stable() {
    let cluster = ClusterBuilder::new().trpis(1).vrpis(4).build();
    let mut world = World::new(cluster, Features::all());
    for cycle in 0..20 {
        let a = world
            .admit_stream(StreamSpec::builder(&format!("a-{cycle}"), "ssd-mobilenet-v2").build())
            .unwrap();
        let b = world
            .admit_stream(StreamSpec::builder(&format!("b-{cycle}"), "ssd-mobilenet-v2").build())
            .unwrap();
        let next = world.now() + SimDuration::from_secs(2);
        world.run_until(next);
        world.remove_stream(a).unwrap();
        world.remove_stream(b).unwrap();
    }
    assert_eq!(world.active_streams(), 0);
    assert_eq!(
        world.scheduler().pool().total_free_units(),
        TpuUnits::ONE,
        "all units returned after 20 cycles"
    );
}

/// The baseline data plane also holds its SLO — it wastes capacity, not
/// correctness.
#[test]
fn baseline_meets_slo_at_its_smaller_capacity() {
    let cluster = ClusterBuilder::new().trpis(3).vrpis(16).build();
    let sched = ExtendedScheduler::with_policy(
        &cluster,
        Catalog::builtin(),
        Features::none(),
        Box::new(microedge::baselines::dedicated::DedicatedBaseline::new()),
    );
    let mut world = World::with_scheduler(cluster, sched);
    for i in 0..3 {
        let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
            .frame_limit(300)
            .collocated(true)
            .build();
        world.admit_stream(spec).unwrap();
    }
    assert!(world
        .admit_stream(StreamSpec::builder("extra", "ssd-mobilenet-v2").build())
        .is_err());
    let results = world.run_to_completion(SimTime::from_secs(60));
    assert!(results.all_met_fps());
    assert!((results.average_utilization() - 0.35).abs() < 0.02);
}

/// BodyPix requires partitioning; the run exercises cross-TPU fan-out with
/// a >1-unit stream and still meets 15 FPS.
#[test]
fn bodypix_partitioned_across_tpus_meets_slo() {
    let cluster = ClusterBuilder::new().trpis(6).vrpis(16).build();
    let mut world = World::new(cluster, Features::all());
    let app = CameraApp::bodypix();
    for i in 0..5 {
        let offset = app.frame_interval().mul_f64(f64::from(i) / 5.0);
        let spec = StreamSpec::builder(&format!("seg-{i}"), "bodypix-mobilenet-v1")
            .frame_limit(400)
            .start_offset(offset)
            .build();
        world.admit_stream(spec).unwrap();
    }
    let results = world.run_to_completion(SimTime::from_secs(120));
    assert!(results.all_met_fps());
    assert!(results.average_utilization() > 0.95);
}

/// Bring-your-own-model workflow: register a custom profile in the
/// catalog, deploy cameras against it, and hold the SLO — the public-API
/// path a downstream user of the library takes.
#[test]
fn custom_model_registers_and_deploys() {
    use microedge::models::profile::{ModelId, ModelKind, ModelProfile};

    let mut catalog = Catalog::builtin();
    catalog.insert(ModelProfile::new(
        ModelId::new("acme-fire-detector"),
        ModelKind::Detection,
        SimDuration::from_millis(25),
        3 * 1024 * 1024,
        320,
        320,
    ));

    let cluster = ClusterBuilder::new().trpis(1).vrpis(4).build();
    let sched = ExtendedScheduler::new(&cluster, catalog, Features::all());
    let mut world = microedge::core::runtime::World::with_scheduler(cluster, sched);

    // 25 ms + 8.33 ms overhead at 15 FPS → 0.5 units: two cameras fit.
    let units = world.scheduler().data_plane().profiled_units(
        world
            .scheduler()
            .catalog()
            .expect(&"acme-fire-detector".into()),
        15.0,
    );
    assert_eq!(units, TpuUnits::from_f64(0.5));

    for i in 0..2 {
        world
            .admit_stream(
                StreamSpec::builder(&format!("fire-{i}"), "acme-fire-detector")
                    .frame_limit(200)
                    .start_offset(SimDuration::from_millis(i * 21))
                    .build(),
            )
            .unwrap();
    }
    assert!(world
        .admit_stream(StreamSpec::builder("fire-2", "acme-fire-detector").build())
        .is_err());
    let results = world.run_to_completion(SimTime::from_secs(60));
    assert!(results.all_met_fps());
    assert!((results.average_utilization() - 1.0).abs() < 0.02);
}
