//! Smoke tests over the full experiment harness: every paper artifact runs
//! and reproduces its qualitative shape at reduced scale.

use microedge::bench::runner::SystemConfig;
use microedge::bench::{
    admission_overhead, cost, fig1, latency_breakdown, packing, scalability, trace_study,
};
use microedge::cluster::cost::CostModel;
use microedge::sim::time::SimDuration;
use microedge::workloads::apps::CameraApp;
use microedge::workloads::trace::{synthesize, TraceConfig};

#[test]
fn fig1_shape() {
    let rows = fig1::fig1_rows();
    assert_eq!(rows.len(), 8);
    assert_eq!(
        rows.iter().filter(|r| r.fps_for_full_util() > 50.0).count(),
        5
    );
    assert_eq!(rows.iter().filter(|r| !r.sustains_15fps()).count(), 3);
}

#[test]
fn fig5_shape_coral_pie() {
    let app = CameraApp::coral_pie();
    let points = scalability::fig5_sweep(&app, &SystemConfig::fig5_configs(), 3, 120);
    // Group by config.
    let cameras = |cfg: SystemConfig| -> Vec<u32> {
        points
            .iter()
            .filter(|p| p.config() == cfg)
            .map(|p| p.max_cameras())
            .collect()
    };
    assert_eq!(cameras(SystemConfig::Baseline), vec![1, 2, 3]);
    assert_eq!(cameras(SystemConfig::microedge_no_wp()), vec![2, 4, 6]);
    assert_eq!(cameras(SystemConfig::microedge_full()), vec![2, 5, 8]);
    // Utilization ordering at every TPU count, and SLOs everywhere.
    for p in &points {
        assert!(p.all_slo_met(), "{} at {} TPUs", p.config(), p.tpus());
    }
    for tpus in 1..=3u32 {
        let util = |cfg: SystemConfig| {
            points
                .iter()
                .find(|p| p.config() == cfg && p.tpus() == tpus)
                .unwrap()
                .avg_utilization()
        };
        assert!(
            util(SystemConfig::microedge_full()) >= util(SystemConfig::microedge_no_wp()) - 1e-9
        );
        assert!(util(SystemConfig::microedge_no_wp()) > util(SystemConfig::Baseline));
    }
}

#[test]
fn table1_shape() {
    let rows = cost::table1_rows(&CameraApp::coral_pie(), 17, CostModel::paper_prices());
    let totals: Vec<u32> = rows.iter().map(|r| r.total_usd()).collect();
    assert_eq!(totals[0], 2550);
    assert_eq!(totals[2], 1725);
    assert!(totals[0] > totals[1] && totals[1] > totals[2]);
}

#[test]
fn fig6_shape() {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(6 * 60);
    let trace = synthesize(&cfg, 42);
    let outcomes = trace_study::run_fig6(&trace, &cfg, 4);
    // Strongest config serves ≥ weakest MicroEdge ≥ baseline.
    assert!(outcomes[0].mean_served() >= outcomes[3].mean_served() - 1e-9);
    assert!(outcomes[3].mean_served() >= outcomes[4].mean_served() - 1e-9);
    assert!(outcomes[0].mean_utilization() >= outcomes[4].mean_utilization());
    // Every outcome has one bucket per minute.
    for o in &outcomes {
        assert_eq!(o.windowed_utilization().len(), 6);
        assert_eq!(o.served_series().len(), 6);
    }
}

#[test]
fn fig7a_shape() {
    let rows = admission_overhead::run_overhead(3000, 42);
    assert_eq!(rows.len(), 3);
    assert!(rows[1].overhead_pct() > 5.0 && rows[1].overhead_pct() < 20.0);
    assert!(rows[2].std_ms() > rows[1].std_ms() * 1.05);
}

#[test]
fn fig7b_shape() {
    let baseline = latency_breakdown::measure_breakdown(SystemConfig::Baseline, 60);
    let microedge = latency_breakdown::measure_breakdown(SystemConfig::microedge_full(), 60);
    assert_eq!(baseline.phases_ms()[1], 0.0, "baseline has no transmission");
    assert!(microedge.phases_ms()[1] > 7.0, "transmission ≈ 8 ms");
    assert!(
        microedge.total_ms() < 66.7,
        "inside the 15 FPS frame budget"
    );
    let serverless = latency_breakdown::serverless_row();
    assert!(serverless.total_ms() > microedge.total_ms());
}

#[test]
fn packing_ablation_runs_and_respects_rules() {
    for seed in 0..3 {
        assert!(packing::first_fit_invariants_hold(60, 5, seed));
    }
    let outcomes =
        packing::run_packing_ablation(40, 5, microedge::core::config::Features::all(), 1);
    assert_eq!(outcomes.len(), 5);
}
