//! Differential tests: the indexed control-plane fast path against the
//! linear-scan reference oracle (`admission::reference`).
//!
//! Every policy's indexed implementation must be *observationally
//! identical* to the reference: the same accept/reject decision and the
//! byte-identical allocation list for every request, and the same pool
//! accounting after any interleaving of admissions, releases, TPU
//! failures, and recoveries. The reference module keeps the pre-index
//! linear scans verbatim precisely so this oracle stays trustworthy.

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::admission::{
    reference, AdmissionPolicy, BestFit, FirstFit, NextFit, NextKFit, PlanBuffer, WorstFit,
};
use microedge::core::config::Features;
use microedge::core::pool::{Allocation, TpuPool};
use microedge::core::units::TpuUnits;
use microedge::models::catalog::fig1_models;
use microedge::models::profile::ModelProfile;
use microedge::tpu::device::TpuId;
use microedge::tpu::spec::TpuSpec;

const TPUS: u32 = 6;

fn pool() -> TpuPool {
    let cluster = ClusterBuilder::new().trpis(TPUS).vrpis(1).build();
    TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
}

/// The five (indexed, reference-oracle) policy pairs.
fn policy_pairs() -> Vec<(Box<dyn AdmissionPolicy>, Box<dyn AdmissionPolicy>)> {
    vec![
        (
            Box::new(FirstFit::new()) as Box<dyn AdmissionPolicy>,
            Box::new(reference::FirstFit::new()) as Box<dyn AdmissionPolicy>,
        ),
        (
            Box::new(BestFit::new()),
            Box::new(reference::BestFit::new()),
        ),
        (
            Box::new(WorstFit::new()),
            Box::new(reference::WorstFit::new()),
        ),
        (
            Box::new(NextKFit::new(3)),
            Box::new(reference::NextKFit::new(3)),
        ),
        (
            Box::new(NextFit::new()),
            Box::new(reference::NextFit::new()),
        ),
    ]
}

/// One step of the random churn script. Encoded as plain tuples so the
/// same strategy drives every policy pair identically:
/// `(op, model_idx, micro_units, tpu, wp, cc)`.
///
/// - `op < 6`  → admit `(model_idx, micro_units)` with features `(wp, cc)`
/// - `op == 6` → release the oldest live deployment
/// - `op == 7` → fail TPU `tpu % TPUS`
/// - `op == 8` → restore TPU `tpu % TPUS`
type Step = (u8, usize, u64, u32, bool, bool);

fn script_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..9,
            0..8usize,
            50_000u64..1_500_000,
            0u32..TPUS,
            prop::bool::ANY,
            prop::bool::ANY,
        ),
        1..50,
    )
}

/// Replays `script` through one (indexed, reference) pair on separate
/// pools, checking plan-for-plan and state-for-state equality.
fn run_differential(
    script: &[Step],
    models: &[ModelProfile],
    mut indexed: Box<dyn AdmissionPolicy>,
    mut oracle: Box<dyn AdmissionPolicy>,
) -> Result<(), String> {
    let mut pool_i = pool();
    let mut pool_r = pool();
    let mut buf_i = PlanBuffer::new();
    let mut buf_r = PlanBuffer::new();
    let mut live: Vec<(ModelProfile, Vec<Allocation>)> = Vec::new();

    for &(op, model_idx, micro, tpu, wp, cc) in script {
        match op {
            0..=5 => {
                let model = &models[model_idx];
                let units = TpuUnits::from_micro(micro);
                let features = Features {
                    workload_partitioning: wp,
                    co_compiling: cc,
                };
                let ok_i = indexed.plan_into(&pool_i, model, units, features, &mut buf_i);
                let ok_r = oracle.plan_into(&pool_r, model, units, features, &mut buf_r);
                prop_assert_eq!(
                    ok_i,
                    ok_r,
                    "{} and {} disagree on admitting {} micro-units",
                    indexed.name(),
                    oracle.name(),
                    micro
                );
                prop_assert_eq!(
                    buf_i.allocations(),
                    buf_r.allocations(),
                    "{} planned differently from {}",
                    indexed.name(),
                    oracle.name()
                );
                if ok_i {
                    let plan = buf_i.allocations().to_vec();
                    pool_i.commit(model, &plan);
                    pool_r.commit(model, &plan);
                    live.push((model.clone(), plan));
                }
            }
            6 => {
                if !live.is_empty() {
                    let (model, plan) = live.remove(0);
                    pool_i.release(model.id(), &plan);
                    pool_r.release(model.id(), &plan);
                }
            }
            7 => {
                pool_i.fail(TpuId(tpu));
                pool_r.fail(TpuId(tpu));
            }
            _ => {
                pool_i.restore(TpuId(tpu));
                pool_r.restore(TpuId(tpu));
            }
        }
        // Pool equality compares the logical accounting (loads, residency,
        // availability, budget) — the capacity index is excluded, so this
        // holds exactly when the index never altered a decision.
        prop_assert_eq!(&pool_i, &pool_r, "pools diverged after op {}", op);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any admission/release/fail/restore interleaving, every
    /// indexed policy produces byte-identical plans and pool accounting
    /// to its linear-scan reference.
    #[test]
    fn indexed_policies_are_observationally_identical(script in script_strategy()) {
        let models = fig1_models();
        for (indexed, oracle) in policy_pairs() {
            run_differential(&script, &models, indexed, oracle)?;
        }
    }

    /// The near-full sweep workload specifically: only the last TPU has
    /// room, at any pool size — the indexed descent must land exactly
    /// where the scan does.
    #[test]
    fn near_full_pool_agrees_at_any_size(tpus in 2u32..64, micro in 260_000u64..1_000_000) {
        let cluster = ClusterBuilder::new().trpis(tpus).vrpis(1).build();
        let mut pool_n = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
        let models = fig1_models();
        let model = &models[1];
        let load = TpuUnits::from_f64(0.75);
        let preload: Vec<Allocation> = pool_n
            .accounts()
            .iter()
            .take(tpus as usize - 1)
            .map(|account| Allocation::new(account.id(), load))
            .collect();
        pool_n.commit(model, &preload);
        let units = TpuUnits::from_micro(micro);
        let mut indexed = FirstFit::new();
        let mut oracle = reference::FirstFit::new();
        prop_assert_eq!(
            indexed.plan(&pool_n, model, units, Features::all()),
            oracle.plan(&pool_n, model, units, Features::all())
        );
    }
}
