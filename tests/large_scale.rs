//! Scale tests: the simulator and scheduler at the paper's "realistic edge
//! cluster" ceiling (§4.2 assumes clusters of up to ~100 nodes).

use microedge::bench::runner::{build_world, experiment_cluster, SystemConfig};
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::core::units::TpuUnits;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::apps::CameraApp;

/// 30 TPUs, filled to capacity with Coral-Pie cameras (⌊30/0.35⌋ = 85),
/// runs a full 20 simulated seconds and holds every SLO.
#[test]
fn eighty_five_cameras_on_thirty_tpus() {
    let app = CameraApp::coral_pie();
    let mut world = build_world(experiment_cluster(30), SystemConfig::microedge_full());
    let mut admitted = 0u32;
    loop {
        let fraction = (f64::from(admitted) * 0.618_033_988_749_895) % 1.0;
        let spec = StreamSpec::builder(&format!("cam-{admitted}"), "ssd-mobilenet-v2")
            .frame_limit(300)
            .start_offset(app.frame_interval().mul_f64(fraction))
            .build();
        if world.admit_stream(spec).is_err() {
            break;
        }
        admitted += 1;
    }
    assert_eq!(admitted, 85, "⌊30 / 0.35⌋");
    let results = world.run_to_completion(SimTime::from_secs(60));
    assert!(results.all_met_fps(), "every camera holds 15 FPS at scale");
    assert!(
        results.average_utilization() > 0.98,
        "got {}",
        results.average_utilization()
    );
    // 85 cameras × 300 frames, none lost.
    let completed: u64 = results.reports().iter().map(|r| r.completed()).sum();
    assert_eq!(completed, 85 * 300);
}

/// A mixed-model fleet at scale: every catalog application deployed many
/// times over on 20 TPUs, with co-compilation keeping swaps at zero.
#[test]
fn mixed_fleet_never_swaps_under_cocompilation() {
    let cluster = ClusterBuilder::new().trpis(20).vrpis(100).build();
    let mut world = World::new(cluster, Features::all());
    let apps = [
        CameraApp::coral_pie(),
        CameraApp::trace_sparse(),
        CameraApp::trace_bursty(),
    ];
    let mut admitted = 0u32;
    'outer: loop {
        for app in &apps {
            let spec =
                StreamSpec::builder(&format!("{}-{admitted}", app.name()), app.model().as_str())
                    .units(app.units())
                    .frame_limit(150)
                    .start_offset(SimDuration::from_millis(u64::from(admitted % 15) * 4))
                    .build();
            if world.admit_stream(spec).is_err() {
                break 'outer;
            }
            admitted += 1;
        }
    }
    assert!(admitted > 40, "only {admitted} admitted");
    let results = world.run_to_completion(SimTime::from_secs(60));
    assert!(results.all_met_fps());
    let swaps: u64 = results.device_stats().iter().map(|s| s.swaps()).sum();
    assert_eq!(swaps, 0, "admission never co-locates incompatible models");
}

/// Admission stays O(M): filling a 100-TPU pool to capacity (285 pods)
/// terminates promptly and never violates the rules.
#[test]
fn hundred_tpu_pool_fills_to_capacity() {
    let mut world = build_world(experiment_cluster(100), SystemConfig::microedge_full());
    let mut admitted = 0u32;
    while world
        .admit_stream(
            StreamSpec::builder(&format!("cam-{admitted}"), "ssd-mobilenet-v2")
                .frame_limit(1)
                .build(),
        )
        .is_ok()
    {
        admitted += 1;
    }
    assert_eq!(admitted, 285, "⌊100 / 0.35⌋");
    let free = world.scheduler().pool().total_free_units();
    assert!(free < TpuUnits::from_f64(0.35));
    for account in world.scheduler().pool().accounts() {
        assert!(account.load() <= TpuUnits::ONE);
    }
}
