//! Validates the paper's §4.2 bin-packing claims against an exact solver:
//! First-Fit stays within the proven 1.7×OPT bound, the pool-based
//! admission path agrees with classic First-Fit, and workload partitioning
//! admits the full demand on a fleet sized at the volume lower bound
//! (no internal fragmentation at capacity).

use proptest::prelude::*;

use microedge::bench::packing::{first_fit_bins, l2_lower_bound, optimal_bins};
use microedge::bench::runner::experiment_cluster;
use microedge::core::admission::{AdmissionPolicy, FirstFit};
use microedge::core::config::Features;
use microedge::core::pool::TpuPool;
use microedge::core::units::TpuUnits;
use microedge::models::catalog::unet_v2;
use microedge::tpu::spec::TpuSpec;

fn items_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(50_000u64..=1_000_000, 1..11)
}

/// Brute-force optimum by enumerating *every* assignment of items to bin
/// indices (an odometer over bins^items) — no bounds, no pruning, no
/// dominance. Exponential, so only usable for tiny instances, but it
/// shares no code or ideas with the pruned branch-and-bound it checks.
fn exhaustive_bins(items: &[TpuUnits]) -> u32 {
    const CAP: u64 = 1_000_000;
    let n = items.len();
    if n == 0 {
        return 0;
    }
    let sizes: Vec<u64> = items.iter().map(|u| u.as_micro()).collect();
    let mut best = n as u32;
    let mut assignment = vec![0usize; n];
    loop {
        let mut loads = vec![0u64; n];
        let mut feasible = true;
        for (i, &bin) in assignment.iter().enumerate() {
            loads[bin] += sizes[i];
            if loads[bin] > CAP {
                feasible = false;
                break;
            }
        }
        if feasible {
            let used = loads.iter().filter(|&&load| load > 0).count() as u32;
            best = best.min(used);
        }
        let mut digit = 0;
        loop {
            if digit == n {
                return best;
            }
            assignment[digit] += 1;
            if assignment[digit] < n {
                break;
            }
            assignment[digit] = 0;
            digit += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// First-Fit never exceeds ⌊1.7 · OPT⌋ bins (Dósa & Sgall's tight
    /// absolute bound) and never beats the optimum.
    #[test]
    fn first_fit_within_17_tenths_of_optimal(raw in items_strategy()) {
        let items: Vec<TpuUnits> = raw.iter().map(|&m| TpuUnits::from_micro(m)).collect();
        let opt = optimal_bins(&items);
        let ff = first_fit_bins(&items);
        prop_assert!(ff >= opt);
        prop_assert!(
            ff <= (17 * opt) / 10,
            "FF used {ff} bins vs OPT {opt}"
        );
    }

    /// The production admission path (TpuPool + FirstFit policy, single
    /// model, partitioning off) opens exactly as many TPUs as classic
    /// First-Fit opens bins.
    #[test]
    fn pool_admission_matches_classic_first_fit(raw in items_strategy()) {
        let items: Vec<TpuUnits> = raw.iter().map(|&m| TpuUnits::from_micro(m)).collect();
        let cluster = experiment_cluster(items.len() as u32);
        let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
        let mut policy = FirstFit::new();
        let model = unet_v2();
        let mut admitted_all = true;
        for units in &items {
            match policy.plan(&pool, &model, *units, Features::co_compiling_only()) {
                Some(plan) => {
                    pool.commit(&model, &plan);
                }
                None => admitted_all = false,
            }
        }
        prop_assert!(admitted_all, "one TPU per item always suffices");
        prop_assert_eq!(pool.used_tpus() as u32, first_fit_bins(&items));
    }

    /// With workload partitioning a fleet of exactly ⌈Σ units⌉ TPUs admits
    /// every item — the paper's "no internal fragmentation" claim against
    /// the ILP volume bound. (On a larger fleet Algorithm 1 may *use* more
    /// TPUs, because its basic pass prefers an unsplit placement on an
    /// empty TPU; fragmentation is eliminated where it matters — at
    /// capacity.)
    #[test]
    fn partitioning_admits_everything_at_the_volume_bound(raw in items_strategy()) {
        let items: Vec<TpuUnits> = raw.iter().map(|&m| TpuUnits::from_micro(m)).collect();
        let total: TpuUnits = items.iter().copied().sum();
        let volume_bound = total.as_micro().div_ceil(1_000_000) as u32;

        let cluster = experiment_cluster(volume_bound);
        let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
        let mut policy = FirstFit::new();
        let model = unet_v2();
        for units in &items {
            let plan = policy
                .plan(&pool, &model, *units, Features::all())
                .expect("the volume bound admits everything under partitioning");
            pool.commit(&model, &plan);
        }
        prop_assert!(pool.total_free_units() < TpuUnits::ONE || volume_bound as u64 * 1_000_000 > total.as_micro());
    }

    /// The pruned branch-and-bound agrees with blind exhaustive
    /// enumeration on every small instance — none of the prunes (L2
    /// bound, memoization, perfect-fit dominance, equal-residual
    /// symmetry) ever cuts the true optimum.
    #[test]
    fn pruned_search_matches_exhaustive_enumeration(
        raw in prop::collection::vec(50_000u64..=1_000_000, 1..8)
    ) {
        let items: Vec<TpuUnits> = raw.iter().map(|&m| TpuUnits::from_micro(m)).collect();
        prop_assert_eq!(optimal_bins(&items), exhaustive_bins(&items));
    }

    /// The L2 lower bound is a true lower bound: it never exceeds the
    /// optimum the exact solver finds.
    #[test]
    fn l2_bound_never_exceeds_the_optimum(raw in items_strategy()) {
        let items: Vec<TpuUnits> = raw.iter().map(|&m| TpuUnits::from_micro(m)).collect();
        let l2 = l2_lower_bound(&items);
        let opt = optimal_bins(&items);
        prop_assert!(l2 <= opt, "L2 bound {l2} exceeds optimum {opt}");
    }
}

/// Known-answer cases for the exact solver.
#[test]
fn optimal_solver_known_answers() {
    let u = |f: f64| TpuUnits::from_f64(f);
    assert_eq!(optimal_bins(&[]), 0);
    assert_eq!(optimal_bins(&[u(1.0)]), 1);
    assert_eq!(optimal_bins(&[u(0.5), u(0.5), u(0.5)]), 2);
    // The paper's §4.3 example: three 0.6-unit pods need 3 bins unsplit.
    assert_eq!(optimal_bins(&[u(0.6), u(0.6), u(0.6)]), 3);
    // A case where First-Fit is suboptimal: arrival order matters.
    // Items: 0.5, 0.7, 0.5, 0.3 → FF: {0.5,0.5}? No — FF in order:
    // bin1=0.5, 0.7→bin2, 0.5→bin1(1.0), 0.3→bin2(1.0) = 2 bins = OPT.
    assert_eq!(first_fit_bins(&[u(0.5), u(0.7), u(0.5), u(0.3)]), 2);
    assert_eq!(optimal_bins(&[u(0.5), u(0.7), u(0.5), u(0.3)]), 2);
    // Classic adversarial order for FF: small items first. OPT pairs each
    // 0.33 with a 0.67 (3 bins); FF greedily packs the three 0.33s together
    // and then needs a bin per 0.67 (4 bins).
    let adversarial = [u(0.33), u(0.33), u(0.33), u(0.67), u(0.67), u(0.67)];
    assert_eq!(optimal_bins(&adversarial), 3);
    assert_eq!(first_fit_bins(&adversarial), 4);
}
