//! Differential tests for the fleet tier: the indexed front door against
//! the preserved linear fleet scan (`fleet::reference`), and the pool's
//! incrementally-maintained capacity summary against a from-scratch
//! recomputation.
//!
//! The front door's placement must be *observationally identical* to the
//! linear oracle — same cluster, same probe kind, same rejection, same
//! running statistics — under any interleaving of admissions, summary
//! refreshes, and cluster drains. And the per-cluster summary the front
//! door consumes must stay exact under any pool churn, because every
//! placement decision is only as good as the summary feeding it.

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::admission::{AdmissionPolicy, FirstFit};
use microedge::core::config::Features;
use microedge::core::fleet::{reference, ClusterId, ClusterSummary, FrontDoor, StreamDemand};
use microedge::core::pool::{Allocation, PoolCapacity, TpuPool};
use microedge::core::units::TpuUnits;
use microedge::models::catalog::fig1_models;
use microedge::tpu::device::TpuId;
use microedge::tpu::spec::TpuSpec;

/// One step of the fleet churn script, encoded as plain tuples so one
/// strategy drives both doors identically:
/// `(op, home, cluster, micro, mult, extra)`.
///
/// - `op < 6`  → admit homed at `home % regions` with a demand whose
///   largest stage is `micro` and whose total is `micro * mult`
/// - `op == 6` → observe a fresh summary on `cluster % C` built from
///   `(micro, mult, extra)`
/// - `op == 7` → drain `cluster % C`
type Step = (u8, u32, u32, u64, u64, u32);

fn script_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..8,
            0u32..8,
            0u32..64,
            50_000u64..1_200_000,
            1u64..4,
            0u32..6,
        ),
        1..60,
    )
}

fn summary_from(micro: u64, mult: u64, extra: u32) -> ClusterSummary {
    ClusterSummary {
        max_free: micro,
        total_free: micro * mult,
        available_tpus: extra % 5,
        total_tpus: 4,
        live_streams: u64::from(extra) * 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any admit/observe/drain interleaving, on any fleet shape,
    /// the indexed front door and the linear fleet scan make identical
    /// placements and keep identical summaries and statistics.
    #[test]
    fn front_door_matches_linear_scan_under_churn(
        clusters in 2u32..48,
        regions in 1u32..5,
        spill in 0u32..3,
        script in script_strategy(),
    ) {
        let regions = regions.min(clusters);
        let summaries: Vec<ClusterSummary> = (0..clusters)
            .map(|c| summary_from(
                300_000 + u64::from(c) * 37_000 % 900_000,
                1 + u64::from(c) % 3,
                c + 1,
            ))
            .collect();
        let mut indexed = FrontDoor::new(summaries.clone(), regions, spill);
        let mut linear = reference::LinearFrontDoor::new(summaries, regions, spill);

        for &(op, home, cluster, micro, mult, extra) in &script {
            match op {
                0..=5 => {
                    let demand = StreamDemand {
                        largest_stage: micro,
                        total: micro * mult,
                    };
                    let home = home % regions;
                    prop_assert_eq!(
                        indexed.place(home, demand),
                        linear.place(home, demand),
                        "read-only placement diverged"
                    );
                    prop_assert_eq!(
                        indexed.admit(home, demand),
                        linear.admit(home, demand),
                        "committing admission diverged"
                    );
                }
                6 => {
                    let id = ClusterId(cluster % clusters);
                    let summary = summary_from(micro, mult, extra);
                    indexed.observe(id, summary);
                    linear.observe(id, summary);
                }
                _ => {
                    let id = ClusterId(cluster % clusters);
                    indexed.drain(id);
                    linear.drain(id);
                }
            }
            prop_assert_eq!(indexed.stats(), linear.stats(), "stats diverged");
            for c in 0..clusters {
                prop_assert_eq!(
                    indexed.summary(ClusterId(c)),
                    linear.summary(ClusterId(c)),
                    "summary {} diverged after op {}",
                    c,
                    op
                );
            }
        }
    }
}

const TPUS: u32 = 6;

fn recompute(pool: &TpuPool) -> PoolCapacity {
    let mut cap = PoolCapacity {
        max_free_micro: 0,
        total_free_micro: 0,
        available_tpus: 0,
        total_tpus: u32::try_from(pool.accounts().len()).expect("pool fits u32"),
    };
    for account in pool.accounts() {
        if !account.is_available() {
            continue;
        }
        let free = account.free_units().as_micro();
        cap.max_free_micro = cap.max_free_micro.max(free);
        cap.total_free_micro += free;
        cap.available_tpus += 1;
    }
    cap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incrementally-maintained capacity summary equals a full
    /// recomputation from the accounts after every commit, release,
    /// failure, and restore — the invariant the whole fleet tier's
    /// placement quality rests on.
    #[test]
    fn capacity_summary_is_exact_under_pool_churn(
        script in prop::collection::vec(
            (0u8..9, 0..8usize, 50_000u64..1_500_000, 0u32..TPUS),
            1..60,
        ),
    ) {
        let cluster = ClusterBuilder::new().trpis(TPUS).vrpis(1).build();
        let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
        let models = fig1_models();
        let mut policy = FirstFit::new();
        let mut live: Vec<(microedge::models::profile::ModelProfile, Vec<Allocation>)> =
            Vec::new();

        for &(op, model_idx, micro, tpu) in &script {
            match op {
                0..=5 => {
                    let model = &models[model_idx];
                    let units = TpuUnits::from_micro(micro);
                    if let Some(plan) = policy.plan(&pool, model, units, Features::all()) {
                        pool.commit(model, &plan);
                        live.push((model.clone(), plan));
                    }
                }
                6 => {
                    if !live.is_empty() {
                        let (model, plan) = live.remove(0);
                        pool.release(model.id(), &plan);
                    }
                }
                7 => pool.fail(TpuId(tpu)),
                _ => pool.restore(TpuId(tpu)),
            }
            prop_assert_eq!(
                pool.capacity_summary(),
                recompute(&pool),
                "summary drifted after op {}",
                op
            );
        }
    }
}
