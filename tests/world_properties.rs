//! Model-checking-style property tests over the whole simulated system:
//! random interleavings of admissions, removals, crashes, failures, and
//! time advancement must never violate the global invariants.

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamId, StreamSpec, World};
use microedge::core::units::TpuUnits;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::tpu::device::TpuId;
use microedge::workloads::apps::CameraApp;

#[derive(Debug, Clone)]
enum Op {
    /// Admit a camera of one of the three trace apps.
    Admit(usize),
    /// Remove the n-th admitted stream, if still active.
    Remove(usize),
    /// Crash the n-th admitted stream's pod (no scheduler notification).
    Crash(usize),
    /// Run the reclamation poll.
    Reclaim,
    /// Advance simulated time.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..3usize).prop_map(Op::Admit),
            2 => (0..40usize).prop_map(Op::Remove),
            1 => (0..40usize).prop_map(Op::Crash),
            1 => Just(Op::Reclaim),
            3 => (10u64..2_000).prop_map(Op::Advance),
        ],
        1..60,
    )
}

fn check_invariants(world: &World, admitted: &[StreamId]) {
    let pool = world.scheduler().pool();
    let mut total_load = TpuUnits::ZERO;
    for account in pool.accounts() {
        assert!(account.load() <= TpuUnits::ONE, "TPU Units Rule violated");
        total_load += account.load();
    }
    // Load is conserved: exactly the sum of live assignments.
    let assigned: TpuUnits = admitted
        .iter()
        .filter_map(|&s| world.pod_of(s))
        .filter_map(|pod| world.scheduler().assignment(pod))
        .flatten()
        .map(|a| a.units())
        .sum();
    assert_eq!(
        total_load, assigned,
        "pool load must equal live assignments"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No interleaving of control-plane operations and data-plane time can
    /// oversubscribe a TPU, leak units, or corrupt stream accounting.
    #[test]
    fn random_interleavings_preserve_invariants(ops in op_strategy()) {
        let apps = CameraApp::trace_apps();
        let cluster = ClusterBuilder::new().trpis(3).vrpis(16).build();
        let mut world = World::new(cluster, Features::all());
        let mut admitted: Vec<StreamId> = Vec::new();
        let mut seq = 0u32;

        for op in ops {
            match op {
                Op::Admit(app_idx) => {
                    let app = &apps[app_idx];
                    let spec = StreamSpec::builder(
                        &format!("prop-{seq}"),
                        app.model().as_str(),
                    )
                    .units(app.units())
                    .fps(app.fps())
                    .build();
                    seq += 1;
                    if let Ok(id) = world.admit_stream(spec) {
                        admitted.push(id);
                    }
                }
                Op::Remove(idx) => {
                    if let Some(&id) = admitted.get(idx) {
                        // May already be inactive; both outcomes are legal.
                        let _ = world.remove_stream(id);
                    }
                }
                Op::Crash(idx) => {
                    if let Some(&id) = admitted.get(idx) {
                        let _ = world.crash_stream(id);
                    }
                }
                Op::Reclaim => {
                    let _ = world.poll_reclamation();
                }
                Op::Advance(ms) => {
                    let next = world.now() + SimDuration::from_millis(ms);
                    world.run_until(next);
                }
            }
            // After a crash, units are intentionally held until reclamation;
            // run the poll before the conservation check.
            let mut probe = world;
            probe.poll_reclamation();
            check_invariants(&probe, &admitted);
            world = probe;
        }

        // Drain: every emitted-and-not-dropped frame completes.
        let end = world.now() + SimDuration::from_secs(10);
        world.run_until(end);
        let results = world.finish(end);
        for &id in &admitted {
            let report = results.report(id).expect("admitted stream reported");
            assert!(report.completed() <= report.emitted());
        }
    }

    /// With a TPU failure thrown in, the rules still hold and lost streams
    /// stay lost (no ghost load).
    #[test]
    fn failures_never_leak_units(pre in 1usize..6, advance_ms in 100u64..3_000) {
        let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
        let mut world = World::new(cluster, Features::all());
        let mut admitted = Vec::new();
        for i in 0..pre {
            let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2").build();
            if let Ok(id) = world.admit_stream(spec) {
                admitted.push(id);
            }
        }
        world.run_until(SimTime::ZERO + SimDuration::from_millis(advance_ms));
        world.fail_tpu(TpuId(0));
        world.poll_reclamation();
        check_invariants(&world, &admitted);
        // Only the surviving TPU may carry load.
        assert_eq!(
            world.scheduler().pool().account(TpuId(0)).load(),
            TpuUnits::ZERO
        );
        assert!(
            world.scheduler().pool().account(TpuId(1)).load() <= TpuUnits::ONE
        );
    }
}

/// Bit-for-bit determinism: the same scenario produces identical metrics
/// on every run — the property every experiment in EXPERIMENTS.md relies
/// on.
#[test]
fn identical_scenarios_produce_identical_results() {
    let run = || {
        let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
        let mut world = World::new(cluster, Features::all());
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                .frame_limit(200)
                .start_offset(SimDuration::from_millis(i * 17))
                .build();
            ids.push(world.admit_stream(spec).unwrap());
        }
        world.run_until(SimTime::from_secs(5));
        world.remove_stream(ids[0]).unwrap();
        let results = world.run_to_completion(SimTime::from_secs(60));
        (
            results.end(),
            results.average_utilization().to_bits(),
            results
                .reports()
                .iter()
                .map(|r| (r.completed(), r.achieved_fps().to_bits()))
                .collect::<Vec<_>>(),
            results.breakdowns().mean_total_ms().to_bits(),
        )
    };
    assert_eq!(run(), run());
}
