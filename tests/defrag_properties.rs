//! Property tests for the online defragmenter.
//!
//! Four invariants, matching the guarantees `core::defrag` documents:
//!
//! 1. **Unit conservation** — a defrag cycle moves committed units, it
//!    never mints or loses them, under arbitrary arrive/depart churn.
//! 2. **Idle defrag is invisible** — a defragmenter whose `min_gain` gate
//!    blocks every move leaves the data plane byte-identical to a world
//!    with no defragmenter at all.
//! 3. **Budget** — the summed migration cost a single cycle executes
//!    never exceeds its `cycle_budget`, and no single move does either.
//! 4. **Worker invariance** — sharded replays *with the defragmenter
//!    armed* stay byte-identical across `MICROEDGE_WORKERS` ∈ {1, 2, 8}.

use std::collections::BTreeSet;

use proptest::prelude::*;

use microedge::bench::defrag::{churn_trace, run_churn_arm};
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::defrag::{run_cycle, DefragConfig};
use microedge::core::runtime::{RunResults, StreamSpec};
use microedge::core::scheduler::ExtendedScheduler;
use microedge::core::shard::ShardedWorld;
use microedge::core::units::TpuUnits;
use microedge::metrics::defrag::DefragStats;
use microedge::models::catalog::Catalog;
use microedge::orch::lifecycle::Orchestrator;
use microedge::orch::pod::{PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
use microedge::sim::time::{SimDuration, SimTime};

/// Builds a post-churn scheduler: `loads` pods deployed in order, then
/// every pod whose index is in `depart` torn down, leaving whatever
/// fragmentation first-fit plus the departures produced.
fn churned_scheduler(
    tpus: u32,
    loads: &[u32],
    depart: &[bool],
) -> (Orchestrator, ExtendedScheduler) {
    let cluster = ClusterBuilder::new().trpis(tpus).vrpis(2).build();
    let mut sched =
        ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::co_compiling_only());
    let mut orch = Orchestrator::new(cluster);
    let mut pods = Vec::new();
    for (i, &milli) in loads.iter().enumerate() {
        let spec = PodSpec::builder(&format!("cam-{i}"), "coral-pie:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, "mobilenet-v1")
            .extension(EXT_TPU_UNITS, &format!("0.{milli:03}"))
            .build();
        if let Ok(d) = sched.deploy(&mut orch, spec) {
            pods.push(d.pod());
        }
    }
    for (pod, &gone) in pods.iter().zip(depart) {
        if gone {
            sched.teardown(&mut orch, *pod).expect("pod is live");
        }
    }
    (orch, sched)
}

fn pool_load_micro(sched: &ExtendedScheduler) -> u64 {
    sched
        .pool()
        .accounts()
        .iter()
        .map(|a| a.load().as_micro())
        .sum()
}

/// A random sharded camera workload (2–3 shards, 1–5 cameras each).
fn fleet_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u64, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((100u32..600, 1u64..5, 0u64..900), 1..5),
        2..4,
    )
}

/// Builds and runs a sharded world over `shards`, with the defragmenter
/// armed under `config` (or not, when `None`).
fn run_fleet(
    shards: &[Vec<(u32, u64, u64)>],
    config: Option<DefragConfig>,
    workers: usize,
) -> RunResults {
    let clusters: Vec<_> = shards
        .iter()
        .map(|_| ClusterBuilder::new().trpis(2).vrpis(8).build())
        .collect();
    let mut world = ShardedWorld::new(clusters, Features::all());
    if let Some(config) = config {
        world.enable_defrag(config);
    }
    for (shard, cams) in shards.iter().enumerate() {
        for (idx, &(milli, frames, offset_ms)) in cams.iter().enumerate() {
            let _ = world.admit_stream(
                u32::try_from(shard).unwrap(),
                StreamSpec::builder(&format!("prop-{shard}-{idx}"), "mobilenet-v1")
                    .units(TpuUnits::from_micro(u64::from(milli) * 1_000))
                    .frame_limit(frames)
                    .start_offset(SimDuration::from_millis(offset_ms))
                    .build(),
            );
        }
    }
    world.run_with_workers(SimTime::from_secs(120), workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over a random churn trace, the defrag arm's per-round ledger audit
    /// (pool load == live multiset, to the micro-unit) never fires, and
    /// the planner's recovered-unit counter only grows when moves happen.
    #[test]
    fn defrag_churn_conserves_units(
        rounds in 20u32..60,
        tpus in 4u32..10,
        seed in 0u64..1_000,
    ) {
        let trace = churn_trace(rounds, 0.7, seed);
        let arm = run_churn_arm(&trace, tpus, true);
        prop_assert_eq!(arm.conservation_violations, 0);
        if arm.stats.moves == 0 {
            prop_assert_eq!(arm.stats.units_recovered_micro, 0);
        }
    }

    /// A defragmenter that can never clear its `min_gain` gate (the gate
    /// is above a whole TPU) executes nothing and is invisible: the
    /// stream-visible results equal a run with no defragmenter at all.
    #[test]
    fn idle_defrag_is_a_no_op(shards in fleet_strategy()) {
        let gated = DefragConfig {
            interval_epochs: 1,
            min_gain: TpuUnits::from_micro(2_000_000),
            ..DefragConfig::default()
        };
        let with = run_fleet(&shards, Some(gated), 1);
        let without = run_fleet(&shards, None, 1);
        prop_assert_eq!(with.defrag().moves, 0);
        prop_assert_eq!(with.defrag().units_recovered_micro, 0);
        let a = format!("{:?}", with.reports());
        let b = format!("{:?}", without.reports());
        prop_assert_eq!(&a, &b, "an idle defragmenter touched the data plane");
    }

    /// One planning cycle's executed migration cost — summed and per
    /// move — never exceeds its `cycle_budget`, whatever the budget.
    #[test]
    fn cycle_disruption_respects_budget(
        loads in prop::collection::vec(150u32..650, 4..24),
        depart in prop::collection::vec(prop::bool::ANY, 24),
        budget_ms in 1u64..5_000,
        tpus in 4u32..10,
    ) {
        let (_orch, mut sched) = churned_scheduler(tpus, &loads, &depart);
        let config = DefragConfig {
            cycle_budget: SimDuration::from_millis(budget_ms),
            max_moves_per_cycle: 32,
            ..DefragConfig::default()
        };
        let before = pool_load_micro(&sched);
        let mut stats = DefragStats::default();
        let moves = run_cycle(&mut sched, &BTreeSet::new(), &config, &mut stats);
        let total: SimDuration = moves
            .iter()
            .fold(SimDuration::ZERO, |acc, mv| acc + mv.cost);
        prop_assert!(
            total <= config.cycle_budget,
            "cycle spent {total} against a budget of {}",
            config.cycle_budget
        );
        for mv in &moves {
            prop_assert!(mv.cost <= config.cycle_budget);
        }
        prop_assert_eq!(stats.disruption_ns, total.as_nanos());
        prop_assert_eq!(pool_load_micro(&sched), before, "the cycle minted or lost units");
    }

    /// With the defragmenter armed at every barrier, sharded replays stay
    /// byte-identical across worker counts: defrag runs serially at the
    /// barrier, so threads can never reorder its decisions.
    #[test]
    fn worker_count_is_invisible_with_defrag(shards in fleet_strategy()) {
        let config = DefragConfig {
            interval_epochs: 1,
            ..DefragConfig::default()
        };
        let oracle = format!("{:?}", run_fleet(&shards, Some(config), 1));
        for workers in [2usize, 8] {
            let digest = format!("{:?}", run_fleet(&shards, Some(config), workers));
            prop_assert_eq!(
                &oracle,
                &digest,
                "defrag-armed replay diverged at {} workers",
                workers
            );
        }
    }
}
