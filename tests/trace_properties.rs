//! Property-based tests for the trace synthesiser and its replay: seed
//! stability, statistical shape, and conservation of admissions.

use proptest::prelude::*;

use microedge::bench::runner::SystemConfig;
use microedge::bench::trace_study::run_trace;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::trace::{synthesize, TraceClass, TraceConfig};

fn config_strategy() -> impl Strategy<Value = TraceConfig> {
    (
        60u64..600,
        1u32..6,
        0.2f64..3.0,
        30u64..240,
        0.1f64..1.0,
        1.5f64..5.0,
        30u64..180,
    )
        .prop_map(
            |(secs, steady, sparse_rate, sparse_dwell, burst_rate, burst_size, burst_dwell)| {
                TraceConfig {
                    duration: SimDuration::from_secs(secs),
                    steady_cameras: steady,
                    sparse_rate_per_min: sparse_rate,
                    sparse_dwell_mean: SimDuration::from_secs(sparse_dwell),
                    burst_rate_per_min: burst_rate,
                    burst_size_mean: burst_size,
                    burst_dwell_mean: SimDuration::from_secs(burst_dwell),
                    diurnal_period: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structure invariants for any configuration and seed.
    #[test]
    fn trace_structure(config in config_strategy(), seed in 0u64..1_000) {
        let trace = synthesize(&config, seed);
        // Sorted, densely sequenced.
        for w in trace.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        for (i, ev) in trace.iter().enumerate() {
            prop_assert_eq!(ev.seq as usize, i);
        }
        // Exactly the configured number of steady cameras, all immortal.
        let steady: Vec<_> = trace
            .iter()
            .filter(|e| e.class == TraceClass::Steady)
            .collect();
        prop_assert_eq!(steady.len(), config.steady_cameras as usize);
        prop_assert!(steady.iter().all(|e| e.lifetime.is_none()));
        // Sparse and bursty cameras always carry a lifetime.
        prop_assert!(trace
            .iter()
            .filter(|e| e.class != TraceClass::Steady)
            .all(|e| e.lifetime.is_some()));
        // Arrivals stay within the configured duration (bursts may spill a
        // few intra-burst staggers past it).
        let slack = SimDuration::from_secs(5);
        let end = SimTime::ZERO + config.duration + slack;
        prop_assert!(trace.iter().all(|e| e.at < end));
    }

    /// Same seed, same trace; different seed, different trace (except the
    /// degenerate all-steady case, whose jitter can still collide).
    #[test]
    fn trace_seed_stability(config in config_strategy(), seed in 0u64..1_000) {
        let a = synthesize(&config, seed);
        let b = synthesize(&config, seed);
        prop_assert_eq!(&a, &b);
        let c = synthesize(&config, seed + 1);
        if a.len() > config.steady_cameras as usize {
            prop_assert_ne!(a, c);
        }
    }

    /// Replaying any trace conserves arrivals: admitted + rejected equals
    /// the arrivals inside the window, and the pool is never oversubscribed.
    #[test]
    fn replay_conserves_arrivals(seed in 0u64..50) {
        let mut config = TraceConfig::microedge_downsized();
        config.duration = SimDuration::from_secs(120);
        let trace = synthesize(&config, seed);
        let outcome = run_trace(SystemConfig::microedge_full(), &trace, &config, 3);
        let arrivals_in_window = trace
            .iter()
            .filter(|e| e.at < SimTime::ZERO + config.duration)
            .count() as u32;
        prop_assert_eq!(outcome.admitted() + outcome.rejected(), arrivals_in_window);
        // Utilization is a fraction of TPU time.
        for &u in outcome.windowed_utilization() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        for &s in outcome.served_series() {
            prop_assert!(s >= 0.0);
        }
    }
}

/// Sanity: the bursty class actually arrives in groups (several cameras
/// within one second of each other somewhere in a long trace).
#[test]
fn bursts_are_clustered() {
    let mut config = TraceConfig::microedge_downsized();
    config.duration = SimDuration::from_secs(30 * 60);
    let trace = synthesize(&config, 11);
    let bursty: Vec<_> = trace
        .iter()
        .filter(|e| e.class == TraceClass::Bursty)
        .collect();
    assert!(bursty.len() > 5, "need bursts to inspect");
    let clustered = bursty
        .windows(2)
        .any(|w| w[1].at.saturating_since(w[0].at) <= SimDuration::from_millis(400));
    assert!(clustered, "expected at least one intra-burst pair");
}
