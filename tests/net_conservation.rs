//! Property tests for the lossy-transport plane: under random link
//! schedules and workloads, every message class must balance its
//! conservation ledger — control commands are delivered exactly once or
//! end in a typed give-up, frame exports arrive once or are counted as
//! drops, nothing is ever silently lost — and the whole lossy replay must
//! stay byte-identical at every `MICROEDGE_WORKERS` value.

use proptest::prelude::*;

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::net::{DegradedLink, LinkSchedule, LinkState, NetConfig};
use microedge::core::runtime::{RunResults, StreamSpec, WorldCommand};
use microedge::core::shard::{FleetReport, ShardedWorld};
use microedge::core::NetReport;
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::apps::CameraApp;

/// One randomly drawn camera.
#[derive(Debug, Clone)]
struct Cam {
    app: usize,
    frame_limit: u64,
    offset_ms: u64,
    export: bool,
}

fn cam_strategy() -> impl Strategy<Value = Cam> {
    (0..3usize, 1u64..5, 0u64..900, prop::bool::ANY).prop_map(
        |(app, frame_limit, offset_ms, export)| Cam {
            app,
            frame_limit,
            offset_ms,
            export,
        },
    )
}

/// One randomly drawn link-state transition.
#[derive(Debug, Clone)]
struct LinkFlip {
    at_ms: u64,
    link: u32,
    state: u8,
    loss_ppm: u32,
}

fn flip_strategy() -> impl Strategy<Value = LinkFlip> {
    const LOSS_TIERS: [u32; 4] = [1_000, 10_000, 100_000, 300_000];
    (0u64..20_000, 0u32..4, 0u8..3, 0usize..LOSS_TIERS.len()).prop_map(
        |(at_ms, link, state, tier)| LinkFlip {
            at_ms,
            link,
            state,
            loss_ppm: LOSS_TIERS[tier],
        },
    )
}

/// A mid-run admission riding the control channel.
#[derive(Debug, Clone)]
struct LateAdmit {
    at_ms: u64,
    shard: u32,
    cam: Cam,
}

fn late_strategy() -> impl Strategy<Value = LateAdmit> {
    (500u64..10_000, 0u32..4, cam_strategy()).prop_map(|(at_ms, shard, cam)| LateAdmit {
        at_ms,
        shard,
        cam,
    })
}

/// A full workload: per-shard cameras, link flips, late admissions, seed.
type Workload = (Vec<Vec<Cam>>, Vec<LinkFlip>, Vec<LateAdmit>, u64);

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec(prop::collection::vec(cam_strategy(), 1..4), 2..4),
        prop::collection::vec(flip_strategy(), 0..8),
        prop::collection::vec(late_strategy(), 1..5),
        0u64..u64::MAX,
    )
}

fn spec_for(tag: &str, idx: usize, cam: &Cam) -> StreamSpec {
    let app = &CameraApp::trace_apps()[cam.app];
    StreamSpec::builder(&format!("net-{tag}-{idx}"), app.model().as_str())
        .units(app.units())
        .fps(app.fps())
        .frame_limit(cam.frame_limit)
        .start_offset(SimDuration::from_millis(cam.offset_ms))
        .export_completions(cam.export)
        .build()
}

/// Builds and runs the lossy replay; returns the run plus the count of
/// pre-run admissions each shard accepted.
fn run_lossy(
    shards: &[Vec<Cam>],
    flips: &[LinkFlip],
    late: &[LateAdmit],
    seed: u64,
    workers: usize,
) -> (RunResults, FleetReport, NetReport, u64) {
    let n = u32::try_from(shards.len()).unwrap();
    let clusters: Vec<_> = shards
        .iter()
        .map(|_| ClusterBuilder::new().trpis(2).vrpis(8).build())
        .collect();
    let schedule = LinkSchedule::scripted(
        flips
            .iter()
            .map(|f| {
                let state = match f.state {
                    0 => LinkState::Healthy,
                    1 => LinkState::Degraded(DegradedLink::lossy(f.loss_ppm)),
                    _ => LinkState::Partitioned,
                };
                (SimTime::from_millis(f.at_ms), f.link % n, state)
            })
            .collect(),
    );
    let mut world = ShardedWorld::new(clusters, Features::all())
        .with_network(NetConfig::new(schedule).with_seed(seed));
    let mut accepted = 0u64;
    for (shard, cams) in shards.iter().enumerate() {
        for (idx, cam) in cams.iter().enumerate() {
            if world
                .admit_stream(u32::try_from(shard).unwrap(), spec_for("pre", idx, cam))
                .is_ok()
            {
                accepted += 1;
            }
        }
    }
    for (idx, l) in late.iter().enumerate() {
        world.schedule_command(
            SimTime::from_millis(l.at_ms),
            l.shard % n,
            WorldCommand::Admit(Box::new(spec_for("late", idx, &l.cam))),
        );
    }
    let (results, fleet, net) = world.run_net_with_workers(SimTime::from_secs(120), workers);
    (results, fleet, net, accepted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The conservation law holds for every class under any link trace:
    /// `delivered + dropped + gave_up == sent`, sheds are a subset of the
    /// give-ups, and a delivered control command executes exactly once —
    /// the stream count proves no duplication and no silent loss.
    #[test]
    fn every_class_conserves_messages((shards, flips, late, seed) in workload_strategy()) {
        let (results, _, net, accepted) = run_lossy(&shards, &flips, &late, seed, 2);
        prop_assert_eq!(
            net.stats.conservation_violations(), 0,
            "unbalanced ledgers: {:?}", net.stats
        );
        // Control: every submitted command resolved, one way or the other.
        let c = net.stats.control;
        prop_assert_eq!(c.sent, late.len() as u64);
        prop_assert_eq!(c.delivered + c.gave_up, c.sent);
        // Exactly-once: each delivered admission either created a stream
        // incarnation or was refused by the destination's admission
        // control — never both, never twice.
        prop_assert_eq!(
            results.reports().len() as u64,
            accepted + c.delivered - results.commands_failed(),
            "delivered commands must map 1:1 onto admissions"
        );
        // Telemetry: best-effort, never retransmitted.
        prop_assert_eq!(net.stats.telemetry.retransmits, 0);
        prop_assert_eq!(net.stats.telemetry.gave_up, 0);
    }

    /// The lossy replay is byte-identical across `MICROEDGE_WORKERS`
    /// ∈ {1, 2, 8}, network report included.
    #[test]
    fn lossy_replay_is_worker_invariant((shards, flips, late, seed) in workload_strategy()) {
        let (r, f, n, _) = run_lossy(&shards, &flips, &late, seed, 1);
        let oracle = format!("{r:?}|{f:?}|{n:?}");
        for workers in [2usize, 8] {
            let (r, f, n, _) = run_lossy(&shards, &flips, &late, seed, workers);
            let digest = format!("{r:?}|{f:?}|{n:?}");
            prop_assert_eq!(&oracle, &digest, "lossy replay diverged at {} workers", workers);
        }
    }
}
