//! The parallel experiment executor must be invisible in the results: a
//! parallel sweep renders byte-identical output to the serial equivalent,
//! and the kernel's delivered-event count for a fixed seed is pinned so an
//! accidental change to event scheduling shows up as a test failure, not a
//! silent perf or semantics drift.

use microedge::bench::runner::SystemConfig;
use microedge::bench::scalability;
use microedge::bench::trace_study::{self, fig6_configs};
use microedge::sim::time::SimDuration;
use microedge::workloads::apps::CameraApp;
use microedge::workloads::trace::{synthesize, TraceConfig, TraceEvent};

fn short_trace() -> (Vec<TraceEvent>, TraceConfig) {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(5 * 60);
    (synthesize(&cfg, 7), cfg)
}

#[test]
fn parallel_fig6_renders_byte_identical_to_serial() {
    let (trace, cfg) = short_trace();
    // The production path fans the five configurations out across worker
    // threads; the reference path replays them one by one on this thread.
    let parallel = trace_study::run_fig6(&trace, &cfg, 6);
    let serial: Vec<_> = fig6_configs()
        .iter()
        .map(|&config| trace_study::run_trace(config, &trace, &cfg, 6))
        .collect();
    assert_eq!(
        trace_study::render_fig6(&parallel),
        trace_study::render_fig6(&serial),
        "parallel fig6 replay must be byte-identical to serial"
    );
}

#[test]
fn parallel_fig5_renders_byte_identical_to_serial() {
    let app = CameraApp::coral_pie();
    let configs = SystemConfig::fig5_configs();
    let parallel = scalability::fig5_sweep(&app, &configs, 3, 120);
    let mut serial = Vec::new();
    for &config in &configs {
        for tpus in 1..=3 {
            serial.push(scalability::run_point(&app, config, tpus, 120));
        }
    }
    assert_eq!(
        scalability::render_sweep(&app, &parallel),
        scalability::render_sweep(&app, &serial),
        "parallel fig5 sweep must be byte-identical to serial"
    );
}

#[test]
fn kernel_event_count_is_pinned_for_a_fixed_seed() {
    let (trace, cfg) = short_trace();
    let outcome = trace_study::run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6);
    // Golden value for the 5-minute seed-7 downsized trace on 6 TPUs with
    // the full MicroEdge configuration. The kernel is deterministic, so any
    // change to this number means event scheduling itself changed — which
    // is exactly what a hot-path refactor must not do silently.
    assert_eq!(outcome.events_processed(), 89_615);
}
