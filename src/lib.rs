#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # MicroEdge — a multi-tenant edge cluster for scalable camera processing
//!
//! A complete Rust reproduction of *MicroEdge: A Multi-Tenant Edge Cluster
//! System Architecture for Scalable Camera Processing* (Middleware '22):
//! fractional sharing of Coral Edge TPUs across camera-processing pods in a
//! K3s-like orchestrated cluster, via deployment-time admission control
//! over a new resource metric — **TPU units** — plus fine-grained workload
//! partitioning and model co-compilation.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`core`](mod@core) — the MicroEdge system itself (extended scheduler,
//!   admission control, LBS, TPU Service/Client data plane, simulation
//!   world);
//! - [`sim`] — the deterministic discrete-event kernel;
//! - [`models`] — ML model profiles and the built-in catalog;
//! - [`cluster`] — nodes, network, and cost models;
//! - [`tpu`] — the Coral TPU device model (memory, co-compiler, executor);
//! - [`orch`] — the K3s-like orchestrator substrate;
//! - [`metrics`] — utilization, latency, throughput collection;
//! - [`workloads`] — applications, camera fleets, datasets, traces;
//! - [`baselines`] — the dedicated bare-metal and serverless comparators;
//! - [`bench`](mod@bench) — experiment runners regenerating every paper
//!   artifact.
//!
//! # Quickstart
//!
//! ```
//! use microedge::cluster::topology::ClusterBuilder;
//! use microedge::core::config::Features;
//! use microedge::core::runtime::{StreamSpec, World};
//! use microedge::sim::time::SimTime;
//!
//! // A small cluster: two TPU-endowed RPis, four vanilla RPis.
//! let cluster = ClusterBuilder::new().trpis(2).vrpis(4).build();
//! let mut world = World::new(cluster, Features::all());
//!
//! // Five 0.35-unit cameras fit on two TPUs only with fractional sharing.
//! for i in 0..5 {
//!     let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
//!         .frame_limit(100)
//!         .build();
//!     world.admit_stream(spec)?;
//! }
//! let results = world.run_to_completion(SimTime::from_secs(60));
//! assert!(results.all_met_fps());
//! # Ok::<(), microedge::core::scheduler::DeployError>(())
//! ```

pub use microedge_baselines as baselines;
pub use microedge_bench as bench;
pub use microedge_cluster as cluster;
pub use microedge_core as core;
pub use microedge_metrics as metrics;
pub use microedge_models as models;
pub use microedge_orch as orch;
pub use microedge_sim as sim;
pub use microedge_tpu as tpu;
pub use microedge_workloads as workloads;
