//! The offline profiling service (paper §4.1).
//!
//! Run with: `cargo run --example offline_profiler`
//!
//! "MicroEdge offers an offline service for a client to profile the
//! inference service time to determine the TPU unit to specify in their
//! request Yaml file." This example is that service: for every model in
//! the catalog it reports the profiled service time and the TPU units a
//! camera would declare at common frame rates — including the cases where
//! a single stream needs more than one TPU.

use microedge::core::config::DataPlaneConfig;
use microedge::models::catalog::Catalog;

fn main() {
    let dp = DataPlaneConfig::calibrated();
    let catalog = Catalog::builtin();
    let rates = [5.0, 10.0, 15.0, 30.0];

    println!("Offline profiling service — TPU units per model and frame rate");
    println!("(service time = inference + per-invoke host overhead)\n");
    println!(
        "{:<22} {:>12} | {:>7} {:>7} {:>7} {:>7}",
        "model", "service (ms)", "5 FPS", "10 FPS", "15 FPS", "30 FPS"
    );
    println!("{}", "-".repeat(70));
    for model in catalog.iter() {
        let service = dp.service_time(model);
        let units: Vec<String> = rates
            .iter()
            .map(|&fps| {
                let u = dp.profiled_units(model, fps);
                if u.whole_tpus_needed() > 1 {
                    format!("{:.3}*", u.as_f64())
                } else {
                    format!("{:.3}", u.as_f64())
                }
            })
            .collect();
        println!(
            "{:<22} {:>12.2} | {:>7} {:>7} {:>7} {:>7}",
            model.id().to_string(),
            service.as_millis_f64(),
            units[0],
            units[1],
            units[2],
            units[3],
        );
    }
    println!("\n* needs workload partitioning (more than one whole TPU).");
    println!(
        "\nPaste the 15 FPS column into your pod spec:\n  extensions:\n    microedge.io/model: <model>\n    microedge.io/tpu-units: \"<units>\""
    );
}
