//! A day in the life of a MicroEdge cluster (diurnal trace extension).
//!
//! Run with: `cargo run --release --example diurnal_day`
//!
//! Replays a "compressed day" — a two-hour trace whose sparse and bursty
//! arrival rates swing ±75 % over one diurnal cycle, as the Azure Functions
//! trace does over 24 hours — and prints how TPU utilization and cameras
//! served track the cycle under full MicroEdge.

use microedge::bench::runner::SystemConfig;
use microedge::bench::trace_study::run_trace;
use microedge::sim::time::SimDuration;
use microedge::workloads::trace::{synthesize, TraceConfig};

fn main() {
    let period = SimDuration::from_secs(2 * 60 * 60);
    let mut cfg = TraceConfig::microedge_downsized().with_diurnal_period(period);
    cfg.duration = period;
    cfg.sparse_rate_per_min = 2.0;
    cfg.burst_rate_per_min = 0.5;

    let trace = synthesize(&cfg, 2024);
    println!(
        "Compressed day: {} arrivals over {:.0} minutes (diurnal cycle = the whole trace)\n",
        trace.len(),
        cfg.duration.as_secs_f64() / 60.0
    );

    let outcome = run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6);

    println!("10-minute averages (MicroEdge, 6 TPUs):");
    println!("window | utilization | cameras served | intensity");
    println!("{}", "-".repeat(56));
    let util = outcome.windowed_utilization();
    let served = outcome.served_series();
    for block in 0..(util.len() / 10) {
        let minutes = &util[block * 10..((block + 1) * 10).min(util.len())];
        let u = minutes.iter().sum::<f64>() / minutes.len() as f64;
        let s_block = &served[block * 10..((block + 1) * 10).min(served.len())];
        let s = s_block.iter().sum::<f64>() / s_block.len() as f64;
        // The configured diurnal intensity at the block's midpoint.
        let t = (block as f64 + 0.5) * 600.0;
        let intensity = 1.0 + 0.75 * (std::f64::consts::TAU * t / period.as_secs_f64()).sin();
        let bar = "█".repeat((u * 30.0) as usize);
        println!(
            "{:>4}m  | {u:>10.3}  | {s:>13.2}  | {intensity:>6.2}  {bar}",
            block * 10
        );
    }
    println!(
        "\nUtilization follows the arrival cycle: peak near the first quarter of the\n\
         day, trough near the third — admitted {} / rejected {}.",
        outcome.admitted(),
        outcome.rejected()
    );
}
