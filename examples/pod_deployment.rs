//! The control-plane workflow, end to end (paper §3.1).
//!
//! Run with: `cargo run --example pod_deployment`
//!
//! Walks the five numbered control-plane steps of the paper's Fig. 3 with
//! a real Yaml pod spec: parse → default scheduling (candidate nodes) →
//! extended scheduler admission → LBS configuration → reclamation after
//! the pod terminates.

use microedge::cluster::topology::Cluster;
use microedge::core::config::Features;
use microedge::core::scheduler::ExtendedScheduler;
use microedge::models::catalog::Catalog;
use microedge::orch::lifecycle::Orchestrator;
use microedge::orch::spec::parse_pod_spec;

const POD_YAML: &str = r#"
# a Coral-Pie camera instance
name: camera-17
image: coral-pie:latest
resources:
  cpu: 500m
  memory: 256Mi
nodeSelector: {}
antiAffinityGroup: coral-pie
extensions:
  microedge.io/model: ssd-mobilenet-v2
  microedge.io/tpu-units: "0.35"
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: the MicroEdge cluster — 19 vRPis + 6 tRPis, as in the paper.
    let cluster = Cluster::microedge_default();
    let mut orch = Orchestrator::new(cluster.clone());
    let mut sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all());

    // ① the client submits a Yaml file.
    let yaml = POD_YAML.replace("nodeSelector: {}\n", "");
    let spec = parse_pod_spec(&yaml)?;
    println!(
        "① parsed pod spec `{}` requesting model {:?} @ {:?} TPU units",
        spec.name(),
        spec.extension("microedge.io/model")
            .expect("the spec above sets the model extension"),
        spec.extension("microedge.io/tpu-units")
            .expect("the spec above sets the tpu-units extension"),
    );

    // K3s default scheduling produces the candidate-node list.
    let candidates = orch.candidate_nodes(&spec);
    println!(
        "   K3s default scheduler found {} candidate nodes",
        candidates.len()
    );

    // ②–④ the extended scheduler allocates TPU units, binds the pod, and
    // seeds the LBS.
    let deployment = sched.deploy(&mut orch, spec)?;
    println!("② admission granted:");
    for alloc in deployment.allocations() {
        println!("     {} ← {} units", alloc.tpu(), alloc.units());
    }
    println!(
        "③ pod bound: {} on {}",
        deployment.pod(),
        orch.node_of(deployment.pod())
            .expect("a deployed pod is bound to a node")
    );
    let lbs = deployment.lbs();
    println!("④ LBS configured with weights {:?}", lbs.weights());
    println!(
        "   co-compile triggered: {} | extra control RPCs: {}",
        deployment.cocompiled(),
        deployment.control_rpcs()
    );

    // The pod runs... and eventually terminates outside the scheduler's
    // control (crash or completion).
    orch.delete_pod(deployment.pod())?;

    // ⑤ the reclamation component polls pod status and returns the units.
    let reclaimed = sched.reclaim_terminated(&orch);
    println!("⑤ reclamation returned the TPU units of {reclaimed:?}");
    let pool = sched.pool();
    let free = pool.total_free_units();
    println!(
        "   pool free capacity back to {free} across {} TPUs",
        pool.len()
    );
    println!("\nFinal pool status (the model stays resident — lazy reclamation):");
    print!("{}", microedge::core::pool::render_pool(pool));
    Ok(())
}
