//! On-demand resource acquisition (paper §2).
//!
//! Run with: `cargo run --release --example on_demand_tracking`
//!
//! "A downstream camera needs to request resources and start processing
//! the camera frames only upon notification of a suspicious vehicle by an
//! upstream camera. The camera will stop processing frames as soon as the
//! suspicious vehicle leaves its field of view." This example plays that
//! scenario: an upstream camera runs 24×7; the downstream camera admits a
//! stream when a vehicle is notified inbound and releases it when the
//! vehicle leaves, so its TPU units exist only while needed.

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamId, StreamSpec, World};
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::dataset::{campus_vehicle_visits, VideoSegment};

const HOP: SimDuration = SimDuration::from_secs(12);
const MARGIN: SimDuration = SimDuration::from_secs(1);

fn main() {
    let cluster = ClusterBuilder::new().trpis(1).vrpis(4).build();
    let mut world = World::new(cluster, Features::all());

    // The upstream camera processes continuously.
    world
        .admit_stream(StreamSpec::builder("upstream", "ssd-mobilenet-v2").build())
        .expect("an idle 4-TPU cluster admits one 0.70-unit stream");

    // Downstream activity windows: one per vehicle, merged when they
    // overlap — [enter − margin, leave + margin], shifted by the corridor
    // travel time.
    let visits = campus_vehicle_visits(VideoSegment::campus_video(), 99);
    let mut windows: Vec<(SimTime, SimTime)> = visits
        .iter()
        .map(|v| {
            (
                v.enters + HOP.saturating_sub(MARGIN),
                v.leaves + HOP + MARGIN,
            )
        })
        .collect();
    windows.sort_by_key(|w| w.0);
    let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
    for (start, end) in windows {
        match merged.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
            _ => merged.push((start, end)),
        }
    }

    println!(
        "{} vehicles → {} merged downstream activity windows:\n",
        visits.len(),
        merged.len()
    );

    // Replay: admit at each window start, remove at its end.
    let mut busy_time = SimDuration::ZERO;
    for (episode, &(start, end)) in merged.iter().enumerate() {
        world.run_until(start);
        let spec = StreamSpec::builder(&format!("downstream-{episode}"), "ssd-mobilenet-v2")
            .start_offset(SimDuration::ZERO)
            .build();
        let active: StreamId = world.admit_stream(spec).expect("0.70 units fit one TPU");
        println!(
            "  t={:>6.1}s  vehicle inbound → downstream admitted ({active})",
            start.as_secs_f64(),
        );
        world.run_until(end);
        world
            .remove_stream(active)
            .expect("the window's stream was admitted above and not yet removed");
        println!(
            "  t={:>6.1}s  field of view clear → units released",
            end.as_secs_f64()
        );
        busy_time += end.saturating_since(start);
    }

    let last_window = merged.last().expect("the vehicle trace is non-empty");
    let horizon = last_window.1 + SimDuration::from_secs(5);
    world.run_until(horizon);
    let results = world.finish(horizon);

    let always_on = horizon.as_secs_f64();
    let on_demand = busy_time.as_secs_f64();
    println!(
        "\nDownstream TPU units held {:.0}% of the time ({on_demand:.0}s of {always_on:.0}s);\n\
         an always-on downstream camera would hold 0.35 units for the full run.",
        100.0 * on_demand / always_on
    );
    println!(
        "Fleet utilization {:.1}% — every admitted stream met 15 FPS: {}.",
        results.average_utilization() * 100.0,
        results.all_met_fps()
    );
    assert!(results.all_met_fps());
}
