//! Capacity planning with admission control (Table 1 generalised).
//!
//! Run with: `cargo run --release --example capacity_planner`
//!
//! "How much hardware do I need for this camera mix?" — the question the
//! paper's Table 1 answers for 17 Coral-Pie cameras. This example answers
//! it for an arbitrary application mix by probing the real admission
//! control: it sweeps TPU counts until the whole mix deploys, under full
//! MicroEdge and under the dedicated baseline, and prices both.

use microedge::baselines::dedicated::DedicatedBaseline;
use microedge::cluster::cost::CostModel;
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::scheduler::ExtendedScheduler;
use microedge::models::catalog::Catalog;
use microedge::orch::lifecycle::Orchestrator;
use microedge::orch::pod::{PodSpec, EXT_MODEL, EXT_TPU_UNITS};
use microedge::workloads::apps::CameraApp;

/// Tries to deploy the whole mix on a cluster with `tpus` TPUs.
fn mix_fits(mix: &[(CameraApp, u32)], tpus: u32, dedicated: bool) -> bool {
    let cluster = ClusterBuilder::new().trpis(tpus).vrpis(128).build();
    let mut orch = Orchestrator::new(cluster.clone());
    let mut sched = if dedicated {
        ExtendedScheduler::with_policy(
            &cluster,
            Catalog::builtin(),
            Features::none(),
            Box::new(DedicatedBaseline::new()),
        )
    } else {
        ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all())
    };
    for (app, count) in mix {
        for i in 0..*count {
            let spec = PodSpec::builder(&format!("{}-{i}", app.name()), "camera:latest")
                .extension(EXT_MODEL, app.model().as_str())
                .extension(EXT_TPU_UNITS, &format!("{}", app.units().as_f64()))
                .build();
            if sched.deploy(&mut orch, spec).is_err() {
                return false;
            }
        }
    }
    true
}

fn tpus_needed(mix: &[(CameraApp, u32)], dedicated: bool) -> u32 {
    (1..=256)
        .find(|&tpus| mix_fits(mix, tpus, dedicated))
        .expect("some TPU count fits the mix")
}

fn main() {
    let mix = [
        (CameraApp::coral_pie(), 8u32),
        (CameraApp::bodypix(), 2),
        (CameraApp::trace_sparse(), 6),
        (CameraApp::trace_bursty(), 4),
    ];
    let cameras: u32 = mix.iter().map(|(_, n)| n).sum();
    let total_units: f64 = mix
        .iter()
        .map(|(app, n)| app.units().as_f64() * f64::from(*n))
        .sum();

    println!(
        "Planning capacity for a {cameras}-camera mix ({total_units:.2} TPU units of demand):"
    );
    for (app, n) in &mix {
        println!(
            "  {n:>2} × {:<14} {} @ {} units",
            app.name(),
            app.model(),
            app.units()
        );
    }

    let microedge_tpus = tpus_needed(&mix, false);
    let baseline_tpus = tpus_needed(&mix, true);
    let prices = CostModel::paper_prices();
    let microedge_cost = prices.total_usd(cameras, microedge_tpus);
    let baseline_cost = prices.total_usd(cameras, baseline_tpus);

    println!("\n                     TPUs   hardware cost");
    println!("  dedicated baseline  {baseline_tpus:>3}   ${baseline_cost}");
    println!("  microedge           {microedge_tpus:>3}   ${microedge_cost}");
    let lower_bound = total_units.ceil() as u32;
    println!(
        "\nMicroEdge saves {:.0}%: {:.2} units of demand pack into {} TPUs\n(bin-packing lower bound ⌈{:.2}⌉ = {}; the Model Size Rule costs {} extra),\nversus {} dedicated TPUs for the baseline.",
        prices.saving(baseline_cost, microedge_cost) * 100.0,
        total_units,
        microedge_tpus,
        total_units,
        lower_bound,
        microedge_tpus - lower_bound,
        baseline_tpus,
    );

    assert!(microedge_tpus <= baseline_tpus);
}
