//! Quickstart: share two TPUs across five camera streams.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Deploys five Coral-Pie-style cameras (0.35 TPU units each) onto a
//! cluster with only two TPUs — impossible with dedicated allocation,
//! routine for MicroEdge — then runs the data plane and prints each
//! stream's achieved frame rate and the fleet's TPU utilization.

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::sim::time::SimTime;

fn main() {
    let cluster = ClusterBuilder::new().trpis(2).vrpis(4).build();
    let mut world = World::new(cluster, Features::all());

    println!("Admitting five 0.35-unit cameras onto 2 TPUs...");
    let mut cams = Vec::new();
    for i in 0..5 {
        let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
            .frame_limit(450) // 30 seconds of video at 15 FPS
            .build();
        match world.admit_stream(spec) {
            Ok(id) => {
                println!("  cam-{i}: admitted as {id}");
                cams.push(id);
            }
            Err(e) => println!("  cam-{i}: rejected ({e})"),
        }
    }

    // A sixth camera exceeds the pool (5 × 0.35 = 1.75; 0.25 spare < 0.35).
    let sixth = StreamSpec::builder("cam-5", "ssd-mobilenet-v2").build();
    match world.admit_stream(sixth) {
        Ok(_) => println!("  cam-5: admitted (unexpected!)"),
        Err(e) => println!("  cam-5: rejected as expected ({e})"),
    }

    println!("\nRunning the data plane...");
    let results = world.run_to_completion(SimTime::from_secs(120));

    println!("\nRun summary:");
    print!("{}", results.render_summary());
    println!(
        "\n(dedicated allocation would need 5 TPUs at 35% each; MicroEdge used {}.)",
        results.per_device_utilization().len(),
    );
}
