//! Multi-model pipelines per pod (the paper's §8 extension).
//!
//! Run with: `cargo run --example multi_model_pipeline`
//!
//! A smart-city camera segments each frame with UNet V2 and then classifies
//! the segmented region with MobileNet V1 — two inferences per frame,
//! admitted as one pod with two `(model, units)` stages. Because both
//! models co-fit one TPU's parameter memory, the extended scheduler packs
//! the stages onto the same TPU and the inter-stage hop is free (the §8
//! "data plane optimization for pipelines").

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::metrics::latency::Phase;
use microedge::sim::time::SimTime;

fn main() {
    let cluster = ClusterBuilder::new().trpis(2).vrpis(4).build();
    let mut world = World::new(cluster, Features::all());

    let spec = StreamSpec::builder("smart-cam", "unet-v2")
        .then("mobilenet-v1")
        .frame_limit(600)
        .build();
    println!(
        "Admitting a two-stage pipeline: {:?} @ 15 FPS",
        spec.stage_models()
    );
    let cam = world.admit_stream(spec).expect("0.675 + 0.215 units fit");

    let pod = world
        .pod_of(cam)
        .expect("an admitted stream is backed by a pod");
    println!("\nPer-stage TPU grants:");
    let stage_assignment = world
        .scheduler()
        .stage_assignment(pod)
        .expect("a deployed pipeline pod has per-stage grants");
    for (model, allocations) in stage_assignment {
        for alloc in allocations {
            println!("  {model:>12} → {} ({})", alloc.tpu(), alloc.units());
        }
    }

    let results = world.run_to_completion(SimTime::from_secs(120));
    let report = results
        .report(cam)
        .expect("the admitted stream has a report");
    println!(
        "\n{} frames, {:.2} FPS achieved, SLO {}",
        report.completed(),
        report.achieved_fps(),
        if report.met_fps() { "met" } else { "VIOLATED" }
    );

    let b = results.breakdowns();
    println!("\nPer-frame latency breakdown (both stages combined):");
    for (phase, ms) in b.mean_breakdown_ms() {
        println!("  {phase:>15}: {ms:6.2} ms");
    }
    println!("  {:>15}: {:6.2} ms", "total", b.mean_total_ms());
    println!(
        "\nTransmission covers a single network hop ({:.1} ms): the segment→classify\n\
         hop stayed on one TPU, so it cost nothing — the §8 pipeline optimization.",
        b.mean_ms(Phase::Transmission)
    );
    println!(
        "\nTPU utilization: {:?}",
        results
            .per_device_utilization()
            .iter()
            .map(|u| format!("{:.1}%", u * 100.0))
            .collect::<Vec<_>>()
    );
}
