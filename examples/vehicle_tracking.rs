//! Space-time vehicle tracking across a camera network (the Coral-Pie
//! scenario, paper §6.2).
//!
//! Run with: `cargo run --release --example vehicle_tracking`
//!
//! Four cameras along a corridor watch the campus video; each downstream
//! camera sees the same vehicles time-shifted, as in the paper's
//! ground-truth construction. All four detection pipelines share the
//! MicroEdge TPU pool, and the Coral-Pie application layer reconstructs
//! each vehicle's space-time track from upstream notifications.

use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::sim::time::{SimDuration, SimTime};
use microedge::workloads::coralpie::{track_corridor, CameraGraph};
use microedge::workloads::dataset::{campus_vehicle_visits, time_shifted, VideoSegment};

/// Travel time between adjacent cameras in the corridor.
const HOP: SimDuration = SimDuration::from_secs(12);
const CAMERAS: usize = 4;

fn main() {
    // --- the camera network: 4 detection pipelines on 2 shared TPUs ---
    let cluster = ClusterBuilder::new().trpis(2).vrpis(8).build();
    let mut world = World::new(cluster, Features::all());
    let segment = VideoSegment::campus_video();

    let mut cams = Vec::new();
    for i in 0..CAMERAS {
        let spec = StreamSpec::builder(&format!("corridor-cam-{i}"), "ssd-mobilenet-v2")
            .frame_limit(segment.frames())
            .start_offset(HOP.mul_f64(i as f64))
            .build();
        cams.push(world.admit_stream(spec).expect("4 × 0.35 units fit 2 TPUs"));
    }
    println!(
        "Deployed {CAMERAS} vehicle-detection pipelines on {} TPUs (4 × 0.35 = 1.4 units).",
        world.scheduler().pool().len()
    );

    // --- the vehicles: same visits, time-shifted per camera hop ---
    let upstream = campus_vehicle_visits(segment, 2022);
    let per_camera: Vec<_> = (0..CAMERAS)
        .map(|i| time_shifted(&upstream, HOP.mul_f64(i as f64)))
        .collect();

    // --- Coral-Pie's re-identification stage over the camera graph ---
    let graph = CameraGraph::corridor(CAMERAS as u32, HOP);
    let tracker = track_corridor(graph, SimDuration::from_secs(2), &per_camera);

    println!("\nSpace-time tracks (vehicle → camera entry times):");
    for track in tracker.tracks() {
        let hops: Vec<String> = track
            .hops()
            .iter()
            .map(|o| format!("{}@{:.1}s", o.camera, o.seen_at.as_secs_f64()))
            .collect();
        println!("  vehicle {:>2}: {}", track.vehicle(), hops.join(" → "));
    }
    let stats = tracker.stats();
    println!(
        "\nRe-identification: {} hand-offs matched, {} track origins, {} missed windows.",
        stats.matched, stats.origins, stats.missed_window
    );

    // --- run the shared data plane and audit the SLO ---
    let results = world.run_to_completion(SimTime::from_secs(300));
    println!("\nDetection pipeline audit:");
    for (i, cam) in cams.iter().enumerate() {
        let r = results
            .report(*cam)
            .expect("every admitted corridor cam has a report");
        println!(
            "  corridor-cam-{i}: {:.2} FPS ({} frames), SLO {}",
            r.achieved_fps(),
            r.completed(),
            if r.met_fps() { "met" } else { "VIOLATED" }
        );
    }
    println!(
        "\nTPU utilization: {:.1}% across 2 shared TPUs (includes the staggered ramp-in/out);\na dedicated deployment would pin 4 TPUs at ≤ 35% each.",
        results.average_utilization() * 100.0
    );
    assert!(results.all_met_fps(), "tracking requires 15 FPS end to end");
    assert_eq!(
        stats.missed_window, 0,
        "ground-truth replay tracks perfectly"
    );
}
