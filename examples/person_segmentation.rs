//! Real-time person segmentation (the BodyPix scenario, paper §6.2).
//!
//! Run with: `cargo run --example person_segmentation`
//!
//! BodyPix needs **1.2 TPU units** at 15 FPS — more than one whole TPU —
//! so it is only deployable at all thanks to workload partitioning: the
//! extended scheduler splits the stream 1.0/0.2 across two TPUs and the
//! pod's load balancer fans successive frames out accordingly. The example
//! contrasts MicroEdge (5 cameras on 6 TPUs) with the dedicated baseline
//! (3 cameras, two TPUs each).

use microedge::baselines::dedicated::DedicatedBaseline;
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::core::scheduler::ExtendedScheduler;
use microedge::models::catalog::Catalog;
use microedge::sim::time::SimTime;

fn bodypix_spec(i: usize, collocated: bool) -> StreamSpec {
    StreamSpec::builder(&format!("bodypix-{i}"), "bodypix-mobilenet-v1")
        .frame_limit(1000)
        .collocated(collocated)
        .build()
}

fn fill_and_run(label: &str, mut world: World, collocated: bool) {
    let mut admitted = 0;
    while world
        .admit_stream(bodypix_spec(admitted, collocated))
        .is_ok()
    {
        admitted += 1;
    }
    let results = world.run_to_completion(SimTime::from_secs(300));
    println!(
        "{label}: {admitted} cameras on 6 TPUs, utilization {:.1}%, SLO {}",
        results.average_utilization() * 100.0,
        if results.all_met_fps() {
            "met everywhere"
        } else {
            "VIOLATED"
        }
    );
    for report in results.reports() {
        println!(
            "    {}: {:.2} FPS across {} frames",
            report.stream(),
            report.achieved_fps(),
            report.completed()
        );
    }
}

fn main() {
    println!("BodyPix person segmentation: 1.2 TPU units per camera at 15 FPS.\n");

    // The dedicated baseline: each camera owns ⌈1.2⌉ = 2 TPUs and its
    // LBS alternates frames between them.
    let cluster = ClusterBuilder::new().trpis(6).vrpis(8).build();
    let sched = ExtendedScheduler::with_policy(
        &cluster,
        Catalog::builtin(),
        Features::none(),
        Box::new(DedicatedBaseline::new()),
    );
    fill_and_run(
        "dedicated baseline",
        World::with_scheduler(cluster, sched),
        true,
    );

    println!();

    // MicroEdge with workload partitioning: fractional 1.2-unit slices.
    let cluster = ClusterBuilder::new().trpis(6).vrpis(8).build();
    fill_and_run(
        "microedge w/ w.p.",
        World::new(cluster, Features::all()),
        false,
    );

    println!("\nMicroEdge packs ⌊6 / 1.2⌋ = 5 cameras where the baseline fits ⌊6 / 2⌋ = 3.");
}
