//! Failure recovery (the paper's §8 future-work extension).
//!
//! Run with: `cargo run --release --example failure_recovery`
//!
//! Six cameras share three TPUs; mid-run one tRPi node dies. The extended
//! scheduler re-admits displaced pods onto the survivors where capacity
//! allows, streams that cannot be re-placed stop cleanly, and the
//! orchestrator's event log tells the whole story.

use microedge::cluster::node::NodeId;
use microedge::cluster::topology::ClusterBuilder;
use microedge::core::config::Features;
use microedge::core::runtime::{StreamSpec, World};
use microedge::orch::events::OrchEvent;
use microedge::sim::time::{SimDuration, SimTime};

fn main() {
    let cluster = ClusterBuilder::new().trpis(3).vrpis(8).build();
    let mut world = World::new(cluster, Features::all());

    let mut cams = Vec::new();
    for i in 0..6u64 {
        let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
            .start_offset(SimDuration::from_millis(i * 11))
            .build();
        cams.push(
            world
                .admit_stream(spec)
                .expect("six 0.70-unit cams fit the 6-TPU cluster"),
        );
    }
    println!(
        "6 cameras × 0.35 units on 3 TPUs (load {:.2}/3.00). Running...",
        6.0 * 0.35
    );
    world.run_until(SimTime::from_secs(10));

    println!("\n⚡ node-0 (a tRPi) fails at t=10 s");
    let stopped = world.fail_node(NodeId(0));
    println!(
        "   scheduler re-placed what fits on the 2 surviving TPUs; {} stream(s) stopped: {:?}",
        stopped.len(),
        stopped
    );

    world.run_until(SimTime::from_secs(20));
    let survivors = world.active_streams();

    println!("\nControl-plane event log (last 8 events):");
    let events: Vec<OrchEvent> = world.orchestrator().events().to_vec();
    for e in events.iter().rev().take(8).rev() {
        match e {
            OrchEvent::PodScheduled { pod, name, node } => {
                println!("  PodScheduled    {pod} ({name}) → {node}")
            }
            OrchEvent::SchedulingFailed { name, reason } => {
                println!("  SchedulingFail  {name}: {reason}")
            }
            OrchEvent::PodTerminated { pod, node, reason } => {
                println!("  PodTerminated   {pod} on {node} ({reason:?})")
            }
            OrchEvent::NodeFailed { node, displaced } => {
                println!("  NodeFailed      {node}, displaced {displaced:?}")
            }
        }
    }

    let results = world.finish(SimTime::from_secs(20));
    println!(
        "\nAfter recovery: {survivors} streams active, {} frames dropped at the failure instant.",
        results.frames_dropped()
    );
    println!("\nPer-stream outcome over the full 20 s:");
    for cam in &cams {
        let r = results
            .report(*cam)
            .expect("every admitted cam has a report");
        println!(
            "  {}: {:>4} frames completed, {:.2} FPS",
            r.stream(),
            r.completed(),
            r.achieved_fps()
        );
    }
}
