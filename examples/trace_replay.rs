//! Replay an Azure-Functions-style camera trace (paper §6.3).
//!
//! Run with: `cargo run --release --example trace_replay`
//!
//! Cameras "come and go": steady 24×7 detection streams, sparse
//! classification invocations, and bursty segmentation groups arrive and
//! depart over a 15-minute trace. The example replays the identical trace
//! against full MicroEdge and the dedicated baseline and prints the
//! minute-by-minute utilization and cameras-served series (Fig. 6a/6b).

use microedge::bench::runner::SystemConfig;
use microedge::bench::trace_study::run_trace;
use microedge::sim::time::SimDuration;
use microedge::workloads::trace::{synthesize, TraceClass, TraceConfig};

fn main() {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(15 * 60);
    let trace = synthesize(&cfg, 7);

    let by_class = |class: TraceClass| trace.iter().filter(|e| e.class == class).count();
    println!(
        "Synthesised trace: {} arrivals over {:.0} minutes ({} steady, {} sparse, {} bursty)\n",
        trace.len(),
        cfg.duration.as_secs_f64() / 60.0,
        by_class(TraceClass::Steady),
        by_class(TraceClass::Sparse),
        by_class(TraceClass::Bursty),
    );

    let microedge = run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6);
    let baseline = run_trace(SystemConfig::Baseline, &trace, &cfg, 6);

    println!("minute | microedge util | baseline util | microedge served | baseline served");
    println!("{}", "-".repeat(80));
    for minute in 0..microedge.windowed_utilization().len() {
        println!(
            "{minute:>6} | {:>14.3} | {:>13.3} | {:>16.2} | {:>15.2}",
            microedge.windowed_utilization()[minute],
            baseline
                .windowed_utilization()
                .get(minute)
                .copied()
                .unwrap_or(0.0),
            microedge.served_series()[minute],
            baseline.served_series().get(minute).copied().unwrap_or(0.0),
        );
    }

    println!(
        "\nmicroedge: {} admitted, {} rejected | baseline: {} admitted, {} rejected",
        microedge.admitted(),
        microedge.rejected(),
        baseline.admitted(),
        baseline.rejected(),
    );
    println!(
        "mean cameras served — microedge {:.2} vs baseline {:.2}",
        microedge.mean_served(),
        baseline.mean_served()
    );
}
