#!/usr/bin/env bash
# CI-style gate: formatting, lints-as-errors, build, and the test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> microedge-lint (determinism/robustness rules, see LINTS.md)"
cargo run --quiet -p microedge-lint

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --quiet --workspace

echo "==> scale study smoke + determinism (repro --scale --quick)"
scale_out="$(mktemp -d)"
trap 'rm -rf "$scale_out"' EXIT
cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/b"
cmp "$scale_out/a/BENCH_scale.json" "$scale_out/b/BENCH_scale.json"

echo "All checks passed."
