#!/usr/bin/env bash
# CI-style gate: formatting, lints-as-errors, build, and the test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> microedge-lint (determinism/robustness rules, see LINTS.md)"
cargo run --quiet -p microedge-lint

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --quiet --workspace

echo "==> scale study smoke + sharded-replay determinism (repro --scale --quick)"
# The artifact mixes deterministic simulation output with host measurements
# (events/s, wall time, RSS, worker count). Measurement lines carry "host_"
# keys on their own lines; strip them and the rest must be byte-identical
# across worker counts.
scale_out="$(mktemp -d)"
trap 'rm -rf "$scale_out"' EXIT
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=8 cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/b"
grep -v '"host_' "$scale_out/a/BENCH_scale.json" > "$scale_out/a.filtered"
grep -v '"host_' "$scale_out/b/BENCH_scale.json" > "$scale_out/b.filtered"
cmp "$scale_out/a.filtered" "$scale_out/b.filtered"

echo "All checks passed."
