#!/usr/bin/env bash
# CI-style gate: formatting, lints-as-errors, build, and the test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --quiet --workspace

echo "All checks passed."
