#!/usr/bin/env bash
# CI-style gate: formatting, lints-as-errors, build, and the test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> microedge-lint (determinism/robustness rules + ratchets, see LINTS.md)"
cargo run --quiet -p microedge-lint

echo "==> microedge-lint tests-report (informational, never gates)"
cargo run --quiet -p microedge-lint -- --tests-report | tail -n 1

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --quiet --workspace

# Benchmark artifacts mix deterministic simulation output with host
# measurements (events/s, wall time, RSS, worker count, speedups).
# Measurement lines carry "host_" keys on their own lines; strip them and
# the rest must be byte-identical across worker counts.
strip_host_lines() {
  grep -v '"host_' "$1"
}

# Compares one artifact produced under two MICROEDGE_WORKERS settings,
# host_ lines stripped: assert_deterministic_artifact <name> <dir_a> <dir_b>
assert_deterministic_artifact() {
  local name="$1" a="$2" b="$3"
  strip_host_lines "$a/$name" > "$a/$name.filtered"
  strip_host_lines "$b/$name" > "$b/$name.filtered"
  cmp "$a/$name.filtered" "$b/$name.filtered"
}

echo "==> scale study smoke + sharded-replay determinism (repro --scale --quick)"
scale_out="$(mktemp -d)"
trap 'rm -rf "$scale_out"' EXIT
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=8 cargo run --release -p microedge-bench --bin repro -- --scale --quick --csv "$scale_out/b"
assert_deterministic_artifact BENCH_scale.json "$scale_out/a" "$scale_out/b"

echo "==> fleet front-door smoke + determinism (repro --fleet --quick)"
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --fleet --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=8 cargo run --release -p microedge-bench --bin repro -- --fleet --quick --csv "$scale_out/b"
assert_deterministic_artifact BENCH_fleet.json "$scale_out/a" "$scale_out/b"

echo "==> network chaos smoke + determinism (repro --net --quick)"
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --net --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=8 cargo run --release -p microedge-bench --bin repro -- --net --quick --csv "$scale_out/b"
assert_deterministic_artifact BENCH_net.json "$scale_out/a" "$scale_out/b"

echo "==> online defragmentation smoke + determinism (repro --defrag --quick)"
MICROEDGE_WORKERS=1 cargo run --release -p microedge-bench --bin repro -- --defrag --quick --csv "$scale_out/a"
MICROEDGE_WORKERS=8 cargo run --release -p microedge-bench --bin repro -- --defrag --quick --csv "$scale_out/b"
assert_deterministic_artifact BENCH_defrag.json "$scale_out/a" "$scale_out/b"

echo "All checks passed."
