//! The built-in model catalog.
//!
//! Inference times and parameter sizes are reconstructed from the numbers the
//! paper states directly and from public Coral Edge TPU benchmarks, chosen so
//! that every quantitative property the paper's figures rely on holds (see
//! `DESIGN.md` §4):
//!
//! - five of the eight Fig.-1 models need more than 50 FPS to reach 100 %
//!   TPU utilization;
//! - EfficientNet-Lite0 takes 69 ms per inference (paper §1), and ResNet-50
//!   and EfficientDet-Lite0 exceed the 66.7 ms inter-arrival period at 15 FPS;
//! - SSD MobileNet V2 with the data-plane service overhead occupies the TPU
//!   for 23.33 ms per frame → 0.35 TPU units at 15 FPS (paper §6.2);
//! - BodyPix MobileNet V1 occupies 80 ms → 1.2 TPU units at 15 FPS
//!   (paper §6.2).
//!
//! # Examples
//!
//! ```
//! use microedge_models::catalog::Catalog;
//!
//! let catalog = Catalog::builtin();
//! let ssd = catalog.get(&"ssd-mobilenet-v2".into()).unwrap();
//! assert_eq!(ssd.inference_time().as_millis_f64(), 15.0);
//! ```

use std::collections::BTreeMap;

use microedge_sim::time::SimDuration;

use crate::profile::{ModelId, ModelKind, ModelProfile};

const KIB: u64 = 1024;

fn profile(
    name: &str,
    kind: ModelKind,
    inference_ns: u64,
    param_kib: u64,
    w: u32,
    h: u32,
) -> ModelProfile {
    ModelProfile::new(
        ModelId::new(name),
        kind,
        SimDuration::from_nanos(inference_ns),
        param_kib * KIB,
        w,
        h,
    )
}

/// SSD MobileNet V1 object detection (Fig. 1).
#[must_use]
pub fn ssd_mobilenet_v1() -> ModelProfile {
    profile(
        "ssd-mobilenet-v1",
        ModelKind::Detection,
        9_000_000,
        5_325,
        300,
        300,
    )
}

/// SSD MobileNet V2 object detection — the Coral-Pie vehicle-detection model
/// (paper §6.2, 0.35 TPU units at 15 FPS).
#[must_use]
pub fn ssd_mobilenet_v2() -> ModelProfile {
    profile(
        "ssd-mobilenet-v2",
        ModelKind::Detection,
        15_000_000,
        5_222,
        300,
        300,
    )
}

/// SSD MobileNet V2 face detector (Fig. 1).
#[must_use]
pub fn ssd_mobilenet_v2_face() -> ModelProfile {
    profile(
        "ssd-mobilenet-v2-face",
        ModelKind::Detection,
        6_000_000,
        4_403,
        320,
        320,
    )
}

/// EfficientDet-Lite0 object detection — one of the paper's examples of a
/// model whose inference time exceeds the 15 FPS inter-arrival period.
#[must_use]
pub fn efficientdet_lite0() -> ModelProfile {
    profile(
        "efficientdet-lite0",
        ModelKind::Detection,
        70_000_000,
        5_734,
        320,
        320,
    )
}

/// MobileNet V1 classification — the "sparse" trace-study model (paper §6.3).
#[must_use]
pub fn mobilenet_v1() -> ModelProfile {
    profile(
        "mobilenet-v1",
        ModelKind::Classification,
        6_000_000,
        3_584,
        224,
        224,
    )
}

/// MobileNet V2 classification (Fig. 1).
#[must_use]
pub fn mobilenet_v2() -> ModelProfile {
    profile(
        "mobilenet-v2",
        ModelKind::Classification,
        8_000_000,
        3_277,
        224,
        224,
    )
}

/// EfficientNet-Lite0 classification — 69 ms per inference (paper §1).
#[must_use]
pub fn efficientnet_lite0() -> ModelProfile {
    profile(
        "efficientnet-lite0",
        ModelKind::Classification,
        69_000_000,
        4_506,
        224,
        224,
    )
}

/// ResNet-50 classification — exceeds the 15 FPS inter-arrival period, and
/// its parameter data alone exceeds the 6.9 MB TPU budget, so it is always
/// partially cached.
#[must_use]
pub fn resnet_50() -> ModelProfile {
    profile(
        "resnet-50",
        ModelKind::Classification,
        72_000_000,
        7_475,
        224,
        224,
    )
}

/// BodyPix MobileNet V1 person segmentation — 1.2 TPU units at 15 FPS
/// (paper §6.2), so a dedicated deployment needs two TPUs per camera.
#[must_use]
pub fn bodypix_mobilenet_v1() -> ModelProfile {
    profile(
        "bodypix-mobilenet-v1",
        ModelKind::Segmentation,
        71_666_667,
        4_813,
        481,
        353,
    )
}

/// UNet V2 segmentation — the "bursty" trace-study model (paper §6.3).
#[must_use]
pub fn unet_v2() -> ModelProfile {
    profile(
        "unet-v2",
        ModelKind::Segmentation,
        36_666_667,
        2_355,
        256,
        256,
    )
}

/// The eight models plotted in the paper's Fig. 1, in figure order
/// (detections first, then classifications).
#[must_use]
pub fn fig1_models() -> Vec<ModelProfile> {
    vec![
        ssd_mobilenet_v1(),
        ssd_mobilenet_v2(),
        ssd_mobilenet_v2_face(),
        efficientdet_lite0(),
        mobilenet_v1(),
        mobilenet_v2(),
        efficientnet_lite0(),
        resnet_50(),
    ]
}

/// A registry of model profiles keyed by [`ModelId`].
///
/// # Examples
///
/// ```
/// use microedge_models::catalog::{Catalog, unet_v2};
///
/// let mut catalog = Catalog::new();
/// catalog.insert(unet_v2());
/// assert!(catalog.get(&"unet-v2".into()).is_some());
/// assert_eq!(catalog.len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Catalog {
    models: BTreeMap<ModelId, ModelProfile>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog {
            models: BTreeMap::new(),
        }
    }

    /// The full built-in catalog: the Fig. 1 models plus the application
    /// models (BodyPix, UNet).
    #[must_use]
    pub fn builtin() -> Self {
        let mut c = Catalog::new();
        for m in fig1_models() {
            c.insert(m);
        }
        c.insert(bodypix_mobilenet_v1());
        c.insert(unet_v2());
        c
    }

    /// Registers a profile, replacing and returning any existing profile
    /// with the same id.
    pub fn insert(&mut self, profile: ModelProfile) -> Option<ModelProfile> {
        self.models.insert(profile.id().clone(), profile)
    }

    /// Looks up a profile by id.
    #[must_use]
    pub fn get(&self, id: &ModelId) -> Option<&ModelProfile> {
        self.models.get(id)
    }

    /// Looks up a profile by id, panicking with a descriptive message if it
    /// is not registered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the catalog.
    #[must_use]
    pub fn expect(&self, id: &ModelId) -> &ModelProfile {
        self.get(id)
            .unwrap_or_else(|| panic!("model {id} is not in the catalog"))
    }

    /// Number of registered models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when no models are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ModelProfile> {
        self.models.values()
    }
}

impl Extend<ModelProfile> for Catalog {
    fn extend<T: IntoIterator<Item = ModelProfile>>(&mut self, iter: T) {
        for m in iter {
            self.insert(m);
        }
    }
}

impl FromIterator<ModelProfile> for Catalog {
    fn from_iter<T: IntoIterator<Item = ModelProfile>>(iter: T) -> Self {
        let mut c = Catalog::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_all_models() {
        let c = Catalog::builtin();
        assert_eq!(c.len(), 10);
        for name in [
            "ssd-mobilenet-v1",
            "ssd-mobilenet-v2",
            "ssd-mobilenet-v2-face",
            "efficientdet-lite0",
            "mobilenet-v1",
            "mobilenet-v2",
            "efficientnet-lite0",
            "resnet-50",
            "bodypix-mobilenet-v1",
            "unet-v2",
        ] {
            assert!(c.get(&name.into()).is_some(), "missing {name}");
        }
    }

    #[test]
    fn fig1_property_five_of_eight_need_over_50fps() {
        let over_50 = fig1_models()
            .iter()
            .filter(|m| m.fps_for_full_utilization() > 50.0)
            .count();
        assert_eq!(over_50, 5, "Fig. 1: five of eight models need > 50 FPS");
    }

    #[test]
    fn fig1_property_three_models_exceed_15fps_interarrival() {
        let interarrival = SimDuration::from_millis_f64(1000.0 / 15.0);
        let heavy: Vec<String> = fig1_models()
            .iter()
            .filter(|m| m.inference_time() > interarrival)
            .map(|m| m.id().to_string())
            .collect();
        assert_eq!(
            heavy,
            vec!["efficientdet-lite0", "efficientnet-lite0", "resnet-50"]
        );
    }

    #[test]
    fn efficientnet_lite0_is_69ms_as_stated_in_paper() {
        assert_eq!(
            efficientnet_lite0().inference_time(),
            SimDuration::from_millis(69)
        );
    }

    #[test]
    fn resnet50_exceeds_tpu_parameter_budget() {
        // 6.9 MB budget from paper footnote 1.
        let budget = (6.9 * 1024.0 * 1024.0) as u64;
        assert!(resnet_50().param_bytes() > budget);
        // Every other builtin fits on its own.
        for m in Catalog::builtin()
            .iter()
            .filter(|m| m.id().as_str() != "resnet-50")
        {
            assert!(m.param_bytes() <= budget, "{} too large", m.id());
        }
    }

    #[test]
    fn trace_pair_cocompiles_within_budget() {
        let budget = (6.9 * 1024.0 * 1024.0) as u64;
        let pair = mobilenet_v1().param_bytes() + unet_v2().param_bytes();
        assert!(pair <= budget, "trace models must co-compile");
        let triple = pair + ssd_mobilenet_v2().param_bytes();
        assert!(
            triple > budget,
            "adding SSD MNv2 must force partial caching"
        );
    }

    #[test]
    fn expect_panics_with_model_name() {
        let c = Catalog::new();
        let err = std::panic::catch_unwind(|| {
            let _ = c.expect(&"nope".into());
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("nope"));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut c = Catalog::new();
        assert!(c.insert(unet_v2()).is_none());
        let prev = c.insert(unet_v2());
        assert_eq!(prev, Some(unet_v2()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let c: Catalog = fig1_models().into_iter().collect();
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }
}
