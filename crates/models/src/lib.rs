#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-models — ML model profiles for the MicroEdge reproduction
//!
//! MicroEdge treats a model as a `(inference time, parameter size, input
//! resolution)` triple obtained by offline profiling (paper §4.1). This crate
//! defines the [`profile::ModelProfile`] type and a built-in
//! [`catalog::Catalog`] reproducing the paper's Fig. 1 models and the
//! application models used in the evaluation (Coral-Pie's SSD MobileNet V2,
//! BodyPix MobileNet V1, MobileNet V1, UNet V2).
//!
//! # Examples
//!
//! ```
//! use microedge_models::catalog::Catalog;
//!
//! let catalog = Catalog::builtin();
//! // The paper's Fig. 1 headline: most models need an impractical frame
//! // rate to saturate a dedicated TPU.
//! let cheap = catalog
//!     .iter()
//!     .filter(|m| m.fps_for_full_utilization() > 50.0)
//!     .count();
//! assert!(cheap >= 5);
//! ```

pub mod catalog;
pub mod profile;

pub use catalog::Catalog;
pub use profile::{ModelId, ModelKind, ModelProfile};
