//! ML model profiles.
//!
//! MicroEdge's scheduler never looks inside a model; it only needs three
//! facts gleaned by offline profiling (paper §4.1): the on-TPU inference time
//! per invoke, the size of the model's parameter data (for the Model Size
//! Rule and co-compilation), and the input resolution (which fixes the bytes
//! the TPU Client must transmit per frame). A [`ModelProfile`] bundles those.
//!
//! # Examples
//!
//! ```
//! use microedge_models::profile::{ModelId, ModelKind, ModelProfile};
//! use microedge_sim::time::SimDuration;
//!
//! let profile = ModelProfile::new(
//!     ModelId::new("ssd-mobilenet-v2"),
//!     ModelKind::Detection,
//!     SimDuration::from_millis(15),
//!     5_100 * 1024,
//!     300,
//!     300,
//! );
//! assert_eq!(profile.input_bytes(), 300 * 300 * 3);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// Identifies a model in the catalog and on TPUs.
///
/// Cheap to clone and hashable; two ids are equal iff their names are.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(Box<str>);

impl ModelId {
    /// Creates an id from a model name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    #[must_use]
    pub fn new(name: &str) -> Self {
        assert!(!name.is_empty(), "model id must be non-empty");
        ModelId(name.into())
    }

    /// The model name.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(name: &str) -> Self {
        ModelId::new(name)
    }
}

/// Inference task family, as in the paper's Fig. 1 grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Object detection (bounding boxes).
    Detection,
    /// Image classification (labels).
    Classification,
    /// Pixel-level segmentation.
    Segmentation,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Detection => "detection",
            ModelKind::Classification => "classification",
            ModelKind::Segmentation => "segmentation",
        };
        f.write_str(s)
    }
}

/// Offline-profiled facts about one compiled model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelProfile {
    id: ModelId,
    kind: ModelKind,
    inference_time: SimDuration,
    param_bytes: u64,
    input_width: u32,
    input_height: u32,
}

impl ModelProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if the inference time is zero, the parameter data is empty, or
    /// either input dimension is zero — all of which would make the profile
    /// meaningless to the scheduler.
    #[must_use]
    pub fn new(
        id: ModelId,
        kind: ModelKind,
        inference_time: SimDuration,
        param_bytes: u64,
        input_width: u32,
        input_height: u32,
    ) -> Self {
        assert!(!inference_time.is_zero(), "inference time must be non-zero");
        assert!(param_bytes > 0, "parameter data must be non-empty");
        assert!(
            input_width > 0 && input_height > 0,
            "input dimensions must be non-zero"
        );
        ModelProfile {
            id,
            kind,
            inference_time,
            param_bytes,
            input_width,
            input_height,
        }
    }

    /// The model's identifier.
    #[must_use]
    pub fn id(&self) -> &ModelId {
        &self.id
    }

    /// Task family.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// On-TPU inference time for one request (fully cached parameters).
    #[must_use]
    pub fn inference_time(&self) -> SimDuration {
        self.inference_time
    }

    /// Size of the model's parameter data in bytes.
    #[must_use]
    pub fn param_bytes(&self) -> u64 {
        self.param_bytes
    }

    /// Required input width in pixels.
    #[must_use]
    pub fn input_width(&self) -> u32 {
        self.input_width
    }

    /// Required input height in pixels.
    #[must_use]
    pub fn input_height(&self) -> u32 {
        self.input_height
    }

    /// Bytes of one pre-processed RGB input frame — what the TPU Client puts
    /// on the wire per invoke.
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        u64::from(self.input_width) * u64::from(self.input_height) * 3
    }

    /// The frame rate that would drive a dedicated TPU to 100 % utilization
    /// with this model — the orange line in the paper's Fig. 1.
    #[must_use]
    pub fn fps_for_full_utilization(&self) -> f64 {
        1.0 / self.inference_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelProfile {
        ModelProfile::new(
            ModelId::new("m"),
            ModelKind::Classification,
            SimDuration::from_millis(10),
            1024,
            224,
            224,
        )
    }

    #[test]
    fn accessors_roundtrip() {
        let p = sample();
        assert_eq!(p.id().as_str(), "m");
        assert_eq!(p.kind(), ModelKind::Classification);
        assert_eq!(p.inference_time(), SimDuration::from_millis(10));
        assert_eq!(p.param_bytes(), 1024);
        assert_eq!(p.input_width(), 224);
        assert_eq!(p.input_height(), 224);
    }

    #[test]
    fn input_bytes_is_rgb() {
        assert_eq!(sample().input_bytes(), 224 * 224 * 3);
    }

    #[test]
    fn full_utilization_fps() {
        let p = sample();
        assert!((p.fps_for_full_utilization() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn model_id_display_and_from() {
        let id: ModelId = "resnet-50".into();
        assert_eq!(id.to_string(), "resnet-50");
        assert_eq!(ModelKind::Detection.to_string(), "detection");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_model_id_rejected() {
        let _ = ModelId::new("");
    }

    #[test]
    #[should_panic(expected = "inference time")]
    fn zero_inference_time_rejected() {
        let _ = ModelProfile::new(
            ModelId::new("m"),
            ModelKind::Detection,
            SimDuration::ZERO,
            1,
            1,
            1,
        );
    }

    #[test]
    fn ids_compare_by_name() {
        assert_eq!(ModelId::new("a"), ModelId::new("a"));
        assert_ne!(ModelId::new("a"), ModelId::new("b"));
        assert!(ModelId::new("a") < ModelId::new("b"));
    }
}
