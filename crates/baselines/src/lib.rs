#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-baselines — the comparators from the paper's evaluation
//!
//! - [`dedicated`] — the bare-metal baseline: every camera gets ⌈units⌉
//!   exclusive TPUs, expressed as an admission policy so it drives the same
//!   data plane as MicroEdge (paper §6.2);
//! - [`serverless`] — the per-model shared-queue design the paper argues
//!   against, as an analytic per-invoke path model (paper §2, §6.4.2).
//!
//! # Examples
//!
//! ```
//! use microedge_baselines::dedicated::DedicatedBaseline;
//! use microedge_core::admission::AdmissionPolicy;
//!
//! let mut policy = DedicatedBaseline::new();
//! assert_eq!(policy.name(), "dedicated-baseline");
//! ```

pub mod dedicated;
pub mod serverless;

pub use dedicated::DedicatedBaseline;
pub use serverless::{baremetal_invoke_breakdown, microedge_invoke_breakdown, ServerlessPath};
