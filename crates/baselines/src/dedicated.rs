//! The bare-metal dedicated baseline (paper §6.2).
//!
//! The evaluation's baseline "dedicates TPUs for each camera stream" and
//! "cannot exploit fractional TPU resources": a camera needing *u* TPU
//! units receives ⌈u⌉ whole TPUs for itself (Coral-Pie: one TPU per
//! camera; BodyPix: two TPUs, alternating frames between them). The
//! baseline is expressed as an [`AdmissionPolicy`] so it drives exactly the
//! same data plane as MicroEdge — only the allocation discipline differs —
//! and its streams are marked *collocated* (the TPU hangs off the camera's
//! own host, so there is no network hop, matching Fig. 7b).

use microedge_core::admission::{AdmissionPolicy, PlanBuffer};
use microedge_core::config::Features;
use microedge_core::pool::{Allocation, TpuPool};
use microedge_core::units::TpuUnits;
use microedge_models::profile::ModelProfile;

/// Integral, exclusive TPU allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedicatedBaseline;

impl DedicatedBaseline {
    /// Creates the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        DedicatedBaseline
    }
}

impl AdmissionPolicy for DedicatedBaseline {
    /// Grants ⌈units⌉ completely idle TPUs, each marked fully loaded
    /// (1 TPU unit) so no other camera can ever share them. The equal
    /// full-unit weights make the pod's LBS alternate frames across its
    /// TPUs — the paper's "sending alternate frames to each TPU".
    ///
    /// An idle TPU is exactly one with a full unit free, so the pool's
    /// capacity index enumerates the candidates (in id order — the 1.0
    /// bucket is one tie group) without scanning loaded TPUs.
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        _model: &ModelProfile,
        units: TpuUnits,
        _features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        out.clear();
        let needed = units.whole_tpus_needed() as usize;
        for tpu in pool.tpus_by_free_ascending(TpuUnits::ONE).take(needed) {
            out.push(Allocation::new(tpu, TpuUnits::ONE));
        }
        if out.len() == needed {
            true
        } else {
            out.clear();
            false
        }
    }

    fn name(&self) -> &'static str {
        "dedicated-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_models::catalog::{bodypix_mobilenet_v1, ssd_mobilenet_v2};
    use microedge_tpu::device::TpuId;
    use microedge_tpu::spec::TpuSpec;

    fn pool(trpis: u32) -> TpuPool {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(1).build();
        TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
    }

    #[test]
    fn coral_pie_takes_one_whole_tpu() {
        let mut pool = pool(2);
        let mut policy = DedicatedBaseline::new();
        let m = ssd_mobilenet_v2();
        let plan = policy
            .plan(&pool, &m, TpuUnits::from_f64(0.35), Features::all())
            .unwrap();
        assert_eq!(plan, vec![Allocation::new(TpuId(0), TpuUnits::ONE)]);
        pool.commit(&m, &plan);
        // Second camera gets the second TPU, not the leftover 0.65.
        let plan2 = policy
            .plan(&pool, &m, TpuUnits::from_f64(0.35), Features::all())
            .unwrap();
        assert_eq!(plan2[0].tpu(), TpuId(1));
        pool.commit(&m, &plan2);
        // Cluster exhausted after two cameras on two TPUs.
        assert!(policy
            .plan(&pool, &m, TpuUnits::from_f64(0.35), Features::all())
            .is_none());
    }

    #[test]
    fn bodypix_takes_two_tpus_with_equal_weights() {
        let pool = pool(3);
        let mut policy = DedicatedBaseline::new();
        let plan = policy
            .plan(
                &pool,
                &bodypix_mobilenet_v1(),
                TpuUnits::from_f64(1.2),
                Features::all(),
            )
            .unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|a| a.units() == TpuUnits::ONE));
    }

    #[test]
    fn partially_loaded_tpus_are_never_reused() {
        let mut pool = pool(1);
        let m = ssd_mobilenet_v2();
        pool.commit(&m, &[Allocation::new(TpuId(0), TpuUnits::from_f64(0.01))]);
        let mut policy = DedicatedBaseline::new();
        assert!(policy
            .plan(&pool, &m, TpuUnits::from_f64(0.35), Features::all())
            .is_none());
    }

    #[test]
    fn failed_tpus_are_skipped() {
        let mut pool = pool(2);
        pool.fail(TpuId(0));
        let mut policy = DedicatedBaseline::new();
        let plan = policy
            .plan(
                &pool,
                &ssd_mobilenet_v2(),
                TpuUnits::from_f64(0.35),
                Features::all(),
            )
            .unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1));
    }

    #[test]
    fn policy_name() {
        assert_eq!(DedicatedBaseline::new().name(), "dedicated-baseline");
    }
}
