//! The serverless-design comparator (paper §1, §2, §6.4.2).
//!
//! Cloud inference systems (Clipper, Clockwork, INFaaS, Triton) route every
//! request through a **per-model shared queue** on a scheduler node and make
//! a placement decision *per invocation*. The paper argues this is the wrong
//! design for a low-cost edge cluster because the extra data movement and
//! runtime scheduling are "detrimental to meeting application SLOs" on
//! RPi-class hardware. This module quantifies that argument with an
//! analytic per-invoke path model:
//!
//! ```text
//! MicroEdge  : client ──frame──► TPU Service                (1 data hop)
//! serverless : client ──frame──► queue node ──frame──► TPU  (2 data hops
//!                                + per-request scheduling decision)
//! ```
//!
//! Both paths share the same pre-processing, inference, and post-processing
//! costs; the comparator differs only where the designs differ.

use serde::{Deserialize, Serialize};

use microedge_cluster::network::NetworkModel;
use microedge_core::config::DataPlaneConfig;
use microedge_metrics::latency::LatencyBreakdown;
use microedge_models::profile::ModelProfile;
use microedge_sim::time::SimDuration;

/// Cost parameters of the serverless data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerlessPath {
    scheduling_decision: SimDuration,
    queue_hops: u32,
}

impl ServerlessPath {
    /// Creates a path model.
    ///
    /// # Panics
    ///
    /// Panics if `queue_hops` is zero — a serverless design has at least
    /// the client→queue hop in addition to queue→worker.
    #[must_use]
    pub fn new(scheduling_decision: SimDuration, queue_hops: u32) -> Self {
        assert!(
            queue_hops >= 1,
            "serverless path has at least one extra hop"
        );
        ServerlessPath {
            scheduling_decision,
            queue_hops,
        }
    }

    /// Calibrated for an RPi-class scheduler node: a 2 ms deadline-driven
    /// dispatch decision per request and one extra store-and-forward data
    /// hop through the shared queue.
    #[must_use]
    pub fn rpi_calibrated() -> Self {
        ServerlessPath::new(SimDuration::from_millis(2), 1)
    }

    /// Per-request scheduling cost.
    #[must_use]
    pub fn scheduling_decision(&self) -> SimDuration {
        self.scheduling_decision
    }

    /// The per-invoke latency breakdown along the serverless path. The
    /// extra hop and the dispatch decision are charged to the transmission
    /// phase (they happen between client and TPU).
    #[must_use]
    pub fn invoke_breakdown(
        &self,
        profile: &ModelProfile,
        net: &NetworkModel,
        dp: &DataPlaneConfig,
    ) -> LatencyBreakdown {
        let single_hop = net.transfer_time(profile.input_bytes());
        let transmission = single_hop * u64::from(self.queue_hops + 1) + self.scheduling_decision;
        LatencyBreakdown::new(
            dp.preprocess,
            transmission,
            dp.service_time(profile),
            dp.postprocess,
        )
    }

    /// The per-invoke latency penalty over MicroEdge's direct path.
    #[must_use]
    pub fn penalty_over_microedge(
        &self,
        profile: &ModelProfile,
        net: &NetworkModel,
        dp: &DataPlaneConfig,
    ) -> SimDuration {
        let serverless = self.invoke_breakdown(profile, net, dp).total();
        let microedge = microedge_invoke_breakdown(profile, net, dp).total();
        serverless.saturating_sub(microedge)
    }
}

impl Default for ServerlessPath {
    /// The calibrated RPi path.
    fn default() -> Self {
        ServerlessPath::rpi_calibrated()
    }
}

/// MicroEdge's per-invoke breakdown on the same cost model (one direct
/// data hop, no runtime scheduling) — the uncongested Fig. 7b path.
#[must_use]
pub fn microedge_invoke_breakdown(
    profile: &ModelProfile,
    net: &NetworkModel,
    dp: &DataPlaneConfig,
) -> LatencyBreakdown {
    LatencyBreakdown::new(
        dp.preprocess,
        net.transfer_time(profile.input_bytes()),
        dp.service_time(profile),
        dp.postprocess,
    )
}

/// The bare-metal baseline's per-invoke breakdown (collocated TPU — no
/// transmission at all).
#[must_use]
pub fn baremetal_invoke_breakdown(
    profile: &ModelProfile,
    dp: &DataPlaneConfig,
) -> LatencyBreakdown {
    LatencyBreakdown::new(
        dp.preprocess,
        SimDuration::ZERO,
        dp.service_time(profile),
        dp.postprocess,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_models::catalog::ssd_mobilenet_v2;

    fn fixtures() -> (ModelProfile, NetworkModel, DataPlaneConfig) {
        (
            ssd_mobilenet_v2(),
            NetworkModel::rpi_gigabit(),
            DataPlaneConfig::calibrated(),
        )
    }

    #[test]
    fn serverless_pays_double_transmission_plus_dispatch() {
        let (m, net, dp) = fixtures();
        let path = ServerlessPath::rpi_calibrated();
        let sl = path.invoke_breakdown(&m, &net, &dp);
        let me = microedge_invoke_breakdown(&m, &net, &dp);
        let hop = net.transfer_time(m.input_bytes());
        let expected_extra = hop + SimDuration::from_millis(2);
        assert_eq!(sl.total() - me.total(), expected_extra);
    }

    #[test]
    fn penalty_is_about_10ms_for_coral_pie() {
        let (m, net, dp) = fixtures();
        let penalty = ServerlessPath::rpi_calibrated().penalty_over_microedge(&m, &net, &dp);
        // One extra ~8 ms hop + 2 ms dispatch ≈ 10 ms — a large share of
        // the 66.7 ms frame budget on RPi-class hardware.
        assert!(
            (penalty.as_millis_f64() - 10.0).abs() < 0.2,
            "got {penalty}"
        );
    }

    #[test]
    fn microedge_total_matches_fig7b_story() {
        let (m, net, dp) = fixtures();
        let me = microedge_invoke_breakdown(&m, &net, &dp);
        let bm = baremetal_invoke_breakdown(&m, &dp);
        // The only difference between baseline and MicroEdge is the ~8 ms
        // transmission (paper Fig. 7b).
        let delta = me.total() - bm.total();
        assert!((delta.as_millis_f64() - 8.0).abs() < 0.1);
    }

    #[test]
    fn inference_phase_identical_across_designs() {
        let (m, net, dp) = fixtures();
        use microedge_metrics::latency::Phase;
        let sl = ServerlessPath::rpi_calibrated().invoke_breakdown(&m, &net, &dp);
        let me = microedge_invoke_breakdown(&m, &net, &dp);
        let bm = baremetal_invoke_breakdown(&m, &dp);
        assert_eq!(sl.phase(Phase::Inference), me.phase(Phase::Inference));
        assert_eq!(bm.phase(Phase::Inference), me.phase(Phase::Inference));
    }

    #[test]
    #[should_panic(expected = "extra hop")]
    fn zero_hop_path_rejected() {
        let _ = ServerlessPath::new(SimDuration::ZERO, 0);
    }
}
