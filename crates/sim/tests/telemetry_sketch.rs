//! Differential property suite: [`LogLinearSketch`] against the exact,
//! sample-retaining [`Histogram`] oracle.
//!
//! The sketch's contract has three parts, each checked on random inputs:
//!
//! 1. **Bounded error** — any percentile is within
//!    [`SKETCH_RELATIVE_ERROR`] of the exact nearest-rank value (plus the
//!    half-nanosecond quantisation of `record`'s ms→ns rounding).
//! 2. **Exact extremes** — p0 and p100 are the true min and max, not
//!    bucket bounds.
//! 3. **Mergeability** — merging shard sketches is indistinguishable from
//!    recording the concatenated stream, for any sharding and any order.

use microedge_sim::stats::{Histogram, LogLinearSketch, SKETCH_RELATIVE_ERROR};
use proptest::prelude::*;

/// Slack for the ms→ns rounding in `record`: half a nanosecond, in ms,
/// with a little headroom for the f64 arithmetic around it.
const ROUNDING_SLACK_MS: f64 = 1e-6;

fn sketch_of(samples: &[f64]) -> LogLinearSketch {
    samples.iter().copied().collect()
}

proptest! {
    #[test]
    fn percentiles_track_exact_within_bound(
        samples in prop::collection::vec(0.001f64..10_000.0, 1..300),
        p in 0.0f64..=100.0,
    ) {
        let mut exact: Histogram = samples.iter().copied().collect();
        let sketch = sketch_of(&samples);
        let e = exact.percentile(p).unwrap();
        let s = sketch.percentile(p).unwrap();
        // The sketch reports the bucket's upper bound, so it may only
        // overshoot — and by at most one bucket width.
        prop_assert!(
            s + ROUNDING_SLACK_MS >= e,
            "sketch undershot: sketch {s} < exact {e} at p{p}"
        );
        prop_assert!(
            s <= e * (1.0 + SKETCH_RELATIVE_ERROR) + ROUNDING_SLACK_MS,
            "sketch overshot the error bound: sketch {s}, exact {e} at p{p}"
        );
    }

    #[test]
    fn extremes_are_exact(samples in prop::collection::vec(0.001f64..10_000.0, 1..300)) {
        let mut exact: Histogram = samples.iter().copied().collect();
        let sketch = sketch_of(&samples);
        let lo = sketch.percentile(0.0).unwrap();
        let hi = sketch.percentile(100.0).unwrap();
        prop_assert!((lo - exact.percentile(0.0).unwrap()).abs() <= ROUNDING_SLACK_MS);
        prop_assert!((hi - exact.percentile(100.0).unwrap()).abs() <= ROUNDING_SLACK_MS);
        prop_assert_eq!(sketch.min(), Some(lo));
        prop_assert_eq!(sketch.max(), Some(hi));
    }

    #[test]
    fn count_and_mean_match_exact(samples in prop::collection::vec(0.001f64..10_000.0, 1..300)) {
        let exact: Histogram = samples.iter().copied().collect();
        let sketch = sketch_of(&samples);
        prop_assert_eq!(sketch.count(), exact.count() as u64);
        // The mean is exact up to per-sample ns rounding (not sketched).
        prop_assert!((sketch.mean() - exact.mean()).abs() <= ROUNDING_SLACK_MS);
    }

    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(0.001f64..10_000.0, 0..200),
        b in prop::collection::vec(0.001f64..10_000.0, 0..200),
    ) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let concatenated: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, sketch_of(&concatenated));
    }

    #[test]
    fn sharded_merge_matches_whole_in_any_order(
        samples in prop::collection::vec(0.001f64..10_000.0, 1..300),
        shards in 1usize..8,
        reverse in prop::bool::ANY,
    ) {
        let mut parts = vec![LogLinearSketch::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].record(v);
        }
        if reverse {
            parts.reverse();
        }
        let mut merged = LogLinearSketch::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged, sketch_of(&samples));
    }

    #[test]
    fn memory_is_bounded_regardless_of_input(
        samples in prop::collection::vec(0.001f64..10_000.0, 1..300),
    ) {
        let sketch = sketch_of(&samples);
        // 10 s in ns needs buckets up to index ~4300; far below the cap,
        // and never anywhere near the sample-retaining oracle's O(n).
        prop_assert!(sketch.memory_bytes() <= microedge_sim::stats::SKETCH_MAX_BUCKETS * 8);
    }
}
