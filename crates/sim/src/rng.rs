//! Deterministic random number generation for experiments.
//!
//! Every stochastic element of an experiment draws from a [`DetRng`] that is
//! seeded explicitly, so a given seed reproduces the experiment exactly. The
//! type also provides the distribution samplers the workload and latency
//! models need (uniform, normal, exponential, Poisson) without pulling in a
//! separate distributions crate.
//!
//! # Examples
//!
//! ```
//! use microedge_sim::rng::DetRng;
//!
//! let mut a = DetRng::seed_from(42);
//! let mut b = DetRng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A seeded, reproducible random number generator.
///
/// Wraps [`rand::rngs::SmallRng`] and layers on the distribution samplers the
/// simulator needs. Child generators can be forked deterministically with
/// [`DetRng::fork`] so that independent components consume independent
/// streams without sharing mutable state.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

/// One SplitMix64 scramble round — decorrelates the early output of
/// generators created from small consecutive seeds (0, 1, 2, …), which are
/// exactly the seeds experiments like to use. Public because stateless
/// per-message draws (network loss, retry jitter) hash identities through
/// it rather than carrying generator state.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Deterministically derives an independent child generator.
    ///
    /// The child stream depends on both the parent state and `salt`, so two
    /// forks with different salts are decorrelated while remaining
    /// reproducible.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform_f64() < p
    }

    /// Standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by shifting the first uniform into (0, 1].
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        let u = 1.0 - self.uniform_f64();
        -u.ln() / rate
    }

    /// Poisson sample with the given mean, using Knuth's method for small
    /// means and a normal approximation above 64.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "mean must be finite and non-negative, got {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform_f64();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform_f64();
        }
        count
    }

    /// Normal-distributed duration, truncated at zero.
    pub fn normal_duration(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let sample = self.normal(mean.as_millis_f64(), std_dev.as_millis_f64());
        SimDuration::from_millis_f64(sample.max(0.0))
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        assert!(!mean.is_zero(), "mean duration must be non-zero");
        let secs = self.exponential(1.0 / mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        let len = u64::try_from(len).expect("slice length fits u64");
        usize::try_from(self.uniform_range(0, len)).expect("index below len fits usize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut parent1 = DetRng::seed_from(99);
        let mut parent2 = DetRng::seed_from(99);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = DetRng::seed_from(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_is_in_range() {
        let mut rng = DetRng::seed_from(3);
        for _ in 0..1000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
            let r = rng.uniform_range(10, 20);
            assert!((10..20).contains(&r));
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = DetRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(13);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = DetRng::seed_from(17);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.15, "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
        // Large-mean path uses the normal approximation.
        let big = rng.poisson(500.0);
        assert!((400..600).contains(&(big as i64)));
    }

    #[test]
    fn consecutive_small_seeds_are_unbiased() {
        // Regression: SmallRng's own seeding leaves the first draws of
        // consecutive small seeds correlated; the SplitMix64 pre-scramble
        // must remove that.
        let total: usize = (0..8u64)
            .map(|seed| {
                let mut r = DetRng::seed_from(seed);
                (0..300).filter(|_| r.chance(2.0 / 3.0)).count()
            })
            .sum();
        let rate = total as f64 / 2400.0;
        assert!((rate - 2.0 / 3.0).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn normal_duration_truncates_at_zero() {
        let mut rng = DetRng::seed_from(23);
        for _ in 0..1000 {
            let d = rng.normal_duration(SimDuration::from_millis(1), SimDuration::from_millis(10));
            // No panic means no negative sample slipped through; also check type range.
            let _ = d.as_millis_f64();
        }
    }

    #[test]
    fn exponential_duration_mean_close() {
        let mut rng = DetRng::seed_from(29);
        let n = 10_000;
        let mean_ms: f64 = (0..n)
            .map(|_| {
                rng.exponential_duration(SimDuration::from_millis(40))
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean_ms - 40.0).abs() < 2.0, "mean {mean_ms}");
    }
}
