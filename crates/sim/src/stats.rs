//! Online statistics, histograms, and constant-memory quantile sketches.
//!
//! [`OnlineStats`] accumulates count/mean/variance/min/max in O(1) memory
//! (Welford's algorithm). [`Histogram`] keeps every sample and answers
//! exact percentile queries — at production stream counts its O(frames)
//! memory makes it unusable on hot paths, so it survives as the
//! *differential oracle* the sketch is tested against. [`LogLinearSketch`]
//! is the production aggregate: a deterministic, fixed-memory, mergeable
//! log-linear histogram (HDR-style) over integer nanoseconds whose
//! quantiles carry a documented relative-error bound
//! ([`SKETCH_RELATIVE_ERROR`], ≤ 0.79 %).
//!
//! # Examples
//!
//! ```
//! use microedge_sim::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.count(), 3);
//! ```

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Streaming count / mean / variance / min / max accumulator.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; a NaN observation would silently poison
    /// every derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a duration observation, in milliseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_millis_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An exact-percentile histogram that retains all samples.
///
/// # Examples
///
/// ```
/// use microedge_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for x in 1..=100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.percentile(50.0), Some(50.0));
/// assert_eq!(h.percentile(99.0), Some(99.0));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.sorted = false;
        self.samples.push(value);
    }

    /// Adds a duration observation, in milliseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_millis_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact percentile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            // `total_cmp` instead of `partial_cmp(..).expect(..)`: `record`
            // rejects NaN, but a sample smuggled in through deserialization
            // or a future code path must degrade to a deterministic order,
            // not a panic halfway through an experiment.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        Some(self.samples[rank.min(n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Immutable view of the recorded samples, in insertion order only if no
    /// percentile has been queried yet.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Linear sub-buckets per power-of-two range, as a bit shift. 2⁷ = 128
/// sub-buckets bound the quantile relative error at 2⁻⁷.
const SKETCH_PRECISION_BITS: u32 = 7;

/// Sub-bucket count per octave.
const SKETCH_SUB: u64 = 1 << SKETCH_PRECISION_BITS;

/// Total bucket slots needed to cover the full `u64` nanosecond range:
/// the highest mappable index plus one (see [`sketch_bucket`] for
/// `u64::MAX`). A [`LogLinearSketch`] never grows beyond this — ≈ 58 KiB
/// of `u64` counts — whatever it records.
pub const SKETCH_MAX_BUCKETS: usize =
    // lint:allow(no-narrowing-as-cast): const context — `TryFrom` is not const-callable, and both operands are small compile-time constants that fit any usize.
    ((64 - SKETCH_PRECISION_BITS as usize) << SKETCH_PRECISION_BITS) + SKETCH_SUB as usize;

/// The advertised quantile relative-error bound of [`LogLinearSketch`]:
/// any reported percentile `q̂` satisfies `|q̂ - q| ≤ q ·
/// SKETCH_RELATIVE_ERROR` against the exact nearest-rank quantile `q` of
/// the recorded nanosecond values (2⁻⁷ = 0.78125 %).
pub const SKETCH_RELATIVE_ERROR: f64 = 1.0 / SKETCH_SUB as f64;

/// Bucket index of a nanosecond value: values below 2⁷ map exactly, one
/// bucket per nanosecond; above, each power-of-two range splits into 2⁷
/// linear sub-buckets, so bucket width / bucket floor ≤ 2⁻⁷.
#[inline]
const fn sketch_bucket(v: u64) -> usize {
    if v < SKETCH_SUB {
        // lint:allow(no-narrowing-as-cast): const fn — v < 2^7 here, fits any usize.
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        // lint:allow(no-narrowing-as-cast): const fn — widening u32 -> u64 of a 7-bit constant.
        let offset = msb - SKETCH_PRECISION_BITS as u64;
        // lint:allow(no-narrowing-as-cast): const fn — bucket index is bounded by SKETCH_MAX_BUCKETS.
        (((offset + 1) << SKETCH_PRECISION_BITS) + ((v >> offset) - SKETCH_SUB)) as usize
    }
}

/// Inclusive upper bound of bucket `i` — the value a quantile landing in
/// the bucket reports (clamped to the exact max), mirroring HdrHistogram's
/// "highest equivalent value" convention.
#[inline]
const fn sketch_bucket_high(i: usize) -> u64 {
    // lint:allow(no-narrowing-as-cast): const fn — widening usize -> u64 on every supported target.
    let i = i as u64;
    if i < SKETCH_SUB {
        i
    } else {
        let offset = i / SKETCH_SUB - 1;
        let m = i % SKETCH_SUB;
        ((SKETCH_SUB + m) << offset) + ((1 << offset) - 1)
    }
}

/// A deterministic, fixed-memory, mergeable log-linear histogram sketch
/// over integer-nanosecond durations (HDR-style).
///
/// The per-record cost is one bucket increment with zero allocation once
/// the bucket array has grown to the workload's dynamic range — and the
/// array is capped at [`SKETCH_MAX_BUCKETS`] slots (≈ 58 KiB) however many
/// samples are recorded, so telemetry memory is independent of frame
/// count. Exact count, sum, min, and max are retained alongside the
/// buckets; quantiles carry the [`SKETCH_RELATIVE_ERROR`] bound.
///
/// [`LogLinearSketch::merge`] adds another sketch bucket-by-bucket and is
/// exactly equivalent to having recorded the concatenated sample streams,
/// in any merge order — the property that lets sharded workers aggregate
/// without byte-order sensitivity.
///
/// Values are recorded as [`SimDuration`]s (exact) or as `f64`
/// milliseconds (quantized to the nearest nanosecond), and reported in
/// milliseconds, mirroring [`Histogram`]'s reporting units.
///
/// # Examples
///
/// ```
/// use microedge_sim::stats::LogLinearSketch;
/// use microedge_sim::time::SimDuration;
///
/// let mut s = LogLinearSketch::new();
/// for ms in 1..=100u64 {
///     s.record_duration(SimDuration::from_millis(ms));
/// }
/// let p50 = s.percentile(50.0).unwrap();
/// assert!((p50 - 50.0).abs() <= 50.0 * microedge_sim::stats::SKETCH_RELATIVE_ERROR);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogLinearSketch {
    /// Bucket counts, grown lazily to the highest touched bucket.
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LogLinearSketch {
    /// Same as [`LogLinearSketch::new`] — a derived default would zero
    /// `min_ns` instead of seeding it with `u64::MAX`.
    fn default() -> Self {
        LogLinearSketch::new()
    }
}

impl LogLinearSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        LogLinearSketch {
            counts: Vec::new(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration in integer nanoseconds — the hot-path entry:
    /// a bucket increment plus four scalar updates, no allocation once
    /// the bucket array covers the value's range.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = sketch_bucket(ns);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records a duration observation.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record_ns(value.as_nanos());
    }

    /// Records a millisecond observation, quantized to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or negative — durations only.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        assert!(value >= 0.0, "cannot record a negative duration: {value}");
        self.record_ns((value * 1e6).round() as u64);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded durations, in nanoseconds (saturating).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact arithmetic mean in milliseconds, or 0.0 when empty — computed
    /// from the retained exact sum, not from bucket midpoints.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_ns as f64 / self.count as f64) / 1e6
        }
    }

    /// Exact smallest observation in milliseconds, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_ns as f64 / 1e6)
    }

    /// Exact largest observation in milliseconds, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_ns as f64 / 1e6)
    }

    /// Nearest-rank percentile in milliseconds, or `None` when empty.
    ///
    /// The result is within [`SKETCH_RELATIVE_ERROR`] of the exact
    /// nearest-rank quantile of the recorded nanosecond values, and within
    /// the exact `[min, max]`. Needs only `&self` — nothing to sort.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank == 1 {
            // The rank-1 order statistic is the minimum, which is retained
            // exactly — mirrors the max clamp making p100 exact below.
            return Some(self.min_ns as f64 / 1e6);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let ns = sketch_bucket_high(i).clamp(self.min_ns, self.max_ns);
                return Some(ns as f64 / 1e6);
            }
        }
        // Unreachable when the invariants hold (counts sum to count), but
        // degrade to the exact max rather than panicking.
        Some(self.max_ns as f64 / 1e6)
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Merges another sketch into this one. Exactly equivalent to having
    /// recorded `other`'s samples into `self`, in any order.
    pub fn merge(&mut self, other: &LogLinearSketch) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Heap footprint of the bucket array in bytes — the sketch's whole
    /// variable memory, bounded by [`SKETCH_MAX_BUCKETS`] × 8 regardless
    /// of how many samples were recorded.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.counts.capacity() * core::mem::size_of::<u64>()
    }
}

impl Extend<f64> for LogLinearSketch {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for LogLinearSketch {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = LogLinearSketch::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h: Histogram = (1..=10).map(|x| x as f64).collect();
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(10.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(5.0));
        assert_eq!(h.percentile(90.0), Some(9.0));
        assert_eq!(h.percentile(100.0), Some(10.0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_interleaved_record_and_query() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.median(), Some(5.0));
        h.record(1.0);
        h.record(9.0);
        assert_eq!(h.median(), Some(5.0));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_percentile_survives_adversarial_floats() {
        // Regression: the sort must be a total order. `record` rejects NaN,
        // but infinities, signed zeros, and subnormals are representable —
        // `partial_cmp(..).expect(..)` was one deserialized NaN away from a
        // mid-experiment panic, `total_cmp` never panics.
        let mut h = Histogram::new();
        for v in [
            f64::INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            0.0,
            f64::NEG_INFINITY,
            1.0,
            f64::MIN_POSITIVE / 2.0,
        ] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(f64::NEG_INFINITY));
        assert_eq!(h.percentile(100.0), Some(f64::INFINITY));
        assert_eq!(h.median(), Some(f64::MIN_POSITIVE / 2.0));
    }

    #[test]
    fn histogram_percentile_total_order_with_nan_sample() {
        // A NaN cannot enter through `record`, but a serialized histogram
        // is user data: simulate the deserialization path by injecting the
        // raw sample. With `total_cmp` the query stays deterministic and,
        // crucially, does not panic.
        let mut h = Histogram {
            samples: vec![3.0, f64::NAN, 1.0, 2.0],
            sorted: false,
        };
        assert_eq!(h.percentile(25.0), Some(1.0));
        assert_eq!(h.median(), Some(2.0));
        // total_cmp orders positive NaN after +inf: it lands at p100.
        assert!(h.percentile(100.0).unwrap().is_nan());
    }

    #[test]
    fn sketch_bucket_mapping_is_monotone_and_bounded() {
        // Probe every power-of-two boundary ± 1 in increasing order.
        let mut probes: Vec<u64> = vec![0, 1];
        for exp in 1..64u32 {
            let v = 1u64 << exp;
            probes.extend([v - 1, v, v.saturating_add(1)]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev_bucket = 0usize;
        for v in probes {
            let b = sketch_bucket(v);
            assert!(b >= prev_bucket, "bucket index not monotone at {v}");
            assert!(b < SKETCH_MAX_BUCKETS, "bucket {b} for {v}");
            assert!(sketch_bucket_high(b) >= v, "upper bound covers {v}");
            prev_bucket = b;
        }
        assert_eq!(sketch_bucket(u64::MAX), SKETCH_MAX_BUCKETS - 1);
    }

    #[test]
    fn sketch_small_values_are_exact() {
        let mut s = LogLinearSketch::new();
        for ns in 0..SKETCH_SUB * 2 {
            s.record_ns(ns);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            let rank = ((p / 100.0) * s.count() as f64).ceil().max(1.0) as u64;
            let exact_ns = rank - 1; // samples are 0..256, one each
            let got = s.percentile(p).unwrap();
            assert!(
                (got - exact_ns as f64 / 1e6).abs() < 1e-12,
                "p{p}: {got} vs {exact_ns} ns"
            );
        }
    }

    #[test]
    fn sketch_percentiles_within_advertised_bound() {
        let mut s = LogLinearSketch::new();
        let mut exact = Histogram::new();
        // A wide dynamic range: ~0.1 ms to ~13 s, geometric-ish spacing.
        let mut v = 100_000u64;
        for i in 0..4_000u64 {
            let ns = v + (i * i) % 977;
            s.record_ns(ns);
            exact.record(ns as f64 / 1e6);
            v += v / 337 + 1;
        }
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let want = exact.percentile(p).unwrap();
            let got = s.percentile(p).unwrap();
            assert!(
                (got - want).abs() <= want * SKETCH_RELATIVE_ERROR + 1e-6,
                "p{p}: sketch {got} vs exact {want}"
            );
        }
        assert_eq!(s.min(), exact.samples().iter().copied().reduce(f64::min));
        assert!((s.mean() - exact.mean()).abs() <= exact.mean() * 1e-9 + 1e-9);
    }

    #[test]
    fn sketch_merge_equals_concatenated_recording() {
        let data: Vec<u64> = (0..500u64).map(|i| (i * 48_271 + 7) % 40_000_000).collect();
        let mut whole = LogLinearSketch::new();
        let mut left = LogLinearSketch::new();
        let mut right = LogLinearSketch::new();
        for (i, &ns) in data.iter().enumerate() {
            whole.record_ns(ns);
            if i % 3 == 0 {
                left.record_ns(ns);
            } else {
                right.record_ns(ns);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole, "merge must equal the concatenated stream");
        // And the other shard order produces the identical sketch.
        let mut reversed = right;
        reversed.merge(&left);
        assert_eq!(reversed, whole);
    }

    #[test]
    fn sketch_empty_and_edge_cases() {
        let s = LogLinearSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);

        let mut one = LogLinearSketch::new();
        one.record_duration(SimDuration::from_millis(5));
        assert_eq!(one.percentile(0.0), Some(5.0));
        assert_eq!(one.percentile(100.0), Some(5.0));
        assert_eq!(one.median(), Some(5.0));

        let mut e = LogLinearSketch::new();
        e.merge(&one);
        assert_eq!(e, one, "merge into empty is identity");
    }

    #[test]
    fn sketch_memory_is_independent_of_sample_count() {
        let mut s = LogLinearSketch::new();
        for i in 0..10_000u64 {
            s.record_ns(i * 1_000_003 % 66_700_000);
        }
        let footprint = s.memory_bytes();
        for i in 0..100_000u64 {
            s.record_ns(i * 999_983 % 66_700_000);
        }
        assert_eq!(s.memory_bytes(), footprint, "fixed once the range is set");
        assert!(footprint <= SKETCH_MAX_BUCKETS * 8 * 2, "capacity bounded");
        assert_eq!(s.count(), 110_000);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn sketch_rejects_negative() {
        LogLinearSketch::new().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sketch_rejects_nan() {
        LogLinearSketch::new().record(f64::NAN);
    }

    #[test]
    fn duration_recording_uses_millis() {
        let mut s = OnlineStats::new();
        s.record_duration(SimDuration::from_millis(30));
        assert_eq!(s.mean(), 30.0);
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_micros(1500));
        assert_eq!(h.samples(), &[1.5]);
    }
}
