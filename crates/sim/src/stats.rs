//! Online statistics and histograms.
//!
//! [`OnlineStats`] accumulates count/mean/variance/min/max in O(1) memory
//! (Welford's algorithm). [`Histogram`] keeps every sample (the experiment
//! scales here are small) and answers exact percentile queries.
//!
//! # Examples
//!
//! ```
//! use microedge_sim::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.count(), 3);
//! ```

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Streaming count / mean / variance / min / max accumulator.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; a NaN observation would silently poison
    /// every derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a duration observation, in milliseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_millis_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An exact-percentile histogram that retains all samples.
///
/// # Examples
///
/// ```
/// use microedge_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for x in 1..=100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.percentile(50.0), Some(50.0));
/// assert_eq!(h.percentile(99.0), Some(99.0));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.sorted = false;
        self.samples.push(value);
    }

    /// Adds a duration observation, in milliseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_millis_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact percentile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        Some(self.samples[rank.min(n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Immutable view of the recorded samples, in insertion order only if no
    /// percentile has been queried yet.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h: Histogram = (1..=10).map(|x| x as f64).collect();
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(10.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(5.0));
        assert_eq!(h.percentile(90.0), Some(9.0));
        assert_eq!(h.percentile(100.0), Some(10.0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_interleaved_record_and_query() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.median(), Some(5.0));
        h.record(1.0);
        h.record(9.0);
        assert_eq!(h.median(), Some(5.0));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn duration_recording_uses_millis() {
        let mut s = OnlineStats::new();
        s.record_duration(SimDuration::from_millis(30));
        assert_eq!(s.mean(), 30.0);
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_micros(1500));
        assert_eq!(h.samples(), &[1.5]);
    }
}
