//! Windowed time series for per-interval aggregates.
//!
//! The trace study (paper Fig. 6) reports per-minute averages of quantities
//! that evolve continuously (TPU utilization, cameras served). A
//! [`TimeSeries`] buckets observations into fixed windows;
//! [`StepSeries`] integrates a piecewise-constant signal exactly, which is
//! what "average utilization per minute" requires.
//!
//! # Examples
//!
//! ```
//! use microedge_sim::series::StepSeries;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let mut s = StepSeries::new(SimDuration::from_secs(60));
//! s.set(SimTime::ZERO, 0.5);
//! s.set(SimTime::from_secs(30), 1.0);
//! let buckets = s.finish(SimTime::from_secs(60));
//! assert_eq!(buckets.len(), 1);
//! assert!((buckets[0] - 0.75).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Discrete observations bucketed into fixed windows; each bucket reports the
/// mean of the observations that fell into it (0.0 for empty buckets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    window: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "bucket window must be non-zero");
        TimeSeries {
            window,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Bucket width.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records an observation at `time`.
    pub fn record(&mut self, time: SimTime, value: f64) {
        let idx = usize::try_from(time.as_nanos() / self.window.as_nanos())
            .expect("window index fits usize");
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Per-bucket means.
    #[must_use]
    pub fn bucket_means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Number of buckets touched so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// `true` when no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }
}

/// Exact time-weighted averages of a piecewise-constant signal, per window.
///
/// Call [`StepSeries::set`] whenever the signal changes level; call
/// [`StepSeries::finish`] once at the end to flush and obtain the per-window
/// averages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepSeries {
    window: SimDuration,
    /// Integral of the signal (value × nanoseconds) per window.
    integrals: Vec<f64>,
    last_time: SimTime,
    last_value: f64,
    /// Index of the window containing `last_time`.
    ///
    /// Cached together with `window_end` so the hot path — many updates
    /// inside one window — runs without any division; divisions only
    /// happen implicitly via the +1 advance on a window crossing.
    window_idx: usize,
    /// Exclusive end (nanoseconds) of the window at `window_idx`.
    window_end: u64,
}

impl StepSeries {
    /// Creates a series with the given window; the signal starts at 0.0 at
    /// time zero.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "bucket window must be non-zero");
        StepSeries {
            window_end: window.as_nanos(),
            window,
            integrals: Vec::new(),
            last_time: SimTime::ZERO,
            last_value: 0.0,
            window_idx: 0,
        }
    }

    /// Current signal level.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Sets the signal to `value` from `time` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous change (the signal is a
    /// function of time).
    pub fn set(&mut self, time: SimTime, value: f64) {
        assert!(
            time >= self.last_time,
            "signal updates must be time-ordered: {time} < {last}",
            last = self.last_time
        );
        self.integrate_to(time);
        self.last_time = time;
        self.last_value = value;
    }

    /// Adds `delta` to the signal from `time` onwards.
    pub fn add(&mut self, time: SimTime, delta: f64) {
        let next = self.last_value + delta;
        self.set(time, next);
    }

    /// Flushes the signal up to `end` and returns per-window time-weighted
    /// averages. Windows are complete `[k·w, (k+1)·w)` intervals; a trailing
    /// partial window is averaged over the elapsed portion only.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last update.
    #[must_use]
    pub fn finish(mut self, end: SimTime) -> Vec<f64> {
        assert!(
            end >= self.last_time,
            "end {end} precedes last update {last}",
            last = self.last_time
        );
        self.integrate_to(end);
        let w = self.window.as_nanos() as f64;
        let full = usize::try_from(end.as_nanos() / self.window.as_nanos())
            .expect("window index fits usize");
        let rem = end.as_nanos() % self.window.as_nanos();
        self.integrals
            .iter()
            .enumerate()
            .map(|(i, &integral)| {
                let width = if i < full { w } else { rem as f64 };
                if width == 0.0 {
                    0.0
                } else {
                    integral / width
                }
            })
            .collect()
    }

    fn integrate_to(&mut self, time: SimTime) {
        let mut cursor = self.last_time.as_nanos();
        let end = time.as_nanos();
        if end <= cursor {
            // Nothing elapsed; the previous call already materialised every
            // window up to `end`.
            return;
        }
        let w = self.window.as_nanos();
        loop {
            let upto = self.window_end.min(end);
            if self.window_idx >= self.integrals.len() {
                self.integrals.resize(self.window_idx + 1, 0.0);
            }
            self.integrals[self.window_idx] += self.last_value * (upto - cursor) as f64;
            cursor = upto;
            if cursor == self.window_end {
                self.window_idx += 1;
                self.window_end += w;
            }
            if cursor == end {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn timeseries_bucket_means() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.record(secs(1), 1.0);
        ts.record(secs(2), 3.0);
        ts.record(secs(15), 10.0);
        assert_eq!(ts.bucket_means(), vec![2.0, 10.0]);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn timeseries_empty_buckets_are_zero() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(secs(3), 4.0);
        assert_eq!(ts.bucket_means(), vec![0.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn step_series_constant_signal() {
        let mut s = StepSeries::new(SimDuration::from_secs(60));
        s.set(SimTime::ZERO, 0.4);
        let buckets = s.finish(secs(180));
        assert_eq!(buckets.len(), 3);
        for b in buckets {
            assert!((b - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn step_series_mid_window_change() {
        let mut s = StepSeries::new(SimDuration::from_secs(60));
        s.set(SimTime::ZERO, 0.0);
        s.set(secs(30), 1.0);
        let buckets = s.finish(secs(60));
        assert_eq!(buckets.len(), 1);
        assert!((buckets[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_series_spanning_windows() {
        let mut s = StepSeries::new(SimDuration::from_secs(10));
        s.set(SimTime::ZERO, 2.0);
        s.set(secs(25), 0.0);
        let buckets = s.finish(secs(40));
        assert_eq!(buckets.len(), 4);
        assert!((buckets[0] - 2.0).abs() < 1e-12);
        assert!((buckets[1] - 2.0).abs() < 1e-12);
        assert!((buckets[2] - 1.0).abs() < 1e-12);
        assert!((buckets[3] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn step_series_add_is_relative() {
        let mut s = StepSeries::new(SimDuration::from_secs(10));
        s.add(SimTime::ZERO, 1.0);
        s.add(secs(5), 1.0);
        assert_eq!(s.current(), 2.0);
        let buckets = s.finish(secs(10));
        assert!((buckets[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn step_series_partial_trailing_window() {
        let mut s = StepSeries::new(SimDuration::from_secs(10));
        s.set(SimTime::ZERO, 1.0);
        let buckets = s.finish(secs(15));
        assert_eq!(buckets.len(), 2);
        assert!((buckets[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn step_series_rejects_backwards_updates() {
        let mut s = StepSeries::new(SimDuration::from_secs(10));
        s.set(secs(5), 1.0);
        s.set(secs(1), 2.0);
    }
}
