//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence)`, where the sequence number
//! is assigned at insertion. Two events scheduled for the same instant are
//! therefore delivered in insertion order, which keeps simulations
//! reproducible bit-for-bit regardless of heap internals.
//!
//! # Examples
//!
//! ```
//! use microedge_sim::event::EventQueue;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_millis(10), "b");
//! q.schedule_at(SimTime::from_millis(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(5), "a"));
//! assert_eq!(q.now(), SimTime::from_millis(5));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event staged in the queue, ordered by `(time, seq)` ascending.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list for discrete-event simulation.
///
/// The queue carries the simulation clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Time never moves backwards
/// and events may never be scheduled in the past.
///
/// # Examples
///
/// ```
/// use microedge_sim::event::EventQueue;
/// use microedge_sim::time::SimDuration;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { FrameArrived(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_millis(66), Ev::FrameArrived(0));
/// while let Some((t, ev)) = q.pop() {
///     assert_eq!(ev, Ev::FrameArrived(0));
///     assert_eq!(t.as_millis_f64(), 66.0);
/// }
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time (the timestamp of the most recently
    /// popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time —
    /// scheduling into the past is always a logic error.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let time = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(time, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        debug_assert!(scheduled.time >= self.now, "event queue went backwards");
        self.now = scheduled.time;
        self.popped += 1;
        Some((scheduled.time, scheduled.event))
    }

    /// The timestamp of the earliest pending event, if any, without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_after(SimDuration::from_millis(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
