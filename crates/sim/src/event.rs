//! Deterministic event queue.
//!
//! The queue orders events by `(time, sequence)`, where the sequence number
//! is assigned at insertion. Two events scheduled for the same instant are
//! therefore delivered in insertion order, which keeps simulations
//! reproducible bit-for-bit regardless of queue internals.
//!
//! # Implementation
//!
//! Nearly every event a MicroEdge world schedules lands within one frame
//! interval of the current time (pre-processing, a network hop, a TPU
//! invocation, the next frame tick), so the queue is two-tiered:
//!
//! * a **bucket ring** of [`NUM_BUCKETS`] time slices, each
//!   `2^`[`BUCKET_SHIFT`] ns wide (≈ 2.1 ms — ring horizon ≈ 134 ms, two
//!   15 FPS frame intervals), holds every event below the horizon. Buckets
//!   stay unordered: scheduling is a plain `Vec::push` and delivery scans
//!   the (short) head bucket for its `(time, seq)` minimum — far cheaper
//!   than keeping buckets sorted under the simulator's constant
//!   interleaving of pushes and pops;
//! * a **fallback binary heap** holds the rare far-future event (stream
//!   start offsets, coarse experiment timers). Whenever the cursor
//!   advances, heap events that fell below the horizon migrate into the
//!   ring.
//!
//! Both tiers compare `(time, seq)`, so delivery order is bit-for-bit
//! identical to a single global heap — the property the
//! `sim_properties::event_queue_total_order` test pins down.
//!
//! # Examples
//!
//! ```
//! use microedge_sim::event::EventQueue;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_millis(10), "b");
//! q.schedule_at(SimTime::from_millis(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(5), "a"));
//! assert_eq!(q.now(), SimTime::from_millis(5));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// log2 of the bucket width in nanoseconds (2^21 ns ≈ 2.1 ms).
const BUCKET_SHIFT: u32 = 21;

/// Number of buckets in the near-horizon ring.
const NUM_BUCKETS: u64 = 64;

/// The global bucket index an instant falls into.
#[inline]
fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_SHIFT
}

/// The ring-array slot for a global bucket index.
#[inline]
fn ring_slot(bucket: u64) -> usize {
    usize::try_from(bucket % NUM_BUCKETS).expect("ring slot fits usize")
}

/// An event staged in the queue, ordered by `(time, seq)` ascending.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key().cmp(&self.key())
    }
}

/// One ring slot: the events of one global bucket index.
#[derive(Debug)]
struct Bucket<E> {
    /// The global bucket index currently mapped onto this slot. Slots are
    /// reused as the ring wraps; a mismatch means the slot's previous
    /// bucket fully drained and the slot can be re-labelled.
    index: u64,
    /// Unordered; the pop path scans for the `(time, seq)` minimum.
    events: Vec<Scheduled<E>>,
}

/// A deterministic future-event list for discrete-event simulation.
///
/// The queue carries the simulation clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Time never moves backwards
/// and events may never be scheduled in the past.
///
/// # Examples
///
/// ```
/// use microedge_sim::event::EventQueue;
/// use microedge_sim::time::SimDuration;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { FrameArrived(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_millis(66), Ev::FrameArrived(0));
/// while let Some((t, ev)) = q.pop() {
///     assert_eq!(ev, Ev::FrameArrived(0));
///     assert_eq!(t.as_millis_f64(), 66.0);
/// }
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-horizon tier: `NUM_BUCKETS` slots covering global buckets
    /// `[cursor, cursor + NUM_BUCKETS)`.
    ring: Vec<Bucket<E>>,
    /// Bit `s` set ⇔ ring slot `s` is non-empty. `NUM_BUCKETS` is 64
    /// precisely so the earliest occupied bucket is one rotate +
    /// `trailing_zeros` away.
    occupancy: u64,
    /// Events currently held in the ring (the heap tracks its own length).
    ring_len: usize,
    /// Global index of the earliest bucket the ring covers; equals
    /// `bucket_of(now)` between public calls, so all pending events (whose
    /// times are `>= now`) sit at or above it.
    cursor: u64,
    /// Far-future tier: events at or beyond `cursor + NUM_BUCKETS`.
    overflow: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            ring: (0..NUM_BUCKETS)
                .map(|index| Bucket {
                    index,
                    events: Vec::new(),
                })
                .collect(),
            occupancy: 0,
            ring_len: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time (the timestamp of the most recently
    /// popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time —
    /// scheduling into the past is always a logic error.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let scheduled = Scheduled { time, seq, event };
        if bucket_of(time) < self.cursor + NUM_BUCKETS {
            self.insert_into_ring(scheduled);
        } else {
            self.overflow.push(scheduled);
        }
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let time = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(time, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_due(SimTime::from_nanos(u64::MAX))
    }

    /// [`EventQueue::pop`], but only when the earliest event is at or before
    /// `until`; otherwise the queue is left untouched and `None` is
    /// returned. Event-loop drivers call this instead of a peek/pop pair so
    /// each delivered event costs a single ring lookup.
    pub fn pop_due(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.ring_len == 0 {
            // Ring exhausted: jump the horizon to the overflow's earliest
            // bucket and pull everything below it into the ring.
            let time = self.overflow.peek()?.time;
            if time > until {
                return None;
            }
            self.cursor = bucket_of(time);
            self.migrate_overflow();
        }
        let b = self.first_occupied();
        let slot = &mut self.ring[ring_slot(b)];
        debug_assert!(slot.index == b && !slot.events.is_empty());
        let mut best = 0;
        let mut best_key = slot.events[0].key();
        for (i, e) in slot.events.iter().enumerate().skip(1) {
            let key = e.key();
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        if best_key.0 > until {
            return None;
        }
        let scheduled = slot.events.swap_remove(best);
        if slot.events.is_empty() {
            self.occupancy &= !(1u64 << (b % NUM_BUCKETS));
        }
        self.ring_len -= 1;
        debug_assert!(scheduled.time >= self.now, "event queue went backwards");
        self.now = scheduled.time;
        self.popped += 1;
        let cursor = bucket_of(scheduled.time);
        if cursor > self.cursor {
            self.cursor = cursor;
            self.migrate_overflow();
        }
        Some((scheduled.time, scheduled.event))
    }

    /// Advances the clock to `time` without delivering anything — the epoch
    /// barrier primitive. A sharded replay drains each shard with
    /// [`EventQueue::pop_due`]`(barrier)` and then aligns every shard's
    /// clock to the barrier so cross-shard messages can be scheduled "now"
    /// on any shard regardless of when its own last event fired.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past, or if an event at or before `time`
    /// is still pending (the caller must drain due events first; skipping
    /// one would silently reorder the replay).
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(
            time >= self.now,
            "cannot advance clock to {time} before current time {now}",
            now = self.now
        );
        if let Some(next) = self.peek_time() {
            assert!(
                next > time,
                "cannot advance clock past a pending event at {next}"
            );
        }
        self.now = time;
        // Every pending event is strictly after `time`, so moving the ring's
        // base bucket up to `bucket_of(time)` cannot strand one behind the
        // cursor; migrate any overflow events the new horizon now covers.
        let cursor = bucket_of(time);
        if cursor > self.cursor {
            self.cursor = cursor;
            self.migrate_overflow();
        }
    }

    /// The timestamp of the earliest pending event, if any, without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|s| s.time);
        }
        let slot = &self.ring[ring_slot(self.first_occupied())];
        slot.events.iter().map(|s| s.time).min()
    }

    /// Global index of the earliest occupied ring bucket. The ring covers
    /// exactly `[cursor, cursor + 64)`, so rotating the occupancy mask by
    /// the cursor's slot turns "earliest bucket" into `trailing_zeros`.
    #[inline]
    fn first_occupied(&self) -> u64 {
        debug_assert!(self.occupancy != 0, "ring accounting is off");
        let rot = u32::try_from(self.cursor % NUM_BUCKETS).expect("ring slot fits u32");
        self.cursor + u64::from(self.occupancy.rotate_right(rot).trailing_zeros())
    }

    /// Files an event below the horizon into its ring bucket, re-labelling
    /// the slot if its previous bucket has drained.
    fn insert_into_ring(&mut self, scheduled: Scheduled<E>) {
        let bucket = bucket_of(scheduled.time);
        let slot = &mut self.ring[ring_slot(bucket)];
        if slot.index != bucket {
            debug_assert!(slot.events.is_empty(), "re-labelling a live bucket");
            slot.index = bucket;
        }
        slot.events.push(scheduled);
        self.occupancy |= 1u64 << (bucket % NUM_BUCKETS);
        self.ring_len += 1;
    }

    /// Moves every overflow event that fell below the (just-advanced)
    /// horizon into the ring.
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS;
        while let Some(next) = self.overflow.peek() {
            if bucket_of(next.time) >= horizon {
                break;
            }
            let scheduled = self.overflow.pop().expect("peeked event exists");
            self.insert_into_ring(scheduled);
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The manual `PartialOrd` on `Scheduled` must agree with its `Ord`
        /// impl — `partial_cmp` is always `Some(cmp)` — or heap ordering
        /// could diverge depending on which trait a caller goes through
        /// (the PR 4 float-comparison audit, applied to the event queue).
        #[test]
        fn scheduled_partial_cmp_agrees_with_cmp(
            t1 in 0u64..5_000,
            s1 in 0u64..64,
            t2 in 0u64..5_000,
            s2 in 0u64..64,
        ) {
            let a = Scheduled { time: SimTime::from_nanos(t1), seq: s1, event: () };
            let b = Scheduled { time: SimTime::from_nanos(t2), seq: s2, event: () };
            prop_assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
            prop_assert_eq!(b.partial_cmp(&a), Some(b.cmp(&a)));
            prop_assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
            // Antisymmetry ties the two orders together end to end.
            prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_after(SimDuration::from_millis(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_cross_the_overflow_tier() {
        // Far beyond the ring horizon (≈ 134 ms): the event parks in the
        // overflow heap and migrates into the ring when the clock jumps.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3600), "far");
        q.schedule_at(SimTime::from_millis(1), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3600)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3600), "far"));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_tiers_keep_global_order() {
        // Mix near, mid and far events, re-scheduling as time advances, and
        // check against a straight sort of the (time, insertion) pairs.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let offsets_ms = [0, 1, 70, 200, 3, 500, 65, 2, 1000, 130, 4, 260];
        for (i, ms) in offsets_ms.into_iter().enumerate() {
            q.schedule_at(SimTime::from_millis(ms), i);
            expected.push((SimTime::from_millis(ms), i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        let popped: Vec<(SimTime, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, expected);
        assert_eq!(q.events_processed(), offsets_ms.len() as u64);
    }

    #[test]
    fn insert_into_live_bucket_preserves_order() {
        // Pop one event from a bucket, then schedule more into the same
        // bucket: delivery order must still follow (time, seq).
        let mut q = EventQueue::new();
        let base = SimTime::from_millis(1);
        q.schedule_at(base, 0);
        q.schedule_at(base + SimDuration::from_micros(100), 2);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule_at(base + SimDuration::from_micros(50), 1);
        q.schedule_at(base + SimDuration::from_micros(100), 3); // tie with 2
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "near");
        q.schedule_at(SimTime::from_secs(900), "far"); // overflow tier
        assert_eq!(q.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), "near"))
        );
        // The far event sits beyond the deadline in the overflow tier.
        assert_eq!(q.pop_due(SimTime::from_secs(899)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(SimTime::from_secs(900)),
            Some((SimTime::from_secs(900), "far"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_drains_epoch_boundary_ties_in_stable_id_order() {
        // Events landing exactly on an epoch barrier are due in that epoch
        // (`pop_due` is inclusive) and ties on the boundary instant must
        // drain in stable insertion-id order — the sharded replay depends on
        // both to keep epoch partitioning worker-count-invariant.
        let mut q = EventQueue::new();
        let barrier = SimTime::from_millis(500);
        q.schedule_at(barrier + SimDuration::from_nanos(1), 100);
        for i in 0..5 {
            q.schedule_at(barrier, i);
        }
        q.schedule_at(SimTime::from_millis(499), -1);
        assert_eq!(q.pop_due(barrier), Some((SimTime::from_millis(499), -1)));
        for i in 0..5 {
            let (t, ev) = q.pop_due(barrier).expect("boundary event is due");
            assert_eq!((t, ev), (barrier, i));
        }
        // One nanosecond past the barrier belongs to the next epoch.
        assert_eq!(q.pop_due(barrier), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(barrier + SimDuration::from_nanos(1)),
            Some((barrier + SimDuration::from_nanos(1), 100))
        );
    }

    #[test]
    fn advance_to_aligns_the_clock_between_epochs() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(3), "a");
        // Far beyond the ring horizon: parks in the overflow tier.
        q.schedule_at(SimTime::from_millis(600), "b");
        let barrier = SimTime::from_millis(500);
        assert_eq!(q.pop_due(barrier).unwrap().1, "a");
        assert_eq!(q.pop_due(barrier), None);
        q.advance_to(barrier);
        assert_eq!(q.now(), barrier);
        // Advancing is idempotent at the same instant and scheduling "now"
        // on the aligned clock works even though no event fired at 500 ms.
        q.advance_to(barrier);
        q.schedule_at(barrier, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["c", "b"]);
    }

    #[test]
    #[should_panic(expected = "pending event")]
    fn advance_to_refuses_to_skip_pending_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.advance_to(SimTime::from_millis(10));
    }

    #[test]
    fn ring_slots_are_reused_across_wraps() {
        // March the clock far past one full ring revolution, one event per
        // bucket width, so every slot is re-labelled at least twice.
        let mut q = EventQueue::new();
        let step = SimDuration::from_nanos(1 << BUCKET_SHIFT);
        let mut t = SimTime::ZERO;
        for i in 0..(NUM_BUCKETS * 3) {
            q.schedule_at(t, i);
            t = t.checked_add(step).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..NUM_BUCKETS * 3).collect::<Vec<_>>());
    }
}
