//! Deterministic parallel map for independent simulation jobs.
//!
//! Two layers fan out over independent work: the bench crate's sweeps (one
//! simulation per `(config, tpus)` point, seed, or trace config) and the
//! sharded replay's per-epoch shard stepping. [`par_map`] runs jobs on a
//! scoped thread pool and returns results **in input order**, so rendered
//! tables are byte-identical whatever the worker count — the property the
//! `parallel_determinism` integration test pins down. Workers pull jobs from
//! a shared atomic cursor (no channels, no external crates), and a panicking
//! job propagates out of the calling thread via [`std::thread::scope`].
//!
//! The worker count defaults to the host's available parallelism and can be
//! overridden with the `MICROEDGE_WORKERS` environment variable (useful for
//! pinning benchmarks or forcing a serial run).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count used by [`par_map`].
pub const WORKERS_ENV: &str = "MICROEDGE_WORKERS";

/// Resolves the worker count for `jobs` independent jobs: the
/// `MICROEDGE_WORKERS` override if set (clamped to at least 1), otherwise
/// the host's available parallelism, never more than `jobs`.
#[must_use]
pub fn worker_count(jobs: usize) -> usize {
    let configured = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|w| w.max(1));
    let workers = configured.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    workers.min(jobs.max(1))
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// `f` receives the item's index alongside the item, so callers can derive
/// per-job seeds or labels without threading them through the item type.
/// Panics in `f` propagate to the caller (the first panicking worker aborts
/// the scope). With one worker — or one item — the map runs inline on the
/// calling thread with no synchronisation at all.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = worker_count(items.len());
    par_map_with_workers(items, workers, f)
}

/// [`par_map`] with an explicit worker count (primarily for tests that pin
/// the serial path).
pub fn par_map_with_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = items.len();
    if workers <= 1 || jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Indexed slots: job i's input is taken from `inputs[i]` exactly once
    // and its output lands in `outputs[i]`, so completion order never
    // affects result order.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(i, item);
                *outputs[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot poisoned")
                .expect("scope join guarantees every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for workers in [1, 2, 7] {
            let out = par_map_with_workers((0..100).collect(), workers, |i, x: i32| {
                assert_eq!(i as i32, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = par_map(Vec::<i32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![41], |_, x: i32| x + 1), vec![42]);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let work = |i: usize, seed: u64| -> u64 {
            // Cheap deterministic mixing, distinct per index.
            let mut h = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            h
        };
        let items: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let serial = par_map_with_workers(items.clone(), 1, work);
        for workers in [2, 3, 8] {
            assert_eq!(par_map_with_workers(items.clone(), workers, work), serial);
        }
    }

    #[test]
    #[should_panic(expected = "job 13 exploded")]
    fn panics_propagate_inline() {
        // One worker runs inline, so the original payload survives.
        let _ = par_map_with_workers((0..32).collect(), 1, |i, _x: i32| {
            if i == 13 {
                panic!("job 13 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic]
    fn panics_propagate_across_threads() {
        // std::thread::scope replaces the payload with its own message, so
        // only the fact of panicking is asserted here.
        let _ = par_map_with_workers((0..32).collect(), 4, |i, _x: i32| {
            if i == 13 {
                panic!("job 13 exploded");
            }
            i
        });
    }

    #[test]
    fn worker_count_respects_bounds() {
        // Never more workers than jobs, never zero.
        assert_eq!(worker_count(0), 1.min(worker_count(0)));
        assert!(worker_count(1) == 1);
        assert!(worker_count(1_000) >= 1);
    }
}
