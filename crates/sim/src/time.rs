//! Virtual time for the discrete-event simulation.
//!
//! All simulated time is kept in integer **nanoseconds** so that event
//! ordering is exact and platform independent. Two newtypes are provided:
//!
//! - [`SimTime`] — an absolute instant on the simulation clock, and
//! - [`SimDuration`] — a span between two instants.
//!
//! Both are `Copy`, totally ordered, and support the arithmetic you would
//! expect (`SimTime + SimDuration`, `SimTime - SimTime`, scaling, etc.).
//!
//! # Examples
//!
//! ```
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let frame_interval = SimDuration::from_millis_f64(1000.0 / 15.0);
//! let t1 = start + frame_interval;
//! assert!(t1 > start);
//! assert_eq!((t1 - start), frame_interval);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use microedge_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_millis_f64(), 2500.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use microedge_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(66) + SimDuration::from_micros(667);
/// assert!(d > SimDuration::from_millis(66));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since start as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time since start as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "duration must be finite and non-negative, got {millis}"
        );
        SimDuration((millis * NANOS_PER_MILLI as f64).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio `self / other` as a float.
    ///
    /// Returns 0.0 when `other` is zero (an empty observation window has no
    /// meaningful ratio).
    #[must_use]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(15).as_millis_f64(), 15.0);
    }

    #[test]
    fn fractional_constructors_round_to_nearest() {
        let d = SimDuration::from_millis_f64(66.666_667);
        assert_eq!(d.as_nanos(), 66_666_667);
        let s = SimDuration::from_secs_f64(0.5);
        assert_eq!(s, SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(30);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(20));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn ratio_of_durations() {
        let busy = SimDuration::from_millis(35);
        let window = SimDuration::from_millis(100);
        assert!((busy.ratio(window) - 0.35).abs() < 1e-12);
        assert_eq!(busy.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn mul_and_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(8).to_string(), "8.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
    }
}
