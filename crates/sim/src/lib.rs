#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-sim — deterministic discrete-event simulation kernel
//!
//! The foundation every other crate in the MicroEdge reproduction builds on:
//!
//! - [`time`] — integer-nanosecond virtual time ([`SimTime`], [`SimDuration`]);
//! - [`event`] — a deterministic future-event list ([`EventQueue`]) with
//!   stable `(time, insertion-seq)` ordering;
//! - [`rng`] — seeded random generation with the distribution samplers the
//!   workload models need ([`DetRng`]);
//! - [`stats`] — online moments, exact-percentile histograms (the
//!   differential oracle), and the constant-memory mergeable
//!   [`stats::LogLinearSketch`] production telemetry runs on;
//! - [`series`] — windowed aggregation, including exact time-weighted
//!   averages of piecewise-constant signals (per-minute utilization);
//! - [`par`] — a deterministic input-order-preserving parallel map used by
//!   the bench sweeps and the sharded replay's epoch stepping.
//!
//! Every simulation is fully reproducible: a given seed always produces the
//! same replay, bit for bit, at any worker count.
//!
//! # Examples
//!
//! A tiny M/D/1-style simulation — periodic arrivals into a server with a
//! fixed service time:
//!
//! ```
//! use microedge_sim::event::EventQueue;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival(u32), Departure(u32) }
//!
//! let service = SimDuration::from_millis(30);
//! let period = SimDuration::from_millis(50);
//! let mut q = EventQueue::new();
//! for i in 0..3 {
//!     q.schedule_at(SimTime::ZERO + period * u64::from(i), Ev::Arrival(i));
//! }
//! let mut busy_until = SimTime::ZERO;
//! let mut completed = 0;
//! while let Some((now, ev)) = q.pop() {
//!     match ev {
//!         Ev::Arrival(i) => {
//!             let start = busy_until.max(now);
//!             busy_until = start + service;
//!             q.schedule_at(busy_until, Ev::Departure(i));
//!         }
//!         Ev::Departure(_) => completed += 1,
//!     }
//! }
//! assert_eq!(completed, 3);
//! ```

pub mod event;
pub mod par;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::DetRng;
pub use series::{StepSeries, TimeSeries};
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
