#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-orch — K3s-like orchestrator substrate
//!
//! The container-orchestration layer MicroEdge extends (paper §2): pod
//! specs with labels, anti-affinity and free-form extensions; a YAML-subset
//! request parser; the default CPU/memory scheduler that produces the
//! candidate-node list; pod lifecycle with resource accounting; and the
//! control-plane latency model behind Fig. 7a.
//!
//! - [`pod`] — [`pod::PodSpec`], requests, phases, extension keys;
//! - [`spec`] — [`spec::parse_pod_spec`] for client Yaml files;
//! - [`scheduler`] — [`scheduler::DefaultScheduler`] (filter + score);
//! - [`state`] — per-node allocation bookkeeping;
//! - [`lifecycle`] — [`lifecycle::Orchestrator`], create/delete/reclaim;
//! - [`control_latency`] — pod-launch latency distribution.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::Cluster;
//! use microedge_orch::lifecycle::Orchestrator;
//! use microedge_orch::spec::parse_pod_spec;
//!
//! let mut orch = Orchestrator::new(Cluster::microedge_default());
//! let spec = parse_pod_spec("name: cam\nimage: app:v1\n")?;
//! let pod = orch.create_pod(spec)?;
//! orch.delete_pod(pod)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod control_latency;
pub mod events;
pub mod lifecycle;
pub mod pod;
pub mod scheduler;
pub mod spec;
pub mod state;

pub use control_latency::ControlPlaneModel;
pub use events::{OrchEvent, TerminationReason};
pub use lifecycle::{OrchError, Orchestrator};
pub use pod::{PodId, PodPhase, PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
pub use scheduler::DefaultScheduler;
pub use spec::{parse_pod_spec, parse_pod_specs, ParseSpecError};
pub use state::ClusterState;
