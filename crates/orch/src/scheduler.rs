//! The default (K3s-native) scheduler: CPU/memory filtering and
//! least-allocated scoring.
//!
//! This is the part of pod placement the paper leaves to K3s (paper §4:
//! "we leave the scheduling of CPU and memory to the default capabilities
//! already present in K3s"). Given a pod spec it produces the ranked list of
//! candidate nodes that K3s hands to MicroEdge's extended scheduler
//! (paper §3.1 step ①).

use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;

use crate::pod::PodSpec;
use crate::state::ClusterState;

/// The K3s default scheduling policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultScheduler;

impl DefaultScheduler {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        DefaultScheduler
    }

    /// Filters and ranks nodes for `spec`.
    ///
    /// A node is a candidate when:
    /// - it is schedulable (has not failed),
    /// - the pod's CPU and memory requests fit its remaining allocatable
    ///   resources,
    /// - its labels satisfy the pod's node selector, and
    /// - no pod of the same anti-affinity group is already bound to it.
    ///
    /// Candidates are ranked **least-allocated first** (most remaining CPU,
    /// then most remaining memory, then node id for determinism).
    #[must_use]
    pub fn candidate_nodes(
        &self,
        cluster: &Cluster,
        state: &ClusterState,
        spec: &PodSpec,
    ) -> Vec<NodeId> {
        let mut candidates: Vec<(NodeId, u32, u64)> = cluster
            .nodes()
            .iter()
            .filter(|node| state.is_schedulable(node.id()))
            .filter(|node| node.matches_selector(spec.node_selector()))
            .filter_map(|node| {
                let avail = state.availability(node.id())?;
                avail.fits(spec).then(|| {
                    (
                        node.id(),
                        avail.cpu_millis() - spec.resources().cpu_millis(),
                        avail.mem_bytes() - spec.resources().mem_bytes(),
                    )
                })
            })
            .filter(|(id, _, _)| match spec.anti_affinity_group() {
                Some(group) => !state.group_present_on(*id, group),
                None => true,
            })
            .collect();
        candidates.sort_by(|a, b| (b.1, b.2, a.0).cmp(&(a.1, a.2, b.0)));
        candidates.into_iter().map(|(id, _, _)| id).collect()
    }

    /// The node [`Self::candidate_nodes`] would rank first, without
    /// materialising or sorting the candidate list.
    ///
    /// For the common case — no node selector, no anti-affinity group (every
    /// camera pod) — this is a walk of the cluster state's ranked
    /// availability index: O(log n) to find the top entry instead of the
    /// O(n log n) filter-and-sort, which dominates admission cost at
    /// 100k-stream scale. Specs with placement constraints fall back to the
    /// full ranking. Always exactly equal to
    /// `candidate_nodes(..).first().copied()`.
    #[must_use]
    pub fn best_node(
        &self,
        cluster: &Cluster,
        state: &ClusterState,
        spec: &PodSpec,
    ) -> Option<NodeId> {
        if spec.node_selector().is_empty() && spec.anti_affinity_group().is_none() {
            state.best_fit(spec)
        } else {
            self.candidate_nodes(cluster, state, spec).first().copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{PodId, ResourceRequest};
    use microedge_cluster::node::TPU_LABEL;
    use microedge_cluster::topology::ClusterBuilder;

    fn spec(cpu: u32) -> PodSpec {
        PodSpec::builder("p", "i")
            .resources(ResourceRequest::new(cpu, 1024))
            .build()
    }

    #[test]
    fn least_allocated_node_ranks_first() {
        let cluster = ClusterBuilder::new().vrpis(3).build();
        let mut state = ClusterState::new(&cluster);
        let nodes: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id()).collect();
        // Load node 0 heavily and node 1 lightly.
        state.bind(PodId(1), spec(3000), nodes[0]);
        state.bind(PodId(2), spec(1000), nodes[1]);

        let ranked = DefaultScheduler::new().candidate_nodes(&cluster, &state, &spec(100));
        assert_eq!(ranked[0], nodes[2], "untouched node first");
        assert_eq!(ranked[1], nodes[1]);
        assert_eq!(ranked[2], nodes[0]);
    }

    #[test]
    fn full_nodes_are_filtered_out() {
        let cluster = ClusterBuilder::new().vrpis(1).build();
        let mut state = ClusterState::new(&cluster);
        let node = cluster.nodes()[0].id();
        state.bind(PodId(1), spec(4000), node);
        let ranked = DefaultScheduler::new().candidate_nodes(&cluster, &state, &spec(1));
        assert!(ranked.is_empty());
    }

    #[test]
    fn node_selector_restricts_to_trpis() {
        let cluster = ClusterBuilder::new().vrpis(3).trpis(2).build();
        let state = ClusterState::new(&cluster);
        let tpu_spec = PodSpec::builder("p", "i")
            .resources(ResourceRequest::new(100, 1024))
            .node_selector(TPU_LABEL, "true")
            .build();
        let ranked = DefaultScheduler::new().candidate_nodes(&cluster, &state, &tpu_spec);
        assert_eq!(ranked.len(), 2);
        for id in ranked {
            assert!(cluster.node(id).unwrap().has_tpu());
        }
    }

    #[test]
    fn anti_affinity_spreads_pods() {
        let cluster = ClusterBuilder::new().vrpis(2).build();
        let mut state = ClusterState::new(&cluster);
        let grouped = |name: &str| {
            PodSpec::builder(name, "i")
                .resources(ResourceRequest::new(100, 1024))
                .anti_affinity_group("coral-pie")
                .build()
        };
        let sched = DefaultScheduler::new();
        let first = sched.candidate_nodes(&cluster, &state, &grouped("a"))[0];
        state.bind(PodId(1), grouped("a"), first);
        let remaining = sched.candidate_nodes(&cluster, &state, &grouped("b"));
        assert_eq!(remaining.len(), 1);
        assert_ne!(remaining[0], first);
        state.bind(PodId(2), grouped("b"), remaining[0]);
        assert!(sched
            .candidate_nodes(&cluster, &state, &grouped("c"))
            .is_empty());
    }

    #[test]
    fn ties_break_by_node_id() {
        let cluster = ClusterBuilder::new().vrpis(4).build();
        let state = ClusterState::new(&cluster);
        let ranked = DefaultScheduler::new().candidate_nodes(&cluster, &state, &spec(1));
        let ids: Vec<u32> = ranked.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    /// The indexed fast path must agree with the sorted candidate list on
    /// every step of an arbitrary bind/unbind/cordon history.
    #[test]
    fn best_node_matches_ranked_head_throughout_churn() {
        let cluster = ClusterBuilder::new().vrpis(6).trpis(2).build();
        let mut state = ClusterState::new(&cluster);
        let sched = DefaultScheduler::new();
        let nodes: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id()).collect();
        let probes = [spec(1), spec(500), spec(2500), spec(4000), spec(4001)];
        let check = |state: &ClusterState, step: &str| {
            for (i, probe) in probes.iter().enumerate() {
                assert_eq!(
                    sched.best_node(&cluster, state, probe),
                    sched
                        .candidate_nodes(&cluster, state, probe)
                        .first()
                        .copied(),
                    "fast path diverged after {step} for probe {i}"
                );
            }
        };
        check(&state, "init");
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut bound: Vec<PodId> = Vec::new();
        let mut pod_seq = 0u64;
        for step in 0..200 {
            match next() % 4 {
                0 | 1 => {
                    let cpu = 100 + (next() % 900) as u32;
                    if let Some(node) = sched.best_node(&cluster, &state, &spec(cpu)) {
                        pod_seq += 1;
                        state.bind(PodId(pod_seq), spec(cpu), node);
                        bound.push(PodId(pod_seq));
                    }
                }
                2 => {
                    if !bound.is_empty() {
                        let victim = bound.swap_remove(next() as usize % bound.len());
                        state.unbind(victim);
                    }
                }
                _ => {
                    let node = nodes[next() as usize % nodes.len()];
                    state.set_schedulable(node, next() % 2 == 0);
                }
            }
            check(&state, &format!("step {step}"));
        }
    }

    /// Constrained specs (selector or anti-affinity) take the fallback and
    /// still agree with the ranked head.
    #[test]
    fn best_node_falls_back_for_constrained_specs() {
        let cluster = ClusterBuilder::new().vrpis(2).trpis(2).build();
        let mut state = ClusterState::new(&cluster);
        let sched = DefaultScheduler::new();
        let selected = PodSpec::builder("t", "i")
            .resources(ResourceRequest::new(100, 1024))
            .node_selector(TPU_LABEL, "true")
            .build();
        let grouped = PodSpec::builder("g", "i")
            .resources(ResourceRequest::new(100, 1024))
            .anti_affinity_group("spread")
            .build();
        for probe in [&selected, &grouped] {
            assert_eq!(
                sched.best_node(&cluster, &state, probe),
                sched
                    .candidate_nodes(&cluster, &state, probe)
                    .first()
                    .copied(),
            );
        }
        let first = sched.best_node(&cluster, &state, &selected).unwrap();
        assert!(cluster.node(first).unwrap().has_tpu());
        state.bind(PodId(1), grouped.clone(), first);
        let next_spread = PodSpec::builder("g2", "i")
            .resources(ResourceRequest::new(100, 1024))
            .anti_affinity_group("spread")
            .build();
        let placed = sched.best_node(&cluster, &state, &next_spread).unwrap();
        assert_ne!(placed, first, "anti-affinity must still spread");
    }
}
