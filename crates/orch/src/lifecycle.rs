//! Pod lifecycle management: creation, binding, deletion.
//!
//! [`Orchestrator`] plays the role of the K3s control plane at the fidelity
//! MicroEdge consumes: it validates pod creation requests, asks the default
//! scheduler for candidate nodes, binds pods, and reclaims CPU and memory on
//! deletion. MicroEdge's extended scheduler sits *on top* of this: it
//! receives the candidate list, makes the TPU placement decision, and then
//! binds through [`Orchestrator::create_pod_on`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;

use crate::events::{OrchEvent, TerminationReason};
use crate::pod::{PodId, PodPhase, PodSpec};
use crate::scheduler::DefaultScheduler;
use crate::state::ClusterState;

/// Errors surfaced by pod lifecycle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrchError {
    /// No node passed filtering — insufficient CPU/memory, no label match,
    /// or anti-affinity exclusion.
    NoFeasibleNode,
    /// The requested node is not a valid candidate for this spec.
    NodeNotFeasible(NodeId),
    /// The pod id is unknown or already terminated.
    UnknownPod(PodId),
    /// A live pod already uses this name.
    NameInUse(String),
}

impl fmt::Display for OrchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchError::NoFeasibleNode => f.write_str("no feasible node for pod"),
            OrchError::NodeNotFeasible(n) => write!(f, "node {n} is not feasible for pod"),
            OrchError::UnknownPod(p) => write!(f, "unknown pod {p}"),
            OrchError::NameInUse(n) => write!(f, "pod name `{n}` is already in use"),
        }
    }
}

impl std::error::Error for OrchError {}

#[derive(Debug, Clone)]
struct PodRecord {
    spec: PodSpec,
    phase: PodPhase,
    node: NodeId,
}

/// The K3s-like control plane for one cluster.
///
/// # Examples
///
/// ```
/// use microedge_cluster::topology::ClusterBuilder;
/// use microedge_orch::lifecycle::Orchestrator;
/// use microedge_orch::pod::{PodPhase, PodSpec};
///
/// let mut orch = Orchestrator::new(ClusterBuilder::new().vrpis(2).build());
/// let pod = orch.create_pod(PodSpec::builder("cam", "img").build())?;
/// assert_eq!(orch.phase(pod), Some(PodPhase::Running));
/// orch.delete_pod(pod)?;
/// assert_eq!(orch.phase(pod), Some(PodPhase::Terminated));
/// # Ok::<(), microedge_orch::lifecycle::OrchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Orchestrator {
    cluster: Cluster,
    state: ClusterState,
    scheduler: DefaultScheduler,
    pods: BTreeMap<PodId, PodRecord>,
    /// Names of running pods, kept in lockstep with `pods` so the
    /// uniqueness check on creation is an index probe instead of a scan of
    /// every record ever created — the scan was quadratic over a
    /// 100k-stream admission sweep.
    live_names: BTreeSet<String>,
    next_id: u64,
    events: Vec<OrchEvent>,
}

impl Orchestrator {
    /// Creates a control plane over `cluster` with no pods.
    #[must_use]
    pub fn new(cluster: Cluster) -> Self {
        let state = ClusterState::new(&cluster);
        Orchestrator {
            cluster,
            state,
            scheduler: DefaultScheduler::new(),
            pods: BTreeMap::new(),
            live_names: BTreeSet::new(),
            next_id: 0,
            events: Vec::new(),
        }
    }

    /// The control-plane event log, oldest first.
    #[must_use]
    pub fn events(&self) -> &[OrchEvent] {
        &self.events
    }

    /// Drains and returns the event log.
    pub fn take_events(&mut self) -> Vec<OrchEvent> {
        std::mem::take(&mut self.events)
    }

    /// The managed cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The current allocation state.
    #[must_use]
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// The ranked candidate nodes for `spec` — what K3s hands to the
    /// extended scheduler in paper §3.1 step ①.
    #[must_use]
    pub fn candidate_nodes(&self, spec: &PodSpec) -> Vec<NodeId> {
        self.scheduler
            .candidate_nodes(&self.cluster, &self.state, spec)
    }

    /// Creates a pod on the best-ranked candidate node (via the
    /// [`DefaultScheduler::best_node`] fast path — the full candidate list
    /// is never materialised for constraint-free specs).
    ///
    /// # Errors
    ///
    /// [`OrchError::NameInUse`] when a live pod has the same name;
    /// [`OrchError::NoFeasibleNode`] when no node passes filtering.
    pub fn create_pod(&mut self, spec: PodSpec) -> Result<PodId, OrchError> {
        self.check_name(&spec)?;
        let Some(node) = self.scheduler.best_node(&self.cluster, &self.state, &spec) else {
            self.events.push(OrchEvent::SchedulingFailed {
                name: spec.name().to_owned(),
                reason: "no feasible node".to_owned(),
            });
            return Err(OrchError::NoFeasibleNode);
        };
        Ok(self.bind(spec, node))
    }

    /// Whether `node` would appear in [`Self::candidate_nodes`] for `spec` —
    /// the same filters, checked against one node without ranking the fleet.
    fn node_feasible(&self, spec: &PodSpec, node: NodeId) -> bool {
        self.state.is_schedulable(node)
            && self
                .cluster
                .node(node)
                .is_some_and(|n| n.matches_selector(spec.node_selector()))
            && self.state.availability(node).is_some_and(|a| a.fits(spec))
            && spec
                .anti_affinity_group()
                .is_none_or(|g| !self.state.group_present_on(node, g))
    }

    /// Creates a pod on a specific node chosen by an external (extended)
    /// scheduler.
    ///
    /// # Errors
    ///
    /// [`OrchError::NameInUse`] when a live pod has the same name;
    /// [`OrchError::NodeNotFeasible`] when the node does not pass filtering
    /// for this spec.
    pub fn create_pod_on(&mut self, spec: PodSpec, node: NodeId) -> Result<PodId, OrchError> {
        self.check_name(&spec)?;
        if !self.node_feasible(&spec, node) {
            self.events.push(OrchEvent::SchedulingFailed {
                name: spec.name().to_owned(),
                reason: format!("{node} is not feasible"),
            });
            return Err(OrchError::NodeNotFeasible(node));
        }
        Ok(self.bind(spec, node))
    }

    /// Deletes a running pod, reclaiming its CPU and memory. Returns the
    /// node it ran on.
    ///
    /// # Errors
    ///
    /// [`OrchError::UnknownPod`] when the pod does not exist or has already
    /// terminated.
    pub fn delete_pod(&mut self, pod: PodId) -> Result<NodeId, OrchError> {
        let record = self
            .pods
            .get_mut(&pod)
            .filter(|r| r.phase == PodPhase::Running)
            .ok_or(OrchError::UnknownPod(pod))?;
        record.phase = PodPhase::Terminated;
        let node = record.node;
        self.live_names.remove(record.spec.name());
        self.state.unbind(pod).expect("running pod must be bound");
        self.events.push(OrchEvent::PodTerminated {
            pod,
            node,
            reason: TerminationReason::Deleted,
        });
        Ok(node)
    }

    /// Fails a node: it stops accepting pods and every pod running on it
    /// terminates with [`TerminationReason::NodeFailure`]. Returns the
    /// displaced pods. Idempotent for already-failed nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the cluster.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<PodId> {
        assert!(
            self.cluster.node(node).is_some(),
            "cannot fail unknown {node}"
        );
        self.state.set_schedulable(node, false);
        let displaced = self.state.pods_on(node);
        for &pod in &displaced {
            let record = self.pods.get_mut(&pod).expect("bound pod has a record");
            record.phase = PodPhase::Terminated;
            self.live_names.remove(record.spec.name());
            self.state.unbind(pod).expect("displaced pod was bound");
            self.events.push(OrchEvent::PodTerminated {
                pod,
                node,
                reason: TerminationReason::NodeFailure,
            });
        }
        self.events.push(OrchEvent::NodeFailed {
            node,
            displaced: displaced.clone(),
        });
        displaced
    }

    /// Returns a previously failed node to service: it accepts pods again.
    /// Terminated pods stay terminated (Kubernetes semantics — recovery
    /// means *new* pods, not resurrection).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the cluster.
    pub fn restore_node(&mut self, node: NodeId) {
        assert!(
            self.cluster.node(node).is_some(),
            "cannot restore unknown {node}"
        );
        self.state.set_schedulable(node, true);
    }

    /// Lifecycle phase of `pod`, or `None` if the id was never issued.
    #[must_use]
    pub fn phase(&self, pod: PodId) -> Option<PodPhase> {
        self.pods.get(&pod).map(|r| r.phase)
    }

    /// Spec of `pod`, or `None` if the id was never issued.
    #[must_use]
    pub fn spec(&self, pod: PodId) -> Option<&PodSpec> {
        self.pods.get(&pod).map(|r| &r.spec)
    }

    /// Node `pod` runs (or ran) on.
    #[must_use]
    pub fn node_of(&self, pod: PodId) -> Option<NodeId> {
        self.pods.get(&pod).map(|r| r.node)
    }

    /// Ids of all running pods, ascending.
    #[must_use]
    pub fn running_pods(&self) -> Vec<PodId> {
        self.pods
            .iter()
            .filter(|(_, r)| r.phase == PodPhase::Running)
            .map(|(&id, _)| id)
            .collect()
    }

    fn check_name(&self, spec: &PodSpec) -> Result<(), OrchError> {
        if self.live_names.contains(spec.name()) {
            Err(OrchError::NameInUse(spec.name().to_owned()))
        } else {
            Ok(())
        }
    }

    fn bind(&mut self, spec: PodSpec, node: NodeId) -> PodId {
        let id = PodId(self.next_id);
        self.next_id += 1;
        self.live_names.insert(spec.name().to_owned());
        self.state.bind(id, spec.clone(), node);
        self.events.push(OrchEvent::PodScheduled {
            pod: id,
            name: spec.name().to_owned(),
            node,
        });
        self.pods.insert(
            id,
            PodRecord {
                spec,
                phase: PodPhase::Running,
                node,
            },
        );
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::ResourceRequest;
    use microedge_cluster::topology::ClusterBuilder;

    fn orch(vrpis: u32) -> Orchestrator {
        Orchestrator::new(ClusterBuilder::new().vrpis(vrpis).build())
    }

    fn spec(name: &str) -> PodSpec {
        PodSpec::builder(name, "i")
            .resources(ResourceRequest::new(1000, 1024))
            .build()
    }

    #[test]
    fn create_and_delete_roundtrip() {
        let mut o = orch(1);
        let pod = o.create_pod(spec("a")).unwrap();
        assert_eq!(o.phase(pod), Some(PodPhase::Running));
        assert_eq!(o.running_pods(), vec![pod]);
        let node = o.delete_pod(pod).unwrap();
        assert_eq!(o.phase(pod), Some(PodPhase::Terminated));
        assert!(o.running_pods().is_empty());
        // Resources returned.
        assert_eq!(o.state().availability(node).unwrap().cpu_millis(), 4000);
    }

    #[test]
    fn rejects_when_cluster_full() {
        let mut o = orch(1);
        for i in 0..4 {
            o.create_pod(spec(&format!("p{i}"))).unwrap();
        }
        assert_eq!(o.create_pod(spec("p4")), Err(OrchError::NoFeasibleNode));
    }

    #[test]
    fn deleting_frees_capacity_for_new_pods() {
        let mut o = orch(1);
        let pods: Vec<PodId> = (0..4)
            .map(|i| o.create_pod(spec(&format!("p{i}"))).unwrap())
            .collect();
        o.delete_pod(pods[0]).unwrap();
        assert!(o.create_pod(spec("fresh")).is_ok());
    }

    #[test]
    fn duplicate_live_name_rejected_but_reusable_after_delete() {
        let mut o = orch(2);
        let pod = o.create_pod(spec("cam")).unwrap();
        assert_eq!(
            o.create_pod(spec("cam")),
            Err(OrchError::NameInUse("cam".into()))
        );
        o.delete_pod(pod).unwrap();
        assert!(o.create_pod(spec("cam")).is_ok());
    }

    #[test]
    fn double_delete_is_unknown_pod() {
        let mut o = orch(1);
        let pod = o.create_pod(spec("a")).unwrap();
        o.delete_pod(pod).unwrap();
        assert_eq!(o.delete_pod(pod), Err(OrchError::UnknownPod(pod)));
    }

    #[test]
    fn create_pod_on_respects_feasibility() {
        let mut o = orch(2);
        let target = o.cluster().nodes()[1].id();
        let pod = o.create_pod_on(spec("a"), target).unwrap();
        assert_eq!(o.node_of(pod), Some(target));

        let bogus = NodeId(99);
        assert_eq!(
            o.create_pod_on(spec("b"), bogus),
            Err(OrchError::NodeNotFeasible(bogus))
        );
    }

    #[test]
    fn pod_ids_are_never_reused() {
        let mut o = orch(1);
        let a = o.create_pod(spec("a")).unwrap();
        o.delete_pod(a).unwrap();
        let b = o.create_pod(spec("b")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn error_display() {
        assert!(OrchError::NoFeasibleNode
            .to_string()
            .contains("no feasible"));
        assert!(OrchError::UnknownPod(PodId(3))
            .to_string()
            .contains("pod-3"));
    }

    #[test]
    fn events_record_the_lifecycle() {
        let mut o = orch(1);
        let pod = o.create_pod(spec("a")).unwrap();
        for i in 0..3 {
            o.create_pod(spec(&format!("filler-{i}"))).unwrap();
        }
        let _ = o.create_pod(spec("rejected"));
        o.delete_pod(pod).unwrap();

        let events = o.events();
        assert!(matches!(
            events[0],
            OrchEvent::PodScheduled { pod: p, .. } if p == pod
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, OrchEvent::SchedulingFailed { name, .. } if name == "rejected")));
        assert!(events.iter().any(|e| matches!(
            e,
            OrchEvent::PodTerminated { pod: p, reason: TerminationReason::Deleted, .. } if *p == pod
        )));
        // take_events drains.
        let drained = o.take_events();
        assert!(!drained.is_empty());
        assert!(o.events().is_empty());
    }

    #[test]
    fn node_failure_displaces_pods_and_blocks_scheduling() {
        let mut o = orch(1);
        let a = o.create_pod(spec("a")).unwrap();
        let b = o.create_pod(spec("b")).unwrap();
        let node = o.node_of(a).unwrap();

        let displaced = o.fail_node(node);
        assert_eq!(displaced.len(), 2);
        assert!(displaced.contains(&a) && displaced.contains(&b));
        assert_eq!(o.phase(a), Some(PodPhase::Terminated));
        assert_eq!(o.phase(b), Some(PodPhase::Terminated));
        // The single node is gone: nothing schedules.
        assert_eq!(o.create_pod(spec("c")), Err(OrchError::NoFeasibleNode));
        // Events carry the failure reason.
        assert!(o.events().iter().any(|e| matches!(
            e,
            OrchEvent::PodTerminated {
                reason: TerminationReason::NodeFailure,
                ..
            }
        )));
        assert!(o
            .events()
            .iter()
            .any(|e| matches!(e, OrchEvent::NodeFailed { .. })));
        // Idempotent.
        assert!(o.fail_node(node).is_empty());
    }

    #[test]
    fn other_nodes_keep_working_after_a_node_failure() {
        let mut o = orch(2);
        let a = o.create_pod(spec("a")).unwrap();
        let dead = o.node_of(a).unwrap();
        o.fail_node(dead);
        let c = o.create_pod(spec("c")).unwrap();
        assert_ne!(o.node_of(c), Some(dead));
    }

    #[test]
    fn restored_node_accepts_pods_again() {
        let mut o = orch(1);
        let node = o.cluster().nodes()[0].id();
        o.fail_node(node);
        assert_eq!(o.create_pod(spec("x")), Err(OrchError::NoFeasibleNode));
        o.restore_node(node);
        assert!(o.create_pod(spec("x")).is_ok());
    }
}
