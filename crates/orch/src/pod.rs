//! Pods: the unit of deployment.
//!
//! Mirrors the K3s/Kubernetes pod model at the fidelity MicroEdge's extended
//! scheduler consumes: a named spec with CPU/memory requests, node-selector
//! labels, an optional anti-affinity group, and free-form **extensions** —
//! string key/value pairs carrying MicroEdge's two extra knobs (`Model` and
//! `TPU Units`, paper §4.1) without the orchestrator substrate having to
//! know about them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The extension key carrying the requested model name.
pub const EXT_MODEL: &str = "microedge.io/model";
/// The extension key carrying the requested fractional TPU units.
pub const EXT_TPU_UNITS: &str = "microedge.io/tpu-units";

/// Identifies a pod instance for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PodId(pub u64);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

/// Lifecycle phase of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodPhase {
    /// Accepted and bound to a node; containers running.
    Running,
    /// Terminated (completed or deleted); resources reclaimed.
    Terminated,
}

/// CPU and memory requests, in the units K3s uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRequest {
    cpu_millis: u32,
    mem_bytes: u64,
}

impl ResourceRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if either request is zero — a pod that requests nothing can
    /// never be accounted for.
    #[must_use]
    pub fn new(cpu_millis: u32, mem_bytes: u64) -> Self {
        assert!(cpu_millis > 0, "CPU request must be non-zero");
        assert!(mem_bytes > 0, "memory request must be non-zero");
        ResourceRequest {
            cpu_millis,
            mem_bytes,
        }
    }

    /// A typical camera-pipeline container: 500 millicores, 256 MiB.
    #[must_use]
    pub fn camera_default() -> Self {
        ResourceRequest::new(500, 256 * 1024 * 1024)
    }

    /// CPU request in millicores.
    #[must_use]
    pub fn cpu_millis(&self) -> u32 {
        self.cpu_millis
    }

    /// Memory request in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }
}

/// A pod creation request, as parsed from the client's Yaml file.
///
/// Construct with [`PodSpec::builder`].
///
/// # Examples
///
/// ```
/// use microedge_orch::pod::{PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
///
/// let spec = PodSpec::builder("camera-0", "coral-pie:latest")
///     .resources(ResourceRequest::camera_default())
///     .extension(EXT_MODEL, "ssd-mobilenet-v2")
///     .extension(EXT_TPU_UNITS, "0.35")
///     .build();
/// assert_eq!(spec.extension(EXT_TPU_UNITS), Some("0.35"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodSpec {
    name: String,
    image: String,
    resources: ResourceRequest,
    node_selector: BTreeMap<String, String>,
    anti_affinity_group: Option<String>,
    extensions: BTreeMap<String, String>,
}

impl PodSpec {
    /// Starts building a spec for the given pod name and container image.
    #[must_use]
    pub fn builder(name: &str, image: &str) -> PodSpecBuilder {
        PodSpecBuilder {
            name: name.to_owned(),
            image: image.to_owned(),
            resources: ResourceRequest::camera_default(),
            node_selector: BTreeMap::new(),
            anti_affinity_group: None,
            extensions: BTreeMap::new(),
        }
    }

    /// Pod name (unique among live pods).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Container image reference.
    #[must_use]
    pub fn image(&self) -> &str {
        &self.image
    }

    /// CPU/memory requests.
    #[must_use]
    pub fn resources(&self) -> ResourceRequest {
        self.resources
    }

    /// Node labels this pod requires.
    #[must_use]
    pub fn node_selector(&self) -> &BTreeMap<String, String> {
        &self.node_selector
    }

    /// Anti-affinity group: no two pods of the same group land on one node.
    #[must_use]
    pub fn anti_affinity_group(&self) -> Option<&str> {
        self.anti_affinity_group.as_deref()
    }

    /// All extension key/value pairs.
    #[must_use]
    pub fn extensions(&self) -> &BTreeMap<String, String> {
        &self.extensions
    }

    /// Looks up one extension value.
    #[must_use]
    pub fn extension(&self, key: &str) -> Option<&str> {
        self.extensions.get(key).map(String::as_str)
    }
}

/// Builder for [`PodSpec`].
#[derive(Debug, Clone)]
pub struct PodSpecBuilder {
    name: String,
    image: String,
    resources: ResourceRequest,
    node_selector: BTreeMap<String, String>,
    anti_affinity_group: Option<String>,
    extensions: BTreeMap<String, String>,
}

impl PodSpecBuilder {
    /// Sets the CPU/memory requests (default:
    /// [`ResourceRequest::camera_default`]).
    #[must_use]
    pub fn resources(mut self, resources: ResourceRequest) -> Self {
        self.resources = resources;
        self
    }

    /// Requires a node label.
    #[must_use]
    pub fn node_selector(mut self, key: &str, value: &str) -> Self {
        self.node_selector.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Sets the anti-affinity group.
    #[must_use]
    pub fn anti_affinity_group(mut self, group: &str) -> Self {
        self.anti_affinity_group = Some(group.to_owned());
        self
    }

    /// Adds an extension key/value pair.
    #[must_use]
    pub fn extension(mut self, key: &str, value: &str) -> Self {
        self.extensions.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Finalises the spec.
    ///
    /// # Panics
    ///
    /// Panics if the pod name or image is empty.
    #[must_use]
    pub fn build(self) -> PodSpec {
        assert!(!self.name.is_empty(), "pod name must be non-empty");
        assert!(!self.image.is_empty(), "image must be non-empty");
        PodSpec {
            name: self.name,
            image: self.image,
            resources: self.resources,
            node_selector: self.node_selector,
            anti_affinity_group: self.anti_affinity_group,
            extensions: self.extensions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let spec = PodSpec::builder("cam", "img:v1")
            .resources(ResourceRequest::new(250, 1024))
            .node_selector("zone", "east")
            .anti_affinity_group("coral-pie")
            .extension(EXT_MODEL, "unet-v2")
            .build();
        assert_eq!(spec.name(), "cam");
        assert_eq!(spec.image(), "img:v1");
        assert_eq!(spec.resources().cpu_millis(), 250);
        assert_eq!(spec.node_selector().get("zone").unwrap(), "east");
        assert_eq!(spec.anti_affinity_group(), Some("coral-pie"));
        assert_eq!(spec.extension(EXT_MODEL), Some("unet-v2"));
        assert_eq!(spec.extension(EXT_TPU_UNITS), None);
    }

    #[test]
    fn defaults_are_sane() {
        let spec = PodSpec::builder("p", "i").build();
        assert_eq!(spec.resources(), ResourceRequest::camera_default());
        assert!(spec.node_selector().is_empty());
        assert!(spec.anti_affinity_group().is_none());
    }

    #[test]
    #[should_panic(expected = "pod name")]
    fn empty_name_rejected() {
        let _ = PodSpec::builder("", "i").build();
    }

    #[test]
    #[should_panic(expected = "memory request")]
    fn zero_memory_rejected() {
        let _ = ResourceRequest::new(100, 0);
    }

    #[test]
    fn pod_id_display() {
        assert_eq!(PodId(12).to_string(), "pod-12");
    }
}
