//! Control-plane event log.
//!
//! Kubernetes surfaces scheduling decisions as *events* (`PodScheduled`,
//! `FailedScheduling`, …); operators and controllers — MicroEdge's
//! reclamation component among them — consume that stream. The orchestrator
//! records an [`OrchEvent`] for every lifecycle transition so tests,
//! examples, and debugging sessions can reconstruct exactly what the
//! control plane did and why.

use serde::{Deserialize, Serialize};

use microedge_cluster::node::NodeId;

use crate::pod::PodId;

/// Why a pod stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Deleted through the API (normal teardown).
    Deleted,
    /// Its node failed underneath it.
    NodeFailure,
}

/// One control-plane occurrence, in commit order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrchEvent {
    /// A pod was bound to a node.
    PodScheduled {
        /// The pod created.
        pod: PodId,
        /// Its (unique-at-the-time) name.
        name: String,
        /// Where it was bound.
        node: NodeId,
    },
    /// A pod creation request could not be placed.
    SchedulingFailed {
        /// The requested pod name.
        name: String,
        /// Human-readable cause.
        reason: String,
    },
    /// A pod stopped running.
    PodTerminated {
        /// The pod.
        pod: PodId,
        /// The node it ran on.
        node: NodeId,
        /// Why it stopped.
        reason: TerminationReason,
    },
    /// A node left the cluster (failure injection).
    NodeFailed {
        /// The failed node.
        node: NodeId,
        /// Pods that were running on it.
        displaced: Vec<PodId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable_and_printable() {
        let a = OrchEvent::PodScheduled {
            pod: PodId(1),
            name: "cam".into(),
            node: NodeId(0),
        };
        assert_eq!(a, a.clone());
        let s = format!("{a:?}");
        assert!(s.contains("PodScheduled"));
        assert!(format!("{:?}", TerminationReason::NodeFailure).contains("NodeFailure"));
    }
}
