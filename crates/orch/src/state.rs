//! Cluster allocation state: which pods are bound where, and what CPU and
//! memory remain on each node.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;

use crate::pod::{PodId, PodSpec};

/// Entry of the ranked availability index: `(remaining CPU, remaining
/// memory, Reverse(node id))`, so that *descending* set order is exactly
/// the default scheduler's least-allocated ranking (most CPU first, then
/// most memory, then lowest node id).
type RankedEntry = (u32, u64, Reverse<NodeId>);

/// Remaining allocatable resources on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAvailability {
    cpu_millis: u32,
    mem_bytes: u64,
}

impl NodeAvailability {
    /// Remaining CPU in millicores.
    #[must_use]
    pub fn cpu_millis(&self) -> u32 {
        self.cpu_millis
    }

    /// Remaining memory in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// `true` when `spec`'s requests fit.
    #[must_use]
    pub fn fits(&self, spec: &PodSpec) -> bool {
        self.cpu_millis >= spec.resources().cpu_millis()
            && self.mem_bytes >= spec.resources().mem_bytes()
    }
}

/// A pod bound to a node.
#[derive(Debug, Clone)]
struct Binding {
    spec: PodSpec,
    node: NodeId,
}

/// Tracks bindings and per-node allocations for one cluster.
///
/// # Examples
///
/// ```
/// use microedge_cluster::topology::ClusterBuilder;
/// use microedge_orch::pod::{PodId, PodSpec};
/// use microedge_orch::state::ClusterState;
///
/// let cluster = ClusterBuilder::new().vrpis(1).build();
/// let mut state = ClusterState::new(&cluster);
/// let spec = PodSpec::builder("p", "i").build();
/// let node = cluster.nodes()[0].id();
/// state.bind(PodId(0), spec, node);
/// assert_eq!(state.pods_on(node).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterState {
    availability: BTreeMap<NodeId, NodeAvailability>,
    /// Every known node keyed by remaining resources (see [`RankedEntry`]),
    /// kept in lockstep with `availability` by `bind`/`unbind` so the
    /// common selector-free placement is an index lookup instead of a full
    /// filter-and-sort over the fleet.
    ranked: BTreeSet<RankedEntry>,
    bindings: BTreeMap<PodId, Binding>,
    unschedulable: BTreeSet<NodeId>,
}

impl ClusterState {
    /// Creates a state with every node fully available.
    #[must_use]
    pub fn new(cluster: &Cluster) -> Self {
        let availability: BTreeMap<NodeId, NodeAvailability> = cluster
            .nodes()
            .iter()
            .map(|n| {
                (
                    n.id(),
                    NodeAvailability {
                        cpu_millis: n.cpu_millis(),
                        mem_bytes: n.mem_bytes(),
                    },
                )
            })
            .collect();
        let ranked = availability
            .iter()
            .map(|(&id, a)| (a.cpu_millis, a.mem_bytes, Reverse(id)))
            .collect();
        ClusterState {
            availability,
            ranked,
            bindings: BTreeMap::new(),
            unschedulable: BTreeSet::new(),
        }
    }

    /// `true` when `node` accepts new pods (default) — failed nodes are
    /// marked unschedulable and filtered out by the default scheduler.
    #[must_use]
    pub fn is_schedulable(&self, node: NodeId) -> bool {
        !self.unschedulable.contains(&node)
    }

    /// Marks a node (un)schedulable.
    pub fn set_schedulable(&mut self, node: NodeId, schedulable: bool) {
        if schedulable {
            self.unschedulable.remove(&node);
        } else {
            self.unschedulable.insert(node);
        }
    }

    /// Remaining resources on `node`, or `None` for an unknown node.
    #[must_use]
    pub fn availability(&self, node: NodeId) -> Option<NodeAvailability> {
        self.availability.get(&node).copied()
    }

    /// Binds `pod` to `node`, decrementing the node's availability.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown, the pod id is already bound, or the
    /// requests do not fit — callers must check with
    /// [`NodeAvailability::fits`] first (the scheduler does).
    pub fn bind(&mut self, pod: PodId, spec: PodSpec, node: NodeId) {
        let avail = self
            .availability
            .get_mut(&node)
            .unwrap_or_else(|| panic!("unknown node {node}"));
        assert!(
            avail.cpu_millis >= spec.resources().cpu_millis()
                && avail.mem_bytes >= spec.resources().mem_bytes(),
            "binding {pod} to {node} would oversubscribe the node"
        );
        self.ranked
            .remove(&(avail.cpu_millis, avail.mem_bytes, Reverse(node)));
        avail.cpu_millis -= spec.resources().cpu_millis();
        avail.mem_bytes -= spec.resources().mem_bytes();
        self.ranked
            .insert((avail.cpu_millis, avail.mem_bytes, Reverse(node)));
        let prev = self.bindings.insert(pod, Binding { spec, node });
        assert!(prev.is_none(), "{pod} is already bound");
    }

    /// Unbinds `pod`, returning its resources to the node. Returns the node
    /// it was bound to, or `None` if the pod was unknown.
    pub fn unbind(&mut self, pod: PodId) -> Option<NodeId> {
        let binding = self.bindings.remove(&pod)?;
        let avail = self
            .availability
            .get_mut(&binding.node)
            .expect("bound node must exist");
        self.ranked
            .remove(&(avail.cpu_millis, avail.mem_bytes, Reverse(binding.node)));
        avail.cpu_millis += binding.spec.resources().cpu_millis();
        avail.mem_bytes += binding.spec.resources().mem_bytes();
        self.ranked
            .insert((avail.cpu_millis, avail.mem_bytes, Reverse(binding.node)));
        Some(binding.node)
    }

    /// The best node for a **selector-free, anti-affinity-free** spec: the
    /// schedulable node the pod fits with the most remaining CPU (then
    /// memory, then lowest node id) — exactly the head of
    /// [`crate::scheduler::DefaultScheduler::candidate_nodes`]'s ranking,
    /// found by walking the ranked index instead of sorting the fleet.
    ///
    /// Callers must ensure the spec has no node selector and no
    /// anti-affinity group; those constraints are not consulted here.
    #[must_use]
    pub fn best_fit(&self, spec: &PodSpec) -> Option<NodeId> {
        let cpu = spec.resources().cpu_millis();
        let mem = spec.resources().mem_bytes();
        self.ranked
            .iter()
            .rev()
            .filter(|&&(c, m, Reverse(id))| c >= cpu && m >= mem && self.is_schedulable(id))
            .map(|&(_, _, Reverse(id))| id)
            .next()
    }

    /// The node `pod` is bound to, if any.
    #[must_use]
    pub fn node_of(&self, pod: PodId) -> Option<NodeId> {
        self.bindings.get(&pod).map(|b| b.node)
    }

    /// The spec `pod` was bound with, if any.
    #[must_use]
    pub fn spec_of(&self, pod: PodId) -> Option<&PodSpec> {
        self.bindings.get(&pod).map(|b| &b.spec)
    }

    /// Ids of all pods currently bound to `node`.
    #[must_use]
    pub fn pods_on(&self, node: NodeId) -> Vec<PodId> {
        self.bindings
            .iter()
            .filter(|(_, b)| b.node == node)
            .map(|(&id, _)| id)
            .collect()
    }

    /// `true` when some pod of `group` is already bound to `node`
    /// (anti-affinity check).
    #[must_use]
    pub fn group_present_on(&self, node: NodeId, group: &str) -> bool {
        self.bindings
            .values()
            .any(|b| b.node == node && b.spec.anti_affinity_group() == Some(group))
    }

    /// Number of bound pods.
    #[must_use]
    pub fn pod_count(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::ResourceRequest;
    use microedge_cluster::topology::ClusterBuilder;

    fn one_node() -> (Cluster, NodeId) {
        let c = ClusterBuilder::new().vrpis(1).build();
        let id = c.nodes()[0].id();
        (c, id)
    }

    fn spec(cpu: u32, mem: u64) -> PodSpec {
        PodSpec::builder("p", "i")
            .resources(ResourceRequest::new(cpu, mem))
            .build()
    }

    #[test]
    fn bind_decrements_and_unbind_restores() {
        let (c, node) = one_node();
        let mut st = ClusterState::new(&c);
        let before = st.availability(node).unwrap();
        st.bind(PodId(1), spec(1000, 1024), node);
        let during = st.availability(node).unwrap();
        assert_eq!(during.cpu_millis(), before.cpu_millis() - 1000);
        assert_eq!(during.mem_bytes(), before.mem_bytes() - 1024);
        assert_eq!(st.node_of(PodId(1)), Some(node));
        assert_eq!(st.unbind(PodId(1)), Some(node));
        assert_eq!(st.availability(node).unwrap(), before);
        assert_eq!(st.pod_count(), 0);
    }

    #[test]
    fn unbind_unknown_pod_is_none() {
        let (c, _) = one_node();
        let mut st = ClusterState::new(&c);
        assert_eq!(st.unbind(PodId(9)), None);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn binding_beyond_capacity_panics() {
        let (c, node) = one_node();
        let mut st = ClusterState::new(&c);
        st.bind(PodId(1), spec(4000, 1024), node);
        st.bind(PodId(2), spec(1, 1024), node);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (c, node) = one_node();
        let mut st = ClusterState::new(&c);
        st.bind(PodId(1), spec(1, 1), node);
        st.bind(PodId(1), spec(1, 1), node);
    }

    #[test]
    fn anti_affinity_group_detection() {
        let (c, node) = one_node();
        let mut st = ClusterState::new(&c);
        let grouped = PodSpec::builder("a", "i")
            .resources(ResourceRequest::new(1, 1))
            .anti_affinity_group("g")
            .build();
        st.bind(PodId(1), grouped, node);
        assert!(st.group_present_on(node, "g"));
        assert!(!st.group_present_on(node, "other"));
    }

    #[test]
    fn pods_on_lists_bound_pods() {
        let (c, node) = one_node();
        let mut st = ClusterState::new(&c);
        st.bind(PodId(1), spec(1, 1), node);
        st.bind(PodId(2), spec(1, 1), node);
        let mut pods = st.pods_on(node);
        pods.sort();
        assert_eq!(pods, vec![PodId(1), PodId(2)]);
        assert!(st.spec_of(PodId(1)).is_some());
    }

    #[test]
    fn fits_checks_both_dimensions() {
        let (c, node) = one_node();
        let st = ClusterState::new(&c);
        let avail = st.availability(node).unwrap();
        assert!(avail.fits(&spec(4000, 1024)));
        assert!(!avail.fits(&spec(4001, 1024)));
        assert!(!avail.fits(&spec(1, u64::MAX)));
    }
}
