//! Control-plane latency model.
//!
//! The paper's Fig. 7a measures the one-time cost of launching a camera
//! instance: native K3s pod creation versus MicroEdge's extended path
//! (admission + node selection + optional co-compilation + load-balancer
//! configuration before the container launches). On the paper's hardware
//! the MicroEdge additions cost about 10 % over the native launch, and the
//! co-compiling variant has the *same mean but larger variance* because the
//! compiler runs in a separate process in parallel with the extended
//! scheduler.
//!
//! We model the native launch as a normal distribution calibrated to a
//! Raspberry-Pi-class K3s deployment (mean 2 s) and expose the per-RPC cost
//! that the extended scheduler's additional control-plane calls (model
//! `Load`, LBS configuration) incur.

use serde::{Deserialize, Serialize};

use microedge_sim::rng::DetRng;
use microedge_sim::time::SimDuration;

/// Latency parameters for control-plane operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPlaneModel {
    base_launch_mean: SimDuration,
    base_launch_std: SimDuration,
    rpc_cost: SimDuration,
}

impl ControlPlaneModel {
    /// Creates a model from explicit parameters.
    #[must_use]
    pub fn new(
        base_launch_mean: SimDuration,
        base_launch_std: SimDuration,
        rpc_cost: SimDuration,
    ) -> Self {
        ControlPlaneModel {
            base_launch_mean,
            base_launch_std,
            rpc_cost,
        }
    }

    /// Calibrated for a Raspberry-Pi-class K3s deployment: pod launch
    /// 2 s ± 150 ms, 50 ms per additional control-plane RPC.
    #[must_use]
    pub fn rpi_k3s() -> Self {
        ControlPlaneModel::new(
            SimDuration::from_millis(2000),
            SimDuration::from_millis(150),
            SimDuration::from_millis(50),
        )
    }

    /// Mean native pod-launch latency.
    #[must_use]
    pub fn base_launch_mean(&self) -> SimDuration {
        self.base_launch_mean
    }

    /// Cost of one extra control-plane RPC (e.g. a model `Load` call or an
    /// LBS configuration push).
    #[must_use]
    pub fn rpc_cost(&self) -> SimDuration {
        self.rpc_cost
    }

    /// Samples a native K3s pod-launch latency.
    #[must_use]
    pub fn sample_base_launch(&self, rng: &mut DetRng) -> SimDuration {
        rng.normal_duration(self.base_launch_mean, self.base_launch_std)
    }
}

impl Default for ControlPlaneModel {
    /// The calibrated RPi/K3s model.
    fn default() -> Self {
        ControlPlaneModel::rpi_k3s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_sim::stats::OnlineStats;

    #[test]
    fn samples_are_centred_on_the_mean() {
        let model = ControlPlaneModel::rpi_k3s();
        let mut rng = DetRng::seed_from(5);
        let mut stats = OnlineStats::new();
        for _ in 0..5000 {
            stats.record_duration(model.sample_base_launch(&mut rng));
        }
        assert!(
            (stats.mean() - 2000.0).abs() < 20.0,
            "mean {}",
            stats.mean()
        );
        assert!(
            (stats.std_dev() - 150.0).abs() < 15.0,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn accessors() {
        let m = ControlPlaneModel::rpi_k3s();
        assert_eq!(m.base_launch_mean(), SimDuration::from_millis(2000));
        assert_eq!(m.rpc_cost(), SimDuration::from_millis(50));
        assert_eq!(ControlPlaneModel::default(), m);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = ControlPlaneModel::rpi_k3s();
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(m.sample_base_launch(&mut a), m.sample_base_launch(&mut b));
        }
    }
}
