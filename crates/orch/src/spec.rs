//! YAML-subset parser for pod creation requests.
//!
//! Clients hand K3s a Yaml file (paper §3.1 step ①). We parse the subset
//! that pod specs actually use — two levels of `key: value` mappings with
//! comments and optional quoting — rather than pulling in a full YAML
//! implementation:
//!
//! ```yaml
//! # a Coral-Pie camera instance
//! name: camera-0
//! image: coral-pie:latest
//! resources:
//!   cpu: 500m
//!   memory: 256Mi
//! nodeSelector:
//!   microedge.io/tpu: "true"
//! antiAffinityGroup: coral-pie
//! extensions:
//!   microedge.io/model: ssd-mobilenet-v2
//!   microedge.io/tpu-units: "0.35"
//! ```
//!
//! CPU quantities accept the K8s forms `500m` (millicores) or `2` (cores);
//! memory accepts `Ki`/`Mi`/`Gi` suffixes or plain bytes.

use std::fmt;

use crate::pod::{PodSpec, PodSpecBuilder, ResourceRequest};

/// Error produced when a pod spec file cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    line: usize,
    message: String,
}

impl ParseSpecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseSpecError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number the error was detected on (0 for file-level
    /// errors).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpecError {}

/// Parses a K8s CPU quantity: `500m` → 500 millicores, `2` → 2000.
fn parse_cpu(line: usize, raw: &str) -> Result<u32, ParseSpecError> {
    let parsed = if let Some(milli) = raw.strip_suffix('m') {
        milli.parse::<u32>().ok()
    } else {
        raw.parse::<u32>().ok().and_then(|c| c.checked_mul(1000))
    };
    parsed.ok_or_else(|| ParseSpecError::new(line, format!("invalid cpu quantity `{raw}`")))
}

/// Parses a K8s memory quantity: `256Mi`, `1Gi`, `512Ki`, or plain bytes.
fn parse_memory(line: usize, raw: &str) -> Result<u64, ParseSpecError> {
    let (digits, multiplier) = if let Some(d) = raw.strip_suffix("Gi") {
        (d, 1024 * 1024 * 1024)
    } else if let Some(d) = raw.strip_suffix("Mi") {
        (d, 1024 * 1024)
    } else if let Some(d) = raw.strip_suffix("Ki") {
        (d, 1024)
    } else {
        (raw, 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|v| v.checked_mul(multiplier))
        .ok_or_else(|| ParseSpecError::new(line, format!("invalid memory quantity `{raw}`")))
}

fn unquote(value: &str) -> &str {
    let v = value.trim();
    if v.len() >= 2
        && ((v.starts_with('"') && v.ends_with('"')) || (v.starts_with('\'') && v.ends_with('\'')))
    {
        &v[1..v.len() - 1]
    } else {
        v
    }
}

/// One parsed line: indentation level (0 or 1), key, optional value.
fn split_line(
    lineno: usize,
    line: &str,
) -> Result<Option<(usize, String, String)>, ParseSpecError> {
    let without_comment = match line.find('#') {
        // Allow '#' inside quoted values by only stripping comments that
        // start at the beginning or after whitespace.
        Some(idx) if idx == 0 || line[..idx].ends_with(char::is_whitespace) => &line[..idx],
        _ => line,
    };
    if without_comment.trim().is_empty() {
        return Ok(None);
    }
    let indent_chars = without_comment.len() - without_comment.trim_start().len();
    let level = match indent_chars {
        0 => 0,
        2 => 1,
        n => {
            return Err(ParseSpecError::new(
                lineno,
                format!("unsupported indentation of {n} spaces (use 0 or 2)"),
            ))
        }
    };
    let body = without_comment.trim();
    let (key, value) = body.split_once(':').ok_or_else(|| {
        ParseSpecError::new(lineno, format!("expected `key: value`, got `{body}`"))
    })?;
    Ok(Some((
        level,
        key.trim().to_owned(),
        unquote(value).to_owned(),
    )))
}

/// Parses a pod spec from the YAML subset described in the module docs.
///
/// # Errors
///
/// Returns [`ParseSpecError`] on malformed lines, unknown top-level keys,
/// missing mandatory fields (`name`, `image`), or invalid resource
/// quantities.
///
/// # Examples
///
/// ```
/// use microedge_orch::spec::parse_pod_spec;
///
/// let spec = parse_pod_spec("name: cam\nimage: app:v1\n")?;
/// assert_eq!(spec.name(), "cam");
/// # Ok::<(), microedge_orch::spec::ParseSpecError>(())
/// ```
pub fn parse_pod_spec(text: &str) -> Result<PodSpec, ParseSpecError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Resources,
        NodeSelector,
        Extensions,
    }

    let mut name: Option<String> = None;
    let mut image: Option<String> = None;
    let mut cpu: Option<u32> = None;
    let mut memory: Option<u64> = None;
    let mut anti_affinity: Option<String> = None;
    let mut selectors: Vec<(String, String)> = Vec::new();
    let mut extensions: Vec<(String, String)> = Vec::new();
    let mut section = Section::None;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let Some((level, key, value)) = split_line(lineno, raw_line)? else {
            continue;
        };
        if level == 0 {
            section = Section::None;
            let opens_section = matches!(key.as_str(), "resources" | "nodeSelector" | "extensions");
            if opens_section && !value.is_empty() {
                return Err(ParseSpecError::new(
                    lineno,
                    format!("`{key}` opens a section and takes no inline value"),
                ));
            }
            match key.as_str() {
                "name" => name = Some(value),
                "image" => image = Some(value),
                "antiAffinityGroup" => anti_affinity = Some(value),
                "resources" => section = Section::Resources,
                "nodeSelector" => section = Section::NodeSelector,
                "extensions" => section = Section::Extensions,
                other => {
                    return Err(ParseSpecError::new(
                        lineno,
                        format!("unknown top-level key `{other}`"),
                    ))
                }
            }
        } else {
            match section {
                Section::Resources => match key.as_str() {
                    "cpu" => cpu = Some(parse_cpu(lineno, &value)?),
                    "memory" => memory = Some(parse_memory(lineno, &value)?),
                    other => {
                        return Err(ParseSpecError::new(
                            lineno,
                            format!("unknown resource `{other}`"),
                        ))
                    }
                },
                Section::NodeSelector => selectors.push((key, value)),
                Section::Extensions => extensions.push((key, value)),
                Section::None => {
                    return Err(ParseSpecError::new(
                        lineno,
                        "indented line outside any section",
                    ))
                }
            }
        }
    }

    let name = name.ok_or_else(|| ParseSpecError::new(0, "missing mandatory field `name`"))?;
    let image = image.ok_or_else(|| ParseSpecError::new(0, "missing mandatory field `image`"))?;
    if name.is_empty() {
        return Err(ParseSpecError::new(0, "`name` must be non-empty"));
    }
    if image.is_empty() {
        return Err(ParseSpecError::new(0, "`image` must be non-empty"));
    }

    let defaults = ResourceRequest::camera_default();
    let resources = ResourceRequest::new(
        cpu.unwrap_or_else(|| defaults.cpu_millis()),
        memory.unwrap_or_else(|| defaults.mem_bytes()),
    );

    let mut builder: PodSpecBuilder = PodSpec::builder(&name, &image).resources(resources);
    if let Some(group) = anti_affinity {
        builder = builder.anti_affinity_group(&group);
    }
    for (k, v) in &selectors {
        builder = builder.node_selector(k, v);
    }
    for (k, v) in &extensions {
        builder = builder.extension(k, v);
    }
    Ok(builder.build())
}

/// Parses a multi-document spec file: documents separated by `---` lines,
/// as in Kubernetes manifests. Empty documents are skipped.
///
/// # Errors
///
/// Returns the first document's [`ParseSpecError`] on failure.
///
/// # Examples
///
/// ```
/// use microedge_orch::spec::parse_pod_specs;
///
/// let specs = parse_pod_specs("name: a\nimage: i\n---\nname: b\nimage: i\n")?;
/// assert_eq!(specs.len(), 2);
/// # Ok::<(), microedge_orch::spec::ParseSpecError>(())
/// ```
pub fn parse_pod_specs(text: &str) -> Result<Vec<PodSpec>, ParseSpecError> {
    text.split("\n---")
        .map(|doc| doc.strip_prefix("---").unwrap_or(doc))
        .filter(|doc| {
            doc.lines()
                .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        })
        .map(parse_pod_spec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{EXT_MODEL, EXT_TPU_UNITS};

    const FULL: &str = r#"
# a Coral-Pie camera instance
name: camera-0
image: coral-pie:latest
resources:
  cpu: 500m
  memory: 256Mi
nodeSelector:
  microedge.io/tpu: "true"
antiAffinityGroup: coral-pie
extensions:
  microedge.io/model: ssd-mobilenet-v2
  microedge.io/tpu-units: "0.35"
"#;

    #[test]
    fn full_spec_parses() {
        let spec = parse_pod_spec(FULL).unwrap();
        assert_eq!(spec.name(), "camera-0");
        assert_eq!(spec.image(), "coral-pie:latest");
        assert_eq!(spec.resources().cpu_millis(), 500);
        assert_eq!(spec.resources().mem_bytes(), 256 * 1024 * 1024);
        assert_eq!(
            spec.node_selector()
                .get("microedge.io/tpu")
                .map(String::as_str),
            Some("true")
        );
        assert_eq!(spec.anti_affinity_group(), Some("coral-pie"));
        assert_eq!(spec.extension(EXT_MODEL), Some("ssd-mobilenet-v2"));
        assert_eq!(spec.extension(EXT_TPU_UNITS), Some("0.35"));
    }

    #[test]
    fn minimal_spec_uses_defaults() {
        let spec = parse_pod_spec("name: p\nimage: i\n").unwrap();
        assert_eq!(spec.resources(), ResourceRequest::camera_default());
        assert!(spec.extensions().is_empty());
    }

    #[test]
    fn cpu_quantities() {
        let spec = parse_pod_spec("name: p\nimage: i\nresources:\n  cpu: 2\n").unwrap();
        assert_eq!(spec.resources().cpu_millis(), 2000);
        let spec = parse_pod_spec("name: p\nimage: i\nresources:\n  cpu: 250m\n").unwrap();
        assert_eq!(spec.resources().cpu_millis(), 250);
    }

    #[test]
    fn memory_quantities() {
        for (raw, expect) in [
            ("512Ki", 512 * 1024),
            ("3Mi", 3 * 1024 * 1024),
            ("1Gi", 1024 * 1024 * 1024),
            ("12345", 12345),
        ] {
            let text = format!("name: p\nimage: i\nresources:\n  memory: {raw}\n");
            let spec = parse_pod_spec(&text).unwrap();
            assert_eq!(spec.resources().mem_bytes(), expect, "{raw}");
        }
    }

    #[test]
    fn missing_name_is_an_error() {
        let err = parse_pod_spec("image: i\n").unwrap_err();
        assert!(err.to_string().contains("name"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = parse_pod_spec("name: p\nimage: i\nbogus: x\n").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn bad_cpu_is_an_error() {
        let err = parse_pod_spec("name: p\nimage: i\nresources:\n  cpu: lots\n").unwrap_err();
        assert!(err.to_string().contains("cpu"));
    }

    #[test]
    fn bad_indentation_is_an_error() {
        let err = parse_pod_spec("name: p\nimage: i\nresources:\n    cpu: 1\n").unwrap_err();
        assert!(err.to_string().contains("indentation"));
    }

    #[test]
    fn indented_line_outside_section_is_an_error() {
        let err = parse_pod_spec("name: p\n  stray: x\n").unwrap_err();
        assert!(err.to_string().contains("outside any section"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse_pod_spec("# hello\n\nname: p # trailing\nimage: i\n").unwrap();
        assert_eq!(spec.name(), "p");
    }

    #[test]
    fn quoted_values_unquoted() {
        let spec = parse_pod_spec("name: 'p'\nimage: \"i:v1\"\n").unwrap();
        assert_eq!(spec.name(), "p");
        assert_eq!(spec.image(), "i:v1");
    }

    #[test]
    fn multi_document_files_parse() {
        let text = "name: a\nimage: i\n---\nname: b\nimage: j\nresources:\n  cpu: 250m\n";
        let specs = parse_pod_specs(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name(), "a");
        assert_eq!(specs[1].image(), "j");
        assert_eq!(specs[1].resources().cpu_millis(), 250);
    }

    #[test]
    fn empty_documents_are_skipped() {
        let text = "---\n\n---\nname: only\nimage: i\n---\n# comment only\n";
        let specs = parse_pod_specs(text).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name(), "only");
    }

    #[test]
    fn multi_document_errors_propagate() {
        let text = "name: ok\nimage: i\n---\nbogus: x\n";
        assert!(parse_pod_specs(text).is_err());
    }
}
