//! Integration tests for the lint engine: one violating and one conforming
//! fixture per rule, the allow escape hatch (acceptance + missing-reason
//! rejection), tokenizer edge cases, the ratchet, and a self-check that the
//! real workspace is clean.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use microedge_lint::{baseline, config, engine, rules};

/// Scan a fixture file as if it lived at `rel` inside the workspace.
fn scan(rel: &str, fixture: &str) -> rules::FileFindings {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    rules::scan_file(rel, &src)
}

fn rules_of(f: &rules::FileFindings) -> Vec<&'static str> {
    f.diags.iter().map(|d| d.rule).collect()
}

#[test]
fn wall_clock_violations_are_flagged_with_positions() {
    let f = scan("crates/core/src/clock.rs", "wall_clock_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-wall-clock", "no-wall-clock"]);
    // `Instant` on line 4 col 13, `SystemTime` on line 5 col 13.
    assert_eq!((f.diags[0].line, f.diags[0].col), (4, 13));
    assert_eq!((f.diags[1].line, f.diags[1].col), (5, 13));
    // Machine-readable rendering: `rule-id: file:line:col message`.
    let rendered = f.diags[0].to_string();
    assert!(
        rendered.starts_with("no-wall-clock: crates/core/src/clock.rs:4:13 "),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn wall_clock_exempt_in_bench_measurement_modules() {
    for rel in [
        "crates/bench/src/perf.rs",
        "crates/bench/src/scale_sharded.rs",
    ] {
        let f = scan(rel, "wall_clock_violation.rs");
        assert!(
            f.diags.is_empty(),
            "measurement modules may read the wall clock ({rel}): {:?}",
            f.diags
        );
    }
    // The sharded replay itself is NOT a measurement module: the shard
    // machinery must take time from the EventQueue like everything else.
    let f = scan("crates/core/src/shard.rs", "wall_clock_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-wall-clock"; 2], "{:?}", f.diags);
}

#[test]
fn wall_clock_conforming_snippet_is_clean() {
    let f = scan("crates/core/src/clock.rs", "wall_clock_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ambient_rng_violations_are_flagged_workspace_wide() {
    // The rule applies even in the bench crate: replays must be seedable.
    let f = scan("crates/bench/src/runner.rs", "ambient_rng_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-ambient-rng"; 4], "{:?}", f.diags);
}

#[test]
fn ambient_rng_conforming_snippet_is_clean() {
    let f = scan("crates/workloads/src/camera.rs", "ambient_rng_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn unordered_collections_flagged_in_artifact_crates_only() {
    let f = scan("crates/core/src/pool.rs", "unordered_violation.rs");
    assert_eq!(
        rules_of(&f),
        vec!["no-unordered-collections"; 6],
        "{:?}",
        f.diags
    );
    // The new shard modules feed byte-identical artifacts too: the sharded
    // replay (crates/core) and the worker pool it runs on (crates/sim) are
    // both inside the ordered-collections scope.
    for rel in ["crates/core/src/shard.rs", "crates/sim/src/par.rs"] {
        let f = scan(rel, "unordered_violation.rs");
        assert_eq!(
            rules_of(&f),
            vec!["no-unordered-collections"; 6],
            "shard modules must stay in scope ({rel}): {:?}",
            f.diags
        );
    }
    // Outside the scoped crates the same source is accepted.
    let f = scan("crates/bench/src/packing.rs", "unordered_violation.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ordered_collections_are_clean() {
    let f = scan("crates/core/src/pool.rs", "unordered_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn partial_cmp_panic_chains_and_comparators_are_flagged() {
    let f = scan("crates/metrics/src/latency.rs", "partial_cmp_violation.rs");
    assert_eq!(
        rules_of(&f),
        vec!["no-partial-float-cmp"; 3],
        "{:?}",
        f.diags
    );
    let lines: Vec<u32> = f.diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 5, 10]);
}

#[test]
fn canonical_partial_ord_impl_is_not_a_call_site() {
    let f = scan("crates/sim/src/event.rs", "partial_cmp_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn unsafe_tokens_are_flagged() {
    let f = scan("crates/tpu/src/device.rs", "unsafe_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-unsafe"]);
    assert_eq!(f.diags[0].line, 2);
}

#[test]
fn ratchet_counts_bare_unwrap_and_empty_expect_outside_tests() {
    let f = scan("crates/core/src/runtime.rs", "unwrap_ratchet.rs");
    // `x.unwrap()` + `y.expect("")` count; `expect("<invariant>")` and the
    // unwraps inside the `#[cfg(test)]` module do not.
    assert_eq!(f.unwrap_count, 2);
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ratchet_ignores_integration_test_trees() {
    let f = scan("crates/core/tests/world.rs", "unwrap_ratchet.rs");
    assert_eq!(f.unwrap_count, 0);
}

#[test]
fn valid_allow_suppresses_same_line_and_preceding_line() {
    let f = scan("crates/core/src/clock.rs", "allow_ok.rs");
    assert!(
        f.diags.is_empty(),
        "allow comments must suppress: {:?}",
        f.diags
    );
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let f = scan("crates/core/src/clock.rs", "allow_missing_reason.rs");
    assert_eq!(
        rules_of(&f),
        vec!["bad-allow", "no-wall-clock"],
        "{:?}",
        f.diags
    );
    assert!(
        f.diags[0].message.contains("mandatory reason"),
        "{}",
        f.diags[0].message
    );
}

#[test]
fn allow_with_unknown_rule_is_rejected() {
    let f = scan("crates/core/src/pool.rs", "allow_unknown_rule.rs");
    assert_eq!(
        rules_of(&f),
        vec![
            "bad-allow",
            "no-unordered-collections",
            "no-unordered-collections"
        ],
        "{:?}",
        f.diags
    );
    assert!(
        f.diags[0].message.contains("unknown rule-id"),
        "{}",
        f.diags[0].message
    );
}

#[test]
fn banned_names_in_strings_and_comments_do_not_trip_rules() {
    // Scanned as a sim file so every rule (incl. unordered collections) is on.
    let f = scan("crates/sim/src/stats.rs", "tokenizer_edge.rs");
    assert!(
        f.diags.is_empty(),
        "tokenizer edge cases leaked: {:?}",
        f.diags
    );
    assert_eq!(f.unwrap_count, 0);
}

#[test]
fn baseline_roundtrip_and_ratchet_direction() {
    let mut unwrap = BTreeMap::new();
    unwrap.insert("microedge-core".to_string(), 3usize);
    unwrap.insert("microedge-orch".to_string(), 0usize);
    let mut panic_path = BTreeMap::new();
    panic_path.insert("microedge-core".to_string(), 120usize);

    // Round-trip through the committed two-section file format.
    let parsed =
        baseline::parse(&baseline::format(&unwrap, &panic_path)).expect("own format parses");
    assert_eq!(parsed.unwrap, unwrap);
    assert_eq!(parsed.panic_path, panic_path);

    // Equal or shrinking debt passes, on both tables.
    assert!(baseline::check(&unwrap, &panic_path, &parsed).is_empty());
    let mut roomy = baseline::parse(&baseline::format(&unwrap, &panic_path)).expect("parses");
    roomy.unwrap.insert("microedge-core".to_string(), 5);
    roomy.panic_path.insert("microedge-core".to_string(), 200);
    assert!(baseline::check(&unwrap, &panic_path, &roomy).is_empty());

    // Growth fails per table, with the machine-readable diagnostic shape.
    let mut tight = baseline::parse(&baseline::format(&unwrap, &panic_path)).expect("parses");
    tight.unwrap.insert("microedge-core".to_string(), 2);
    tight.panic_path.insert("microedge-core".to_string(), 100);
    let diags = baseline::check(&unwrap, &panic_path, &tight);
    assert_eq!(diags.len(), 2);
    assert!(diags[0]
        .to_string()
        .starts_with("unwrap-ratchet: lint-baseline.toml:1:1 "));
    assert!(diags[1]
        .to_string()
        .starts_with("panic-path-ratchet: lint-baseline.toml:1:1 "));

    // A crate missing from the baseline ratchets against zero.
    let diags = baseline::check(&unwrap, &panic_path, &baseline::Baseline::default());
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.message.contains("microedge-core")));

    // Malformed files are rejected, not ignored — including a file that
    // silently lost one of its two sections.
    assert!(baseline::parse("[unwrap-ratchet]\nnot a pair").is_err());
    assert!(baseline::parse("\"microedge-core\" = 1").is_err());
    assert!(baseline::parse("[unwrap-ratchet]\n\"microedge-core\" = 1").is_err());
    assert!(baseline::parse("[panic-path]\n\"microedge-core\" = 1").is_err());
}

/// Analyze a fixture and build its crate-level call graph, as the engine's
/// phase 2 does for real crates.
fn graph(rel: &str, fixture: &str) -> (microedge_lint::callgraph::CrateGraph, rules::FileAnalysis) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let analysis = rules::analyze_file(rel, &src);
    let g = microedge_lint::callgraph::CrateGraph::build(analysis.fns.clone());
    (g, analysis)
}

#[test]
fn narrowing_casts_flagged_in_scoped_crates_only() {
    let f = scan("crates/core/src/pool.rs", "narrowing_violation.rs");
    assert_eq!(
        rules_of(&f),
        vec!["no-narrowing-as-cast"; 3],
        "{:?}",
        f.diags
    );
    let lines: Vec<u32> = f.diags.iter().map(|d| d.line).collect();
    // One per lossy cast; the `#[cfg(test)]` module is masked.
    assert_eq!(lines, vec![5, 6, 7]);

    // Outside core/sim/metrics the same source is accepted.
    let f = scan("crates/bench/src/packing.rs", "narrowing_violation.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
    // Integration-test trees are out of scope even inside those crates.
    let f = scan("crates/core/tests/world.rs", "narrowing_violation.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn safe_cast_sources_are_not_flagged() {
    let f = scan("crates/sim/src/stats.rs", "narrowing_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn narrowing_allow_with_reason_suppresses() {
    let f = scan("crates/core/src/fleet.rs", "narrowing_allow.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn taint_reaches_sink_through_call_chain() {
    let (g, _) = graph("crates/metrics/src/latency.rs", "taint_violation.rs");
    let diags = microedge_lint::taint::taint_artifact_path(&g);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "taint-artifact-path");
    // The finding sits at the sink call site inside `observe`…
    assert_eq!(diags[0].line, 13);
    // …and the message names the sink, the source kind, and the chain.
    assert!(
        diags[0].message.contains("`record`"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("`Instant::now()`"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("observe -> sample_ns"),
        "{}",
        diags[0].message
    );
}

#[test]
fn simulated_time_does_not_taint_the_same_sink() {
    let (g, _) = graph("crates/metrics/src/latency.rs", "taint_ok.rs");
    let diags = microedge_lint::taint::taint_artifact_path(&g);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn taint_allow_directive_covers_the_sink_call_site() {
    let (g, analysis) = graph("crates/metrics/src/latency.rs", "taint_allow.rs");
    let diags = microedge_lint::taint::taint_artifact_path(&g);
    assert_eq!(diags.len(), 1, "{diags:?}");
    // The engine drops findings whose sink line is covered by a well-formed
    // allow directive; replicate its filter here.
    assert!(
        analysis
            .allows
            .iter()
            .any(|a| a.covers(diags[0].rule, diags[0].line)),
        "allow at the sink call site must cover the finding"
    );
}

#[test]
fn panic_path_counts_only_constructs_reachable_from_entries() {
    let (g, _) = graph("crates/core/src/fleet.rs", "panic_path.rs");
    let (debt, breakdown) = microedge_lint::taint::panic_path_debt(&g);
    // `place` (one indexing) + `probe` (one unwrap); `offline_report`'s
    // two constructs are unreachable and must not count.
    assert_eq!(debt, 2, "{breakdown:?}");
    let fns: Vec<&str> = breakdown.iter().map(|(f, _, _, _)| f.as_str()).collect();
    assert!(fns.contains(&"FrontDoor::place"), "{breakdown:?}");
    assert!(fns.contains(&"FrontDoor::probe"), "{breakdown:?}");
    assert!(!fns.iter().any(|f| f.contains("offline_report")));

    // The same file outside the entry point's path contributes nothing.
    let (g, _) = graph("crates/orch/src/report.rs", "panic_path.rs");
    let (debt, _) = microedge_lint::taint::panic_path_debt(&g);
    assert_eq!(debt, 0);
}

#[test]
fn self_check_the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert_eq!(
        engine::find_root(&root.join("crates/lint/src")),
        Some(root.clone())
    );

    let report = engine::lint_workspace_with_baseline(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
    // Every tracked package appears in both ratchets, even at zero debt.
    for krate in [
        "microedge",
        "microedge-core",
        "microedge-sim",
        "microedge-lint",
    ] {
        assert!(
            report.ratchet.contains_key(krate),
            "missing ratchet entry for {krate}"
        );
        assert!(
            report.panic_ratchet.contains_key(krate),
            "missing panic-path entry for {krate}"
        );
    }
    // The replay hot path exists, so the panic-path measure must resolve
    // its entry points and see a non-empty reachable set.
    assert!(
        report.panic_ratchet["microedge-core"] > 0,
        "panic-path entries failed to resolve: {:?}",
        report.panic_breakdown
    );
    // The two hard rules are burned to zero workspace-wide; pin that so a
    // regression cannot hide behind an allow or a baseline bump.
    let raw = engine::lint_workspace(&root).expect("workspace scan");
    assert!(
        !raw.diags
            .iter()
            .any(|d| d.rule == "taint-artifact-path" || d.rule == "no-narrowing-as-cast"),
        "hard rules must stay at zero findings: {:?}",
        raw.diags
    );
    // The fixture corpus (deliberate violations) must be excluded from the walk.
    let files = engine::workspace_files(&root).expect("walk");
    assert!(
        !files
            .iter()
            .any(|f| f.to_string_lossy().contains(config::FIXTURE_DIR)),
        "fixtures leaked into the workspace scan"
    );
}
