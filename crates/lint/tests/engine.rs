//! Integration tests for the lint engine: one violating and one conforming
//! fixture per rule, the allow escape hatch (acceptance + missing-reason
//! rejection), tokenizer edge cases, the ratchet, and a self-check that the
//! real workspace is clean.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use microedge_lint::{baseline, config, engine, rules};

/// Scan a fixture file as if it lived at `rel` inside the workspace.
fn scan(rel: &str, fixture: &str) -> rules::FileFindings {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    rules::scan_file(rel, &src)
}

fn rules_of(f: &rules::FileFindings) -> Vec<&'static str> {
    f.diags.iter().map(|d| d.rule).collect()
}

#[test]
fn wall_clock_violations_are_flagged_with_positions() {
    let f = scan("crates/core/src/clock.rs", "wall_clock_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-wall-clock", "no-wall-clock"]);
    // `Instant` on line 4 col 13, `SystemTime` on line 5 col 13.
    assert_eq!((f.diags[0].line, f.diags[0].col), (4, 13));
    assert_eq!((f.diags[1].line, f.diags[1].col), (5, 13));
    // Machine-readable rendering: `rule-id: file:line:col message`.
    let rendered = f.diags[0].to_string();
    assert!(
        rendered.starts_with("no-wall-clock: crates/core/src/clock.rs:4:13 "),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn wall_clock_exempt_in_bench_measurement_modules() {
    for rel in [
        "crates/bench/src/perf.rs",
        "crates/bench/src/scale_sharded.rs",
    ] {
        let f = scan(rel, "wall_clock_violation.rs");
        assert!(
            f.diags.is_empty(),
            "measurement modules may read the wall clock ({rel}): {:?}",
            f.diags
        );
    }
    // The sharded replay itself is NOT a measurement module: the shard
    // machinery must take time from the EventQueue like everything else.
    let f = scan("crates/core/src/shard.rs", "wall_clock_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-wall-clock"; 2], "{:?}", f.diags);
}

#[test]
fn wall_clock_conforming_snippet_is_clean() {
    let f = scan("crates/core/src/clock.rs", "wall_clock_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ambient_rng_violations_are_flagged_workspace_wide() {
    // The rule applies even in the bench crate: replays must be seedable.
    let f = scan("crates/bench/src/runner.rs", "ambient_rng_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-ambient-rng"; 4], "{:?}", f.diags);
}

#[test]
fn ambient_rng_conforming_snippet_is_clean() {
    let f = scan("crates/workloads/src/camera.rs", "ambient_rng_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn unordered_collections_flagged_in_artifact_crates_only() {
    let f = scan("crates/core/src/pool.rs", "unordered_violation.rs");
    assert_eq!(
        rules_of(&f),
        vec!["no-unordered-collections"; 6],
        "{:?}",
        f.diags
    );
    // The new shard modules feed byte-identical artifacts too: the sharded
    // replay (crates/core) and the worker pool it runs on (crates/sim) are
    // both inside the ordered-collections scope.
    for rel in ["crates/core/src/shard.rs", "crates/sim/src/par.rs"] {
        let f = scan(rel, "unordered_violation.rs");
        assert_eq!(
            rules_of(&f),
            vec!["no-unordered-collections"; 6],
            "shard modules must stay in scope ({rel}): {:?}",
            f.diags
        );
    }
    // Outside the scoped crates the same source is accepted.
    let f = scan("crates/bench/src/packing.rs", "unordered_violation.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ordered_collections_are_clean() {
    let f = scan("crates/core/src/pool.rs", "unordered_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn partial_cmp_panic_chains_and_comparators_are_flagged() {
    let f = scan("crates/metrics/src/latency.rs", "partial_cmp_violation.rs");
    assert_eq!(
        rules_of(&f),
        vec!["no-partial-float-cmp"; 3],
        "{:?}",
        f.diags
    );
    let lines: Vec<u32> = f.diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 5, 10]);
}

#[test]
fn canonical_partial_ord_impl_is_not_a_call_site() {
    let f = scan("crates/sim/src/event.rs", "partial_cmp_ok.rs");
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn unsafe_tokens_are_flagged() {
    let f = scan("crates/tpu/src/device.rs", "unsafe_violation.rs");
    assert_eq!(rules_of(&f), vec!["no-unsafe"]);
    assert_eq!(f.diags[0].line, 2);
}

#[test]
fn ratchet_counts_bare_unwrap_and_empty_expect_outside_tests() {
    let f = scan("crates/core/src/runtime.rs", "unwrap_ratchet.rs");
    // `x.unwrap()` + `y.expect("")` count; `expect("<invariant>")` and the
    // unwraps inside the `#[cfg(test)]` module do not.
    assert_eq!(f.unwrap_count, 2);
    assert!(f.diags.is_empty(), "{:?}", f.diags);
}

#[test]
fn ratchet_ignores_integration_test_trees() {
    let f = scan("crates/core/tests/world.rs", "unwrap_ratchet.rs");
    assert_eq!(f.unwrap_count, 0);
}

#[test]
fn valid_allow_suppresses_same_line_and_preceding_line() {
    let f = scan("crates/core/src/clock.rs", "allow_ok.rs");
    assert!(
        f.diags.is_empty(),
        "allow comments must suppress: {:?}",
        f.diags
    );
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let f = scan("crates/core/src/clock.rs", "allow_missing_reason.rs");
    assert_eq!(
        rules_of(&f),
        vec!["bad-allow", "no-wall-clock"],
        "{:?}",
        f.diags
    );
    assert!(
        f.diags[0].message.contains("mandatory reason"),
        "{}",
        f.diags[0].message
    );
}

#[test]
fn allow_with_unknown_rule_is_rejected() {
    let f = scan("crates/core/src/pool.rs", "allow_unknown_rule.rs");
    assert_eq!(
        rules_of(&f),
        vec![
            "bad-allow",
            "no-unordered-collections",
            "no-unordered-collections"
        ],
        "{:?}",
        f.diags
    );
    assert!(
        f.diags[0].message.contains("unknown rule-id"),
        "{}",
        f.diags[0].message
    );
}

#[test]
fn banned_names_in_strings_and_comments_do_not_trip_rules() {
    // Scanned as a sim file so every rule (incl. unordered collections) is on.
    let f = scan("crates/sim/src/stats.rs", "tokenizer_edge.rs");
    assert!(
        f.diags.is_empty(),
        "tokenizer edge cases leaked: {:?}",
        f.diags
    );
    assert_eq!(f.unwrap_count, 0);
}

#[test]
fn baseline_roundtrip_and_ratchet_direction() {
    let mut measured = BTreeMap::new();
    measured.insert("microedge-core".to_string(), 3usize);
    measured.insert("microedge-orch".to_string(), 0usize);

    // Round-trip through the committed file format.
    let parsed = baseline::parse(&baseline::format(&measured)).expect("own format parses");
    assert_eq!(parsed, measured);

    // Equal or shrinking debt passes.
    assert!(baseline::check(&measured, &parsed).is_empty());
    let mut roomy = parsed.clone();
    roomy.insert("microedge-core".to_string(), 5);
    assert!(baseline::check(&measured, &roomy).is_empty());

    // Growth fails, with the machine-readable diagnostic shape.
    let mut tight = parsed.clone();
    tight.insert("microedge-core".to_string(), 2);
    let diags = baseline::check(&measured, &tight);
    assert_eq!(diags.len(), 1);
    assert!(diags[0]
        .to_string()
        .starts_with("unwrap-ratchet: lint-baseline.toml:1:1 "));

    // A crate missing from the baseline ratchets against zero.
    let diags = baseline::check(&measured, &BTreeMap::new());
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("microedge-core"));

    // Malformed files are rejected, not ignored.
    assert!(baseline::parse("[unwrap-ratchet]\nnot a pair").is_err());
    assert!(baseline::parse("\"microedge-core\" = 1").is_err());
}

#[test]
fn self_check_the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert_eq!(
        engine::find_root(&root.join("crates/lint/src")),
        Some(root.clone())
    );

    let report = engine::lint_workspace_with_baseline(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
    // Every tracked package appears in the ratchet, even at zero debt.
    for krate in [
        "microedge",
        "microedge-core",
        "microedge-sim",
        "microedge-lint",
    ] {
        assert!(
            report.ratchet.contains_key(krate),
            "missing ratchet entry for {krate}"
        );
    }
    // The fixture corpus (deliberate violations) must be excluded from the walk.
    let files = engine::workspace_files(&root).expect("walk");
    assert!(
        !files
            .iter()
            .any(|f| f.to_string_lossy().contains(config::FIXTURE_DIR)),
        "fixtures leaked into the workspace scan"
    );
}
