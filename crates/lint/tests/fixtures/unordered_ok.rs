use std::collections::{BTreeMap, BTreeSet};

pub fn build() -> (BTreeMap<u32, u32>, BTreeSet<u32>) {
    (BTreeMap::new(), BTreeSet::new())
}
