use std::collections::{HashMap, HashSet};

pub fn build() -> (HashMap<u32, u32>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}
