use std::cmp::Ordering;

pub struct Key(pub u64);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    // the canonical delegating impl must not be flagged as a call site
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

pub fn sorted(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
