use std::time::Instant;

pub fn t() -> Instant {
    // lint:allow(no-wall-clock)
    Instant::now()
}
