// Deliberate lossy `as` casts — every one must be flagged in the scoped
// crates (core/sim/metrics).

fn truncating(total: u64, id: u64, micro: i64) -> usize {
    let slot = total as usize;
    let small = id as u32;
    let wrapped = micro as u64;
    slot + usize::try_from(small).unwrap_or(0) + usize::try_from(wrapped).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // Inside the test mask the same casts are fine.
    fn masked(total: u64) -> usize {
        total as usize
    }
}
