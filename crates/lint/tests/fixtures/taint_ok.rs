// Clean counterpart: the recorded value derives from simulated time, so
// the same `record` sink call carries no taint.

fn sample_ns(now: SimTime) -> u64 {
    now.as_nanos()
}

fn observe(recorder: &mut LatencyRecorder, now: SimTime) {
    let v = sample_ns(now);
    recorder.record(v);
}
