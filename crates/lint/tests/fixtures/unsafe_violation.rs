pub fn peek(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
