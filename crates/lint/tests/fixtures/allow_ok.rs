use std::time::Instant;

pub fn profile() -> Instant {
    // lint:allow(no-wall-clock): measures the lint engine itself, not simulated work
    let start = Instant::now();
    let end = Instant::now(); // lint:allow(no-wall-clock): same measurement block
    let _ = end;
    start
}
