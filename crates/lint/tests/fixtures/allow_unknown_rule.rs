pub fn h() {
    // lint:allow(no-such-rule): the rule id is misspelled, so nothing is suppressed
    let x: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let _ = x;
}
