pub fn entropy() -> u64 {
    let mut _rng = rand::thread_rng();
    let x: u64 = rand::random();
    let _os = OsRng;
    let _r = SmallRng::from_entropy();
    x
}
