// Conforming integer conversions: checked, widening, or provably safe
// cast sources — none of these may be flagged.

fn conforming(values: &[u64], small: u32, t: (u64, u64)) -> u64 {
    // Checked conversion with an invariant message.
    let exact: usize = usize::try_from(values[0]).expect("value fits usize");
    // Widening `::from` is the preferred spelling.
    let wide = u64::from(small);
    // `len()`/`count()` into a 64-bit-or-wider target cannot truncate.
    let n = values.len() as u64;
    let c = values.iter().count() as u64;
    // Float-to-int via an explicit rounding method is deliberate.
    let r = (0.5_f64 * 3.0).round() as u64;
    let m = 2.0_f64.max(1.0) as u64;
    // Bit-width queries fit any integer type.
    let z = values[0].leading_zeros() as u64;
    // In-range integer literals are exact.
    let lit = 512 as u64;
    // Casts into 128-bit targets always widen.
    let t0 = t.0 as u128;
    u64::try_from(exact).expect("fits") + wide + n + c + r + m + z + lit + u64::try_from(t0).expect("fits")
}
