//! Banned identifiers in non-code positions must never trip rules:
//! Instant::now() HashMap thread_rng unsafe partial_cmp(x).unwrap()

/* block comment: SystemTime::now(), HashSet, rand::random::<u64>()
   /* nested: Instant::now() still inside the outer comment */
   unsafe { thread_rng() } */

pub const PLAIN: &str = "Instant::now() plus HashMap and unsafe";
pub const RAW: &str = r#"thread_rng() and "SystemTime::now()" in a raw string"#;
pub const RAW2: &str = r##"r#"nested raw"# with HashSet::new()"##;
pub const BYTES: &[u8] = b"rand::random() in a byte string";
pub const ESCAPED: &str = "quote \" then Instant::now()";
pub const CHARS: (char, char, char) = ('a', '\'', '\\');

pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    // the lifetime 'a above must not be parsed as an unterminated char literal
    x
}

pub fn unwrap_in_string() -> &'static str {
    "xs.unwrap() and .expect(\"\") are only text here"
}
