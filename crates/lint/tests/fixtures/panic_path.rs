// Panic-path fixture: `FrontDoor::place` is a configured hot entry point
// when this file is scanned as `crates/core/src/fleet.rs`. Its own body
// and everything it (transitively) calls contribute panicking constructs;
// `offline_report` is unreachable from the entry and contributes nothing.

impl FrontDoor {
    pub fn place(&mut self, stream: u64) -> Option<u32> {
        let slot = self.probe(stream);
        let summary = self.summaries[slot];
        Some(summary.id)
    }

    fn probe(&self, stream: u64) -> usize {
        self.index.get(&stream).unwrap()
    }
}

fn offline_report(values: &[u64]) -> u64 {
    values.first().unwrap() + values[0]
}
