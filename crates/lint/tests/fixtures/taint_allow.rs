// The sanctioned escape hatch: the sink call site (or the line above it)
// carries a `lint:allow(taint-artifact-path)` with a mandatory reason.

fn sample_ns() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}

fn observe(recorder: &mut LatencyRecorder) {
    let v = sample_ns();
    // lint:allow(taint-artifact-path): host-measurement channel, stripped by the determinism gate.
    recorder.record(v);
}
