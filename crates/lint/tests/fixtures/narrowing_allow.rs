// The escape hatch: an intentional bit truncation with a mandatory reason.

fn hash_fold(key: u64) -> u32 {
    // lint:allow(no-narrowing-as-cast): xor-fold keeps only the low 32 bits by design.
    (key ^ (key >> 32)) as u32
}
