pub fn worst(xs: &mut Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("not NaN"))
        .unwrap_or(0.0)
}

pub fn tolerant(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
