use microedge_sim::rng::DetRng;

pub fn seeded() -> u64 {
    let mut rng = DetRng::seeded(42);
    rng.next_u64()
}
