pub fn production(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("");
    let c = x.expect("x is Some: checked by the caller");
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_does_not_count() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert_eq!(v.unwrap(), v.expect(""));
    }
}
