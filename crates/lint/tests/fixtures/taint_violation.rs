// Nondeterminism flowing into an artifact sink through a call chain:
// `observe` never touches the clock itself, but it calls `sample_ns`
// (wall clock) and then feeds the result to `record` — a taint finding
// at the sink call site, with the witness chain in the message.

fn sample_ns() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn observe(recorder: &mut LatencyRecorder) {
    let v = sample_ns();
    recorder.record(v);
}
