use std::time::{Instant, SystemTime};

pub fn timestamps() -> (Instant, SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}
