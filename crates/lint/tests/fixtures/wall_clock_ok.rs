use microedge_sim::event::EventQueue;

pub fn sim_time(q: &EventQueue<u32>) -> u64 {
    // virtual time from the queue, never the host clock
    q.now().as_nanos()
}
