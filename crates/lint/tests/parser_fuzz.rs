//! Fuzz the syntax-aware layer: random byte mutations of the fixture
//! corpus (plus fully random byte soup) must never panic the tokenizer,
//! the item-tree parser, or the full per-file analysis, and every span
//! the parser reports must stay inside the file it came from.
//!
//! The fixtures are the seed corpus because they already concentrate the
//! constructs the parser cares about — `fn` items, `impl` blocks,
//! `#[cfg(test)]` masks, strings, lifetimes, raw identifiers — so a few
//! flipped bytes land in interesting places far more often than uniform
//! noise does.

use std::fs;
use std::path::Path;

use proptest::prelude::*;

use microedge_lint::rules;
use microedge_lint::tokenizer::{tokenize, TokKind, Token};
use microedge_lint::{config, parser};

/// The fixture corpus, loaded once.
fn corpus() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| fs::read_to_string(&p).expect("fixture readable"))
        .collect()
}

/// Apply `(offset, byte)` mutations to `src` and re-validate as UTF-8
/// (lossily), mirroring how a corrupted file would reach the scanner.
fn mutate(src: &str, edits: &[(usize, u8)]) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for &(offset, byte) in edits {
        if bytes.is_empty() {
            break;
        }
        let at = offset % bytes.len();
        bytes[at] = byte;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Every span the analysis reports must sit inside the file: lines are
/// 1-based and never exceed the line count; columns are 1-based.
fn assert_spans_in_bounds(src: &str) {
    let line_count = u32::try_from(src.lines().count().max(1)).expect("line count fits u32");
    let toks = tokenize(src);
    let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let tree = parser::parse(&sig);
    assert!(tree.test_mask.len() >= sig.len());
    for f in &tree.fns {
        assert!(
            (1..=line_count).contains(&f.span.line),
            "fn `{}` starts out of bounds: line {} of {line_count}",
            f.name,
            f.span.line
        );
        assert!(
            f.span.end_line >= f.span.line && f.span.end_line <= line_count,
            "fn `{}` ends out of bounds: {}..{} of {line_count}",
            f.name,
            f.span.line,
            f.span.end_line
        );
        assert!(f.span.col >= 1);
    }
    // The full analysis (all rules + fact extraction) must also hold.
    let analysis = rules::analyze_file("crates/core/src/fuzzed.rs", src);
    for d in &analysis.findings.diags {
        assert!(
            (1..=line_count).contains(&d.line) && d.col >= 1,
            "diagnostic out of bounds: {d}"
        );
    }
    for f in &analysis.fns {
        assert!((1..=line_count).contains(&f.line), "FnDef out of bounds");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mutated_fixtures_never_panic_and_spans_stay_in_bounds(
        pick in 0usize..64,
        edits in prop::collection::vec((0usize..4096, 0u8..=255), 0..32),
    ) {
        let corpus = corpus();
        let src = &corpus[pick % corpus.len()];
        let mutated = mutate(src, &edits);
        assert_spans_in_bounds(&mutated);
    }

    #[test]
    fn random_byte_soup_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let soup = String::from_utf8_lossy(&bytes).into_owned();
        assert_spans_in_bounds(&soup);
    }
}

#[test]
fn pristine_corpus_parses_within_bounds() {
    for src in corpus() {
        assert_spans_in_bounds(&src);
    }
}

#[test]
fn fixture_corpus_is_nonempty() {
    // The fuzz seeds come from FIXTURE_DIR; if the corpus moves, the fuzz
    // silently degrades to byte soup only. Pin it.
    assert!(
        corpus().len() >= 10,
        "expected the {} corpus to stay populated",
        config::FIXTURE_DIR
    );
}
