//! The rule passes: token-sequence matchers over one file's token stream,
//! plus the `lint:allow` escape-hatch machinery and the `#[cfg(test)]`
//! mask the unwrap-ratchet uses to see only production code.

use std::fmt;

use crate::config::{
    self, rule_enabled, BAD_ALLOW, NO_AMBIENT_RNG, NO_PARTIAL_FLOAT_CMP, NO_UNORDERED_COLLECTIONS,
    NO_UNSAFE, NO_WALL_CLOCK, UNWRAP_RATCHET,
};
use crate::tokenizer::{tokenize, TokKind, Token};

/// One machine-readable finding. Renders as `rule-id: file:line:col message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (also the `lint:allow` key).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation of the violated invariant.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{} {}",
            self.rule, self.path, self.line, self.col, self.message
        )
    }
}

/// Everything a single-file scan produces.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Rule violations (post-suppression) plus any `bad-allow` diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Bare `unwrap()` / empty-message `expect()` count in non-test code,
    /// fed into the per-crate ratchet. Zero when the ratchet is disabled
    /// for this path.
    pub unwrap_count: usize,
}

/// A parsed, well-formed `lint:allow(rule): reason` directive.
struct Allow {
    rule: String,
    line: u32,
}

/// Scan one file. `rel` must be the workspace-relative path (it drives
/// per-crate rule scoping); `src` is the file contents.
pub fn scan_file(rel: &str, src: &str) -> FileFindings {
    let toks = tokenize(src);
    let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let allows = parse_allows(rel, &toks, &mut diags);

    let mut raw: Vec<Diagnostic> = Vec::new();
    if rule_enabled(NO_WALL_CLOCK, rel) {
        rule_wall_clock(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_AMBIENT_RNG, rel) {
        rule_ambient_rng(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_UNORDERED_COLLECTIONS, rel) {
        rule_unordered_collections(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_PARTIAL_FLOAT_CMP, rel) {
        rule_partial_float_cmp(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_UNSAFE, rel) {
        rule_no_unsafe(rel, &sig, &mut raw);
    }

    // A valid allow on the finding's own line or the line above suppresses it.
    for d in raw {
        let covered = allows
            .iter()
            .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line));
        if !covered {
            diags.push(d);
        }
    }

    let unwrap_count = if rule_enabled(UNWRAP_RATCHET, rel) {
        count_unwraps(&sig)
    } else {
        0
    };

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileFindings {
        diags,
        unwrap_count,
    }
}

/// Extract directives of the form `// lint:allow(<rule>): <reason>` from
/// comment tokens. The marker must open the comment (prose merely
/// *mentioning* the syntax is not a directive). Malformed directives
/// (missing reason, unknown rule) suppress nothing and are themselves
/// reported as `bad-allow`.
fn parse_allows(rel: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let content = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("lint:allow") else {
            continue;
        };
        let bad = |msg: String| Diagnostic {
            rule: BAD_ALLOW,
            path: rel.to_string(),
            line: t.line,
            col: t.col,
            message: msg,
        };
        let Some(rest) = rest.strip_prefix('(') else {
            diags.push(bad(
                "malformed lint:allow; expected `lint:allow(<rule-id>): <reason>`".into(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(bad("malformed lint:allow; missing `)` after rule-id".into()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !config::ALLOWABLE_RULES.contains(&rule.as_str()) {
            diags.push(bad(format!("lint:allow names unknown rule-id `{rule}`")));
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim_end_matches("*/").trim())
            .unwrap_or("");
        if reason.is_empty() {
            diags.push(bad(format!(
                "lint:allow({rule}) is missing its mandatory reason; write `lint:allow({rule}): <why this site is safe>`"
            )));
            continue;
        }
        allows.push(Allow { rule, line: t.line });
    }
    allows
}

fn diag(rule: &'static str, rel: &str, t: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: rel.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// `X :: now` for X in {Instant, SystemTime}.
fn rule_wall_clock(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        let name = &sig[i].text;
        if sig[i].kind == TokKind::Ident
            && (name == "Instant" || name == "SystemTime")
            && matches(sig, i + 1, &[":", ":", "now"])
        {
            out.push(diag(
                NO_WALL_CLOCK,
                rel,
                sig[i],
                format!(
                    "`{name}::now()` reads the host wall clock; simulation time must come from \
                     the EventQueue (only bench measurement modules may time the simulator itself)"
                ),
            ));
        }
    }
}

/// `thread_rng`, `from_entropy`, `OsRng`, and `rand :: random`.
fn rule_ambient_rng(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        let t = sig[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" => Some(t.text.clone()),
            "rand" if matches(sig, i + 1, &[":", ":", "random"]) => Some("rand::random".into()),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(diag(
                NO_AMBIENT_RNG,
                rel,
                t,
                format!(
                    "`{what}` draws ambient OS entropy; every replay must be seed-reproducible \
                     — use a seeded DetRng threaded from the experiment config"
                ),
            ));
        }
    }
}

/// `HashMap` / `HashSet` in artifact-producing crates.
fn rule_unordered_collections(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for t in sig {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(diag(
                NO_UNORDERED_COLLECTIONS,
                rel,
                t,
                format!(
                    "`{}` iteration order is nondeterministic and would silently break \
                     byte-identical JSON artifacts; use BTreeMap/BTreeSet or an indexed Vec",
                    t.text
                ),
            ));
        }
    }
}

/// `partial_cmp(..).unwrap()/expect(..)` chains, and any `partial_cmp`
/// inside a `sort_by`/`max_by`/`min_by` comparator — the exact Histogram
/// NaN-panic class fixed in PR 4. `fn partial_cmp` definitions are exempt.
fn rule_partial_float_cmp(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    let mut flagged: Vec<(u32, u32)> = Vec::new();
    for i in 0..sig.len() {
        if !sig[i].is_ident("partial_cmp") {
            continue;
        }
        if i > 0 && sig[i - 1].is_ident("fn") {
            continue; // a PartialOrd impl, not a call site
        }
        if !sig.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(close) = matching_paren(sig, i + 1) {
            let chained_panic = sig.get(close + 1).is_some_and(|t| t.is_punct('.'))
                && sig
                    .get(close + 2)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
            if chained_panic {
                flagged.push((sig[i].line, sig[i].col));
                out.push(diag(
                    NO_PARTIAL_FLOAT_CMP,
                    rel,
                    sig[i],
                    "`partial_cmp(..)` chained into unwrap/expect panics on NaN (the PR 4 \
                     Histogram bug); use `total_cmp` for floats"
                        .to_string(),
                ));
            }
        }
    }
    // Comparator closures: sort_by(|a, b| a.partial_cmp(b) ...) in any form,
    // including NaN-"tolerant" `unwrap_or(Equal)`, which breaks total order.
    const COMPARATORS: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];
    for i in 0..sig.len() {
        if !(sig[i].kind == TokKind::Ident && COMPARATORS.contains(&sig[i].text.as_str())) {
            continue;
        }
        if !sig.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(close) = matching_paren(sig, i + 1) {
            for t in &sig[i + 2..close] {
                if t.is_ident("partial_cmp") && !flagged.contains(&(t.line, t.col)) {
                    out.push(diag(
                        NO_PARTIAL_FLOAT_CMP,
                        rel,
                        t,
                        format!(
                            "`partial_cmp` inside a `{}` comparator is not a total order \
                             under NaN; use `total_cmp`",
                            sig[i].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Any `unsafe` token. The workspace is `#![forbid(unsafe_code)]` end to
/// end; this is defense-in-depth against the attribute being dropped.
fn rule_no_unsafe(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for t in sig {
        if t.is_ident("unsafe") {
            out.push(diag(
                NO_UNSAFE,
                rel,
                t,
                "`unsafe` is forbidden workspace-wide (crate roots carry \
                 #![forbid(unsafe_code)]; this lint catches the attribute being removed)"
                    .to_string(),
            ));
        }
    }
}

/// Count `.unwrap()` and `.expect("")`/`.expect()` outside `#[cfg(test)]`
/// items. `.expect("message")` with a non-empty message is the sanctioned
/// form and does not count.
fn count_unwraps(sig: &[&Token]) -> usize {
    let mask = cfg_test_mask(sig);
    let mut n = 0usize;
    for i in 0..sig.len() {
        if mask[i] || !sig[i].is_punct('.') {
            continue;
        }
        let Some(name) = sig.get(i + 1) else { continue };
        if name.is_ident("unwrap") && matches(sig, i + 2, &["(", ")"]) {
            n += 1;
        } else if name.is_ident("expect") && sig.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            let no_arg = sig.get(i + 3).is_some_and(|t| t.is_punct(')'));
            let empty_msg = sig.get(i + 3).is_some_and(|t| t.is_empty_str())
                && sig.get(i + 4).is_some_and(|t| t.is_punct(')'));
            if no_arg || empty_msg {
                n += 1;
            }
        }
    }
    n
}

/// Mark every token inside a `#[cfg(test)]`-gated item (attribute through
/// the end of its `{...}` body or trailing `;`).
fn cfg_test_mask(sig: &[&Token]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0usize;
    while i < sig.len() {
        if !(sig[i].is_punct('#') && matches(sig, i + 1, &["[", "cfg", "(", "test", ")", "]"])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes between cfg(test) and the item.
        while j < sig.len()
            && sig[j].is_punct('#')
            && sig.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = skip_balanced(sig, j + 1, '[', ']');
        }
        // Scan the item header for its body `{` (or a bodiless `;`).
        let mut depth = 0i32;
        let mut end = sig.len().saturating_sub(1);
        while j < sig.len() {
            if sig[j].is_punct('(') {
                depth += 1;
            } else if sig[j].is_punct(')') {
                depth -= 1;
            } else if depth == 0 && sig[j].is_punct(';') {
                end = j;
                break;
            } else if depth == 0 && sig[j].is_punct('{') {
                end = skip_balanced(sig, j, '{', '}') - 1;
                break;
            }
            j += 1;
        }
        for m in &mut mask[start..=end.min(sig.len() - 1)] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// True if the idents/puncts at `sig[from..]` match `pat` (each pattern
/// element is a 1-byte punct or an identifier).
fn matches(sig: &[&Token], from: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        sig.get(from + k).is_some_and(|t| {
            if p.len() == 1 && !p.as_bytes()[0].is_ascii_alphanumeric() {
                t.is_punct(p.as_bytes()[0] as char)
            } else {
                t.is_ident(p)
            }
        })
    })
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(sig: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index just past the closer matching the opener at `open`.
fn skip_balanced(sig: &[&Token], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < sig.len() {
        if sig[k].is_punct(o) {
            depth += 1;
        } else if sig[k].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    sig.len()
}
