//! The rule passes: token-sequence matchers over one file's token stream,
//! plus the `lint:allow` escape-hatch machinery. Test code is masked
//! structurally via the item parser ([`crate::parser`]), which also feeds
//! the per-function facts the crate-level flow analyses consume.

use std::fmt;

use crate::callgraph::{self, FnDef};
use crate::config::{
    self, rule_enabled, BAD_ALLOW, NO_AMBIENT_RNG, NO_NARROWING_AS_CAST, NO_PARTIAL_FLOAT_CMP,
    NO_UNORDERED_COLLECTIONS, NO_UNSAFE, NO_WALL_CLOCK, UNWRAP_RATCHET,
};
use crate::parser;
use crate::tokenizer::{tokenize, TokKind, Token};

/// One machine-readable finding. Renders as `rule-id: file:line:col message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (also the `lint:allow` key).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation of the violated invariant.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{} {}",
            self.rule, self.path, self.line, self.col, self.message
        )
    }
}

/// Everything a single-file scan produces.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Rule violations (post-suppression) plus any `bad-allow` diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Bare `unwrap()` / empty-message `expect()` count in non-test code,
    /// fed into the per-crate ratchet. Zero when the ratchet is disabled
    /// for this path.
    pub unwrap_count: usize,
}

/// A parsed, well-formed `lint:allow(rule): reason` directive. The engine
/// also consults these to suppress crate-level (taint) findings, which is
/// why they are part of [`FileAnalysis`].
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule being exempted.
    pub rule: String,
    /// 1-based line the directive sits on (covers itself and the next line).
    pub line: u32,
}

impl AllowDirective {
    /// True when this directive suppresses a finding of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (self.line == line || self.line + 1 == line)
    }
}

/// Everything a single-file analysis produces: the token-sequence findings
/// plus the per-function facts and allow directives the engine's
/// crate-level flow phases (taint, panic-path) consume.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Token-sequence findings and the unwrap-ratchet count.
    pub findings: FileFindings,
    /// Per-function call/source/panic facts (empty for non-Rust inputs).
    pub fns: Vec<FnDef>,
    /// Well-formed `lint:allow` directives in the file.
    pub allows: Vec<AllowDirective>,
}

/// Scan one file for the token-sequence rules only. Compatibility wrapper
/// over [`analyze_file`].
pub fn scan_file(rel: &str, src: &str) -> FileFindings {
    analyze_file(rel, src).findings
}

/// Analyze one file. `rel` must be the workspace-relative path (it drives
/// per-crate rule scoping); `src` is the file contents.
pub fn analyze_file(rel: &str, src: &str) -> FileAnalysis {
    let toks = tokenize(src);
    let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let tree = parser::parse(&sig);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let allows = parse_allows(rel, &toks, &mut diags);

    let mut raw: Vec<Diagnostic> = Vec::new();
    if rule_enabled(NO_WALL_CLOCK, rel) {
        rule_wall_clock(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_AMBIENT_RNG, rel) {
        rule_ambient_rng(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_UNORDERED_COLLECTIONS, rel) {
        rule_unordered_collections(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_PARTIAL_FLOAT_CMP, rel) {
        rule_partial_float_cmp(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_UNSAFE, rel) {
        rule_no_unsafe(rel, &sig, &mut raw);
    }
    if rule_enabled(NO_NARROWING_AS_CAST, rel) {
        rule_narrowing_cast(rel, &sig, &tree.test_mask, &mut raw);
    }

    // A valid allow on the finding's own line or the line above suppresses it.
    for d in raw {
        if !allows.iter().any(|a| a.covers(d.rule, d.line)) {
            diags.push(d);
        }
    }

    let unwrap_count = if rule_enabled(UNWRAP_RATCHET, rel) {
        count_unwraps(&sig, &tree.test_mask)
    } else {
        0
    };

    let file_is_test = rel.starts_with("tests/") || rel.contains("/tests/");
    let fns = callgraph::extract_fns(rel, &sig, &tree, file_is_test);

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileAnalysis {
        findings: FileFindings {
            diags,
            unwrap_count,
        },
        fns,
        allows,
    }
}

/// Extract directives of the form `// lint:allow(<rule>): <reason>` from
/// comment tokens. The marker must open the comment (prose merely
/// *mentioning* the syntax is not a directive). Malformed directives
/// (missing reason, unknown rule) suppress nothing and are themselves
/// reported as `bad-allow`.
fn parse_allows(rel: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) -> Vec<AllowDirective> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let content = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("lint:allow") else {
            continue;
        };
        let bad = |msg: String| Diagnostic {
            rule: BAD_ALLOW,
            path: rel.to_string(),
            line: t.line,
            col: t.col,
            message: msg,
        };
        let Some(rest) = rest.strip_prefix('(') else {
            diags.push(bad(
                "malformed lint:allow; expected `lint:allow(<rule-id>): <reason>`".into(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(bad("malformed lint:allow; missing `)` after rule-id".into()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !config::ALLOWABLE_RULES.contains(&rule.as_str()) {
            diags.push(bad(format!("lint:allow names unknown rule-id `{rule}`")));
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim_end_matches("*/").trim())
            .unwrap_or("");
        if reason.is_empty() {
            diags.push(bad(format!(
                "lint:allow({rule}) is missing its mandatory reason; write `lint:allow({rule}): <why this site is safe>`"
            )));
            continue;
        }
        allows.push(AllowDirective { rule, line: t.line });
    }
    allows
}

fn diag(rule: &'static str, rel: &str, t: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: rel.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// `X :: now` for X in {Instant, SystemTime}.
fn rule_wall_clock(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        let name = &sig[i].text;
        if sig[i].kind == TokKind::Ident
            && (name == "Instant" || name == "SystemTime")
            && matches(sig, i + 1, &[":", ":", "now"])
        {
            out.push(diag(
                NO_WALL_CLOCK,
                rel,
                sig[i],
                format!(
                    "`{name}::now()` reads the host wall clock; simulation time must come from \
                     the EventQueue (only bench measurement modules may time the simulator itself)"
                ),
            ));
        }
    }
}

/// `thread_rng`, `from_entropy`, `OsRng`, and `rand :: random`.
fn rule_ambient_rng(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        let t = sig[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" => Some(t.text.clone()),
            "rand" if matches(sig, i + 1, &[":", ":", "random"]) => Some("rand::random".into()),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(diag(
                NO_AMBIENT_RNG,
                rel,
                t,
                format!(
                    "`{what}` draws ambient OS entropy; every replay must be seed-reproducible \
                     — use a seeded DetRng threaded from the experiment config"
                ),
            ));
        }
    }
}

/// `HashMap` / `HashSet` in artifact-producing crates.
fn rule_unordered_collections(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for t in sig {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(diag(
                NO_UNORDERED_COLLECTIONS,
                rel,
                t,
                format!(
                    "`{}` iteration order is nondeterministic and would silently break \
                     byte-identical JSON artifacts; use BTreeMap/BTreeSet or an indexed Vec",
                    t.text
                ),
            ));
        }
    }
}

/// `partial_cmp(..).unwrap()/expect(..)` chains, and any `partial_cmp`
/// inside a `sort_by`/`max_by`/`min_by` comparator — the exact Histogram
/// NaN-panic class fixed in PR 4. `fn partial_cmp` definitions are exempt.
fn rule_partial_float_cmp(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    let mut flagged: Vec<(u32, u32)> = Vec::new();
    for i in 0..sig.len() {
        if !sig[i].is_ident("partial_cmp") {
            continue;
        }
        if i > 0 && sig[i - 1].is_ident("fn") {
            continue; // a PartialOrd impl, not a call site
        }
        if !sig.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(close) = matching_paren(sig, i + 1) {
            let chained_panic = sig.get(close + 1).is_some_and(|t| t.is_punct('.'))
                && sig
                    .get(close + 2)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
            if chained_panic {
                flagged.push((sig[i].line, sig[i].col));
                out.push(diag(
                    NO_PARTIAL_FLOAT_CMP,
                    rel,
                    sig[i],
                    "`partial_cmp(..)` chained into unwrap/expect panics on NaN (the PR 4 \
                     Histogram bug); use `total_cmp` for floats"
                        .to_string(),
                ));
            }
        }
    }
    // Comparator closures: sort_by(|a, b| a.partial_cmp(b) ...) in any form,
    // including NaN-"tolerant" `unwrap_or(Equal)`, which breaks total order.
    const COMPARATORS: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];
    for i in 0..sig.len() {
        if !(sig[i].kind == TokKind::Ident && COMPARATORS.contains(&sig[i].text.as_str())) {
            continue;
        }
        if !sig.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(close) = matching_paren(sig, i + 1) {
            for t in &sig[i + 2..close] {
                if t.is_ident("partial_cmp") && !flagged.contains(&(t.line, t.col)) {
                    out.push(diag(
                        NO_PARTIAL_FLOAT_CMP,
                        rel,
                        t,
                        format!(
                            "`partial_cmp` inside a `{}` comparator is not a total order \
                             under NaN; use `total_cmp`",
                            sig[i].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Any `unsafe` token. The workspace is `#![forbid(unsafe_code)]` end to
/// end; this is defense-in-depth against the attribute being dropped.
fn rule_no_unsafe(rel: &str, sig: &[&Token], out: &mut Vec<Diagnostic>) {
    for t in sig {
        if t.is_ident("unsafe") {
            out.push(diag(
                NO_UNSAFE,
                rel,
                t,
                "`unsafe` is forbidden workspace-wide (crate roots carry \
                 #![forbid(unsafe_code)]; this lint catches the attribute being removed)"
                    .to_string(),
            ));
        }
    }
}

/// Integer primitive type names a cast can target.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods whose return type makes the following cast provably non-lossy
/// for the listed targets (on the 64-bit tiers this workspace supports).
/// `len`/`capacity`/`count` return `usize`; the bit-counting family
/// returns `u32`.
const USIZE_RESULT_METHODS: &[&str] = &["len", "capacity", "count"];
const U32_RESULT_METHODS: &[&str] = &[
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "count_zeros",
];

/// Float→int rounding methods: `x.round() as u64` is the saturating
/// float-to-int cast, a different class from integer truncation (and the
/// only sanctioned way to leave float space in this workspace).
const FLOAT_TO_INT_METHODS: &[&str] = &["round", "ceil", "floor", "trunc"];

/// `no-narrowing-as-cast`: flag integer `as` casts that may silently
/// truncate. Without type inference the rule is deliberately conservative:
/// a cast is exempt only when the *source* is provably safe from tokens
/// alone — a fitting integer literal, `bool`, a `usize`/`u32`-returning
/// safe-listed method cast to a wide-enough target, a float rounding chain
/// (saturating cast class), or a `u128`/`i128` target. Everything else
/// must become `try_into().expect("<invariant>")`, a widening `from`, or
/// carry a reasoned `lint:allow(no-narrowing-as-cast)`.
fn rule_narrowing_cast(rel: &str, sig: &[&Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        if mask.get(i).copied().unwrap_or(false) || !sig[i].is_ident("as") {
            continue;
        }
        let Some(target) = sig.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue; // `use x as y`, `as f64`, `as &str`, `as dyn ...`
        }
        // `expr as u32 as u64` — classify the *first* cast; the second one
        // re-examines with `u32` knowledge below.
        if target.text == "u128" || target.text == "i128" {
            continue; // widening from every integer type we use
        }
        if cast_source_is_safe(sig, i, &target.text) {
            continue;
        }
        out.push(diag(
            NO_NARROWING_AS_CAST,
            rel,
            sig[i],
            format!(
                "integer `as {}` cast may silently truncate; use \
                 `try_into().expect(\"<invariant>\")`, a widening `::from`, or \
                 `lint:allow(no-narrowing-as-cast): <reason>` for intentional bit truncation",
                target.text
            ),
        ));
    }
}

/// Token-level safety proof for the expression ending just before the `as`
/// at `as_idx`. See [`rule_narrowing_cast`] for the exemption classes.
fn cast_source_is_safe(sig: &[&Token], as_idx: usize, target: &str) -> bool {
    if as_idx == 0 {
        return false;
    }
    let last = sig[as_idx - 1];
    // `( ... ) as T` or `x.method(..) as T`.
    if last.is_punct(')') {
        let Some(open) = matching_paren_backward(sig, as_idx - 1) else {
            return false;
        };
        // Method/fn name directly before the `(`.
        if open > 0 && sig[open - 1].kind == TokKind::Ident {
            let m = sig[open - 1].text.as_str();
            if FLOAT_TO_INT_METHODS.contains(&m) {
                return true;
            }
            // A float-literal argument (`.max(1.0)`, `.min(0.0)`) proves the
            // receiver chain is float-typed: the cast saturates, not truncates.
            if sig[open..as_idx].iter().any(|t| is_float_marker(t)) {
                return true;
            }
            if USIZE_RESULT_METHODS.contains(&m)
                && open >= 2
                && sig[open - 2].is_punct('.')
                && matches!(target, "u64" | "i64" | "usize")
            {
                // usize -> u64 is a widening on the 64-bit hosts this
                // workspace targets (checked by a const assert in core).
                return true;
            }
            if U32_RESULT_METHODS.contains(&m)
                && open >= 2
                && sig[open - 2].is_punct('.')
                && matches!(target, "u32" | "u64" | "i64" | "usize")
            {
                return true;
            }
            return false;
        }
        // Parenthesized group: a float expression cast via `as` saturates
        // rather than truncates — different class, handled by float rules.
        return sig[open..as_idx].iter().any(|t| is_float_marker(t));
    }
    if last.kind == TokKind::Num {
        // `.0`/`.1` are tuple-field accesses of unknown type, not literals.
        if as_idx >= 2 && sig[as_idx - 2].is_punct('.') {
            return false;
        }
        return literal_fits(&last.text, target);
    }
    if last.kind == TokKind::Ident && (last.text == "true" || last.text == "false") {
        return true;
    }
    false
}

/// `true` when the token can only appear in a float-typed expression.
fn is_float_marker(t: &Token) -> bool {
    (t.kind == TokKind::Num && callgraph::is_float_literal(&t.text))
        || (t.kind == TokKind::Ident
            && (t.text == "f64"
                || t.text == "f32"
                || FLOAT_TO_INT_METHODS.contains(&t.text.as_str())))
}

/// Index of the `(` matching the `)` at `close`.
fn matching_paren_backward(sig: &[&Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        if sig[k].is_punct(')') {
            depth += 1;
        } else if sig[k].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// True when integer-literal text `lit` is representable in `target`.
fn literal_fits(lit: &str, target: &str) -> bool {
    let lower = lit.to_ascii_lowercase().replace('_', "");
    if callgraph::is_float_literal(lit) {
        return true; // float literal cast saturates, not truncates
    }
    // Strip a type suffix (`42u64`, `7i32`, `0xffu8`).
    let body = INT_TYPES
        .iter()
        .find_map(|s| lower.strip_suffix(s))
        .unwrap_or(&lower);
    let value = if let Some(hex) = body.strip_prefix("0x") {
        u128::from_str_radix(hex, 16)
    } else if let Some(oct) = body.strip_prefix("0o") {
        u128::from_str_radix(oct, 8)
    } else if let Some(bin) = body.strip_prefix("0b") {
        u128::from_str_radix(bin, 2)
    } else {
        body.parse::<u128>()
    };
    let Ok(value) = value else { return false };
    let max: u128 = match target {
        "u8" => u8::MAX as u128,
        "u16" => u16::MAX as u128,
        "u32" => u32::MAX as u128,
        "u64" | "usize" => u64::MAX as u128,
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        "i64" | "isize" => i64::MAX as u128,
        _ => u128::MAX,
    };
    value <= max
}

/// Count `.unwrap()` and `.expect("")`/`.expect()` outside `#[cfg(test)]`
/// items. `.expect("message")` with a non-empty message is the sanctioned
/// form and does not count. `mask` is the parser's structural test mask.
fn count_unwraps(sig: &[&Token], mask: &[bool]) -> usize {
    let mut n = 0usize;
    for i in 0..sig.len() {
        if mask.get(i).copied().unwrap_or(false) || !sig[i].is_punct('.') {
            continue;
        }
        let Some(name) = sig.get(i + 1) else { continue };
        if name.is_ident("unwrap") && matches(sig, i + 2, &["(", ")"]) {
            n += 1;
        } else if name.is_ident("expect") && sig.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            let no_arg = sig.get(i + 3).is_some_and(|t| t.is_punct(')'));
            let empty_msg = sig.get(i + 3).is_some_and(|t| t.is_empty_str())
                && sig.get(i + 4).is_some_and(|t| t.is_punct(')'));
            if no_arg || empty_msg {
                n += 1;
            }
        }
    }
    n
}

/// Report-only entry points for the engine's tests-tree sweep: the same
/// narrowing scan and unwrap counter, with a caller-supplied mask.
pub fn narrowing_casts_for_report(
    rel: &str,
    sig: &[&Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    rule_narrowing_cast(rel, sig, mask, out);
}

/// See [`narrowing_casts_for_report`].
pub fn unwraps_for_report(sig: &[&Token], mask: &[bool]) -> usize {
    count_unwraps(sig, mask)
}

/// True if the idents/puncts at `sig[from..]` match `pat` (each pattern
/// element is a 1-byte punct or an identifier).
fn matches(sig: &[&Token], from: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        sig.get(from + k).is_some_and(|t| {
            if p.len() == 1 && !p.as_bytes()[0].is_ascii_alphanumeric() {
                t.is_punct(p.as_bytes()[0] as char)
            } else {
                t.is_ident(p)
            }
        })
    })
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(sig: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}
