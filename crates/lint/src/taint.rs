//! The two flow analyses over the crate call graph: `taint-artifact-path`
//! and the `panic-path-ratchet` debt computation.
//!
//! Both work on the same [`CrateGraph`]: taint propagates *up* the graph
//! (a caller of a nondeterministic function observes its result), panic
//! reachability propagates *down* from the hot entry points (a panic in a
//! callee can fire during `World::step`).

use crate::callgraph::CrateGraph;
use crate::config;
use crate::rules::Diagnostic;

/// Run `taint-artifact-path` over one crate's graph: report every call to
/// a sink name made from a nondeterminism-tainted function. The diagnostic
/// anchors at the call site (that is where the `lint:allow` belongs) and
/// carries the witness chain back to the source.
pub fn taint_artifact_path(graph: &CrateGraph) -> Vec<Diagnostic> {
    let witness = graph.taint();
    let mut out = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        let Some(w) = &witness[i] else { continue };
        for call in &f.calls {
            if !config::is_taint_sink(&call.name) {
                continue;
            }
            let src_fn = &graph.fns[w.source_fn];
            let chain = graph.taint_chain(&witness, i);
            out.push(Diagnostic {
                rule: config::TAINT_ARTIFACT_PATH,
                path: f.file.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "nondeterminism reaches sink `{}`: {} at {}:{} (via {}) — \
                     route the value through simulated time/seeded RNG or \
                     `lint:allow(taint-artifact-path): <reason>`",
                    call.name, w.source.what, src_fn.file, w.source.line, chain
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    out
}

/// Per-crate panic-path debt: the number of panicking constructs inside
/// functions reachable from the configured hot entry points
/// ([`config::PANIC_ENTRY_POINTS`]) that live in this crate's graph.
/// Returns the total plus a per-function breakdown (qualified name, file,
/// line, count) for `--explain`-style reporting, sorted heaviest first.
pub fn panic_path_debt(graph: &CrateGraph) -> (usize, Vec<(String, String, u32, usize)>) {
    let mut entries = Vec::new();
    for (file_suffix, qual) in config::PANIC_ENTRY_POINTS {
        entries.extend(graph.resolve_entry(file_suffix, qual));
    }
    if entries.is_empty() {
        return (0, Vec::new());
    }
    let seen = graph.reachable(&entries);
    let mut total = 0usize;
    let mut breakdown = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if seen[i] && f.panic_count > 0 {
            total += f.panic_count;
            let name = f.qual.clone().unwrap_or_else(|| f.name.clone());
            breakdown.push((name, f.file.clone(), f.line, f.panic_count));
        }
    }
    breakdown.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
    (total, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{extract_fns, CrateGraph};
    use crate::parser;
    use crate::tokenizer::{tokenize, TokKind, Token};

    fn graph_of(src: &str, rel: &str) -> CrateGraph {
        let toks = tokenize(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = parser::parse(&sig);
        let fns = extract_fns(rel, &sig, &tree, false)
            .into_iter()
            .filter(|f| !f.is_test)
            .collect();
        CrateGraph::build(fns)
    }

    #[test]
    fn tainted_sink_call_is_reported_with_chain() {
        let g = graph_of(
            r#"
            fn jitter() -> u64 { Instant::now(); 7 }
            fn build_sample() -> u64 { jitter() }
            fn publish(sketch: &mut S) { sketch.record(build_sample()); }
            "#,
            "crates/core/src/x.rs",
        );
        let diags = taint_artifact_path(&g);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.rule, "taint-artifact-path");
        assert!(d.message.contains("`record`"));
        assert!(d.message.contains("publish -> build_sample -> jitter"));
    }

    #[test]
    fn clean_sink_call_is_silent() {
        let g = graph_of(
            r#"
            fn sample(now: SimTime) -> u64 { now.as_ns() }
            fn publish(sketch: &mut S, now: SimTime) { sketch.record(sample(now)); }
            "#,
            "crates/core/src/x.rs",
        );
        assert!(taint_artifact_path(&g).is_empty());
    }

    #[test]
    fn panic_debt_counts_only_reachable_fns() {
        let g = graph_of(
            r#"
            impl FrontDoor {
                fn place(&mut self) { self.pick(); }
                fn pick(&mut self) { self.heap[0].unwrap(); }
            }
            fn cold_path() { table[9]; other.unwrap(); panic!("x"); }
            "#,
            "crates/core/src/fleet.rs",
        );
        let (total, breakdown) = panic_path_debt(&g);
        // pick: heap[0] indexing + unwrap = 2; cold_path unreachable.
        assert_eq!(total, 2);
        assert_eq!(breakdown.len(), 1);
        assert_eq!(breakdown[0].0, "FrontDoor::pick");
    }
}
