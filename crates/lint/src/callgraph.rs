//! Per-function fact extraction and the approximate intra-crate call graph.
//!
//! For every parsed function ([`crate::parser`]) this module records what
//! the flow analyses need: the calls it makes (with a best-effort
//! `Type::method` qualification), the nondeterminism *sources* it touches
//! (wall clock, ambient RNG, unordered-collection iteration, env reads,
//! pointer-to-int casts, float folds over unordered iterators), and how
//! many *panicking constructs* it contains (indexing/slicing, the
//! `unwrap` family, explicit panic macros).
//!
//! Edges are resolved **by name** within one crate: a call to `foo` points
//! at every function named `foo` in the crate, `Type::foo` prefers the
//! qualified match. That over-approximates (a `merge` call may resolve to
//! several `merge` methods) — deliberately so: for taint and panic-path
//! analyses a spurious edge costs a reviewable false positive, a missing
//! edge silently hides a real flow.

use std::collections::{BTreeMap, VecDeque};

use crate::parser::{ItemTree, EXPR_KEYWORDS};
use crate::tokenizer::{TokKind, Token};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`place`, `to_json`, ...).
    pub name: String,
    /// `Type::name` when the call is written `Type::name(..)`.
    pub qual: Option<String>,
    /// True for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-based position of the callee token.
    pub line: u32,
    /// See `line`.
    pub col: u32,
}

/// A nondeterminism source occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Stable source-class key (`wall-clock`, `ambient-rng`,
    /// `unordered-iter`, `env-read`, `ptr-to-int`, `float-fold-unordered`).
    pub kind: &'static str,
    /// Human description of the exact construct (`` `Instant::now()` ``).
    pub what: String,
    /// 1-based position of the source token.
    pub line: u32,
    /// See `line`.
    pub col: u32,
}

/// Everything the crate-level analyses need to know about one function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative file path.
    pub file: String,
    /// Bare name.
    pub name: String,
    /// `Type::name` for methods.
    pub qual: Option<String>,
    /// 1-based position of the function item.
    pub line: u32,
    /// See `line`.
    pub col: u32,
    /// Inside a `#[cfg(test)]` item or a `tests/` tree: excluded from
    /// production analyses.
    pub is_test: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Nondeterminism sources in body order.
    pub sources: Vec<TaintSource>,
    /// Count of panicking constructs (indexing/slicing, `unwrap`-family,
    /// explicit panic/assert macros).
    pub panic_count: usize,
}

/// The panic-construct classes counted by [`extract_fns`].
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const UNWRAP_FAMILY: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Extract per-function facts for one file. `file_is_test` marks a whole
/// `tests/` tree file (every function in it is test-only).
pub fn extract_fns(rel: &str, sig: &[&Token], tree: &ItemTree, file_is_test: bool) -> Vec<FnDef> {
    let mut out = Vec::with_capacity(tree.fns.len());
    for f in &tree.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        let body_start = (open + 1).min(sig.len());
        let body_end = close.min(sig.len());
        let body = &sig[body_start..body_end];
        let mut def = FnDef {
            file: rel.to_string(),
            name: f.name.clone(),
            qual: f.qual.clone(),
            line: f.span.line,
            col: f.span.col,
            is_test: file_is_test || f.is_test,
            calls: Vec::new(),
            sources: Vec::new(),
            panic_count: 0,
        };
        scan_calls(body, &mut def.calls);
        scan_sources(body, &mut def.sources);
        def.panic_count = count_panic_sites(body);
        out.push(def);
    }
    out
}

fn ident<'a>(body: &[&'a Token], i: usize) -> Option<&'a str> {
    body.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn is_punct(body: &[&Token], i: usize, c: char) -> bool {
    body.get(i).is_some_and(|t| t.is_punct(c))
}

/// Every `name(` / `.name(` / `Recv::name(` occurrence that is not a macro
/// invocation, a definition, or a control-flow keyword.
fn scan_calls(body: &[&Token], out: &mut Vec<CallSite>) {
    for i in 0..body.len() {
        let Some(name) = ident(body, i) else { continue };
        if !is_punct(body, i + 1, '(') {
            continue;
        }
        if EXPR_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && ident(body, i - 1) == Some("fn") {
            continue;
        }
        let is_method = i > 0 && is_punct(body, i - 1, '.');
        let qual = if i >= 3
            && is_punct(body, i - 1, ':')
            && is_punct(body, i - 2, ':')
            && body.get(i - 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            body.get(i - 3).map(|r| format!("{}::{name}", r.text))
        } else {
            None
        };
        let t = body[i];
        out.push(CallSite {
            name: name.to_string(),
            qual,
            is_method,
            line: t.line,
            col: t.col,
        });
    }
}

/// True when the idents/puncts at `body[from..]` match `pat` (same
/// convention as the rule passes: 1-byte puncts or identifiers).
fn seq(body: &[&Token], from: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        body.get(from + k).is_some_and(|t| {
            if p.len() == 1 && !p.as_bytes()[0].is_ascii_alphanumeric() {
                t.is_punct(p.as_bytes()[0] as char)
            } else {
                t.is_ident(p)
            }
        })
    })
}

/// Nondeterminism sources, in body order.
fn scan_sources(body: &[&Token], out: &mut Vec<TaintSource>) {
    let mut has_unordered = false;
    let mut float_hint = false;
    for t in body {
        if t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32") {
            float_hint = true;
        }
        if t.kind == TokKind::Num && is_float_literal(&t.text) {
            float_hint = true;
        }
    }
    for i in 0..body.len() {
        let Some(name) = ident(body, i) else { continue };
        match name {
            "Instant" | "SystemTime" if seq(body, i + 1, &[":", ":", "now"]) => {
                push_source(out, body[i], "wall-clock", format!("`{name}::now()`"));
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                push_source(out, body[i], "ambient-rng", format!("`{name}`"));
            }
            "rand" if seq(body, i + 1, &[":", ":", "random"]) => {
                push_source(out, body[i], "ambient-rng", "`rand::random`".to_string());
            }
            "HashMap" | "HashSet" => {
                has_unordered = true;
                push_source(
                    out,
                    body[i],
                    "unordered-iter",
                    format!("`{name}` (hash iteration order)"),
                );
            }
            "env" if seq(body, i + 1, &[":", ":"]) => {
                if let Some(what) = ident(body, i + 3) {
                    if matches!(what, "var" | "var_os" | "vars" | "vars_os") {
                        push_source(out, body[i], "env-read", format!("`env::{what}`"));
                    }
                }
            }
            "as_ptr" | "as_mut_ptr" if seq(body, i + 1, &["(", ")", "as"]) => {
                push_source(
                    out,
                    body[i],
                    "ptr-to-int",
                    format!("`.{name}() as <int>` (address-dependent value)"),
                );
            }
            _ => {}
        }
    }
    // Float accumulation over an unordered iterator: only meaningful when
    // the body both iterates a hash collection and folds floats — float
    // addition is non-associative, so the hash order leaks into the sum.
    if has_unordered && float_hint {
        for i in 0..body.len() {
            if is_punct(body, i, '.') {
                if let Some(m) = ident(body, i + 1) {
                    if matches!(m, "sum" | "product" | "fold") {
                        push_source(
                            out,
                            body[i + 1],
                            "float-fold-unordered",
                            format!("float `.{m}(..)` over a hash-ordered iterator"),
                        );
                        break;
                    }
                }
            }
        }
    }
}

fn push_source(out: &mut Vec<TaintSource>, t: &Token, kind: &'static str, what: String) {
    out.push(TaintSource {
        kind,
        what,
        line: t.line,
        col: t.col,
    });
}

/// True for numeric literal text with float syntax (`1.5`, `1e9`, `2.0f64`)
/// as opposed to integer syntax (`42`, `0xff`, `1_000u64`).
pub fn is_float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    lower.contains('.')
        || lower.contains("f3")
        || lower.contains("f6")
        || (lower.contains('e')
            && !lower.ends_with("e")
            && lower.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Panicking constructs in a body: indexing/slicing brackets, the
/// `unwrap`-family, and explicit panic/assert macros (`debug_assert*` is
/// compiled out of release builds and not counted).
fn count_panic_sites(body: &[&Token]) -> usize {
    let mut n = 0usize;
    for i in 0..body.len() {
        let t = body[i];
        if t.is_punct('[') {
            // Indexing: `expr[`, i.e. preceded by an identifier, `)`, `]`,
            // or `?`. Array literals (`= [`), attribute brackets (`#[`),
            // types (`: [u8; 4]`), and macro brackets (`vec![`) are not.
            let indexes = i > 0
                && body.get(i - 1).is_some_and(|p| {
                    (p.kind == TokKind::Ident && !EXPR_KEYWORDS.contains(&p.text.as_str()))
                        || p.is_punct(')')
                        || p.is_punct(']')
                        || p.is_punct('?')
                });
            if indexes {
                n += 1;
            }
        } else if t.is_punct('.') {
            if let Some(m) = ident(body, i + 1) {
                if UNWRAP_FAMILY.contains(&m) && is_punct(body, i + 2, '(') {
                    n += 1;
                }
            }
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && is_punct(body, i + 1, '!')
        {
            n += 1;
        }
    }
    n
}

/// A crate-wide call graph over non-test functions.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// The function table (production functions only).
    pub fns: Vec<FnDef>,
    /// `edges[i]` = indices of functions `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Reverse edges (callers of `fns[i]`).
    pub redges: Vec<Vec<usize>>,
}

impl CrateGraph {
    /// Build the graph from every production function of one crate.
    pub fn build(fns: Vec<FnDef>) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
            if let Some(q) = &f.qual {
                by_qual.entry(q.as_str()).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let targets = call
                    .qual
                    .as_deref()
                    .and_then(|q| by_qual.get(q))
                    .or_else(|| by_name.get(call.name.as_str()));
                if let Some(ts) = targets {
                    for &t in ts {
                        if t != i && !edges[i].contains(&t) {
                            edges[i].push(t);
                        }
                    }
                }
            }
        }
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, outs) in edges.iter().enumerate() {
            for &t in outs {
                redges[t].push(i);
            }
        }
        CrateGraph { fns, edges, redges }
    }

    /// Indices of functions matching `(file_suffix, qual_or_name)` — used to
    /// resolve configured entry points like
    /// (`crates/core/src/fleet.rs`, `FrontDoor::place`).
    pub fn resolve_entry(&self, file_suffix: &str, qual: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file.ends_with(file_suffix) && (f.qual.as_deref() == Some(qual) || f.name == qual)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Forward reachability from `entries` (inclusive).
    pub fn reachable(&self, entries: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: VecDeque<usize> = entries.iter().copied().collect();
        for &e in entries {
            if e < seen.len() {
                seen[e] = true;
            }
        }
        while let Some(i) = queue.pop_front() {
            for &t in &self.edges[i] {
                if !seen[t] {
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// For every function, the taint witness if nondeterminism reaches it:
    /// either a source in its own body, or (transitively) a call to a
    /// tainted function. Propagation runs **up** the call graph — a caller
    /// of a tainted function observes its nondeterministic result.
    pub fn taint(&self) -> Vec<Option<TaintWitness>> {
        let mut witness: Vec<Option<TaintWitness>> = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        for (i, f) in self.fns.iter().enumerate() {
            if let Some(src) = f.sources.first() {
                witness[i] = Some(TaintWitness {
                    source: src.clone(),
                    source_fn: i,
                    via: None,
                });
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let (source, source_fn) = {
                let w = witness[i].as_ref().expect("queued fns carry a witness");
                (w.source.clone(), w.source_fn)
            };
            for &caller in &self.redges[i] {
                if witness[caller].is_none() {
                    witness[caller] = Some(TaintWitness {
                        source: source.clone(),
                        source_fn,
                        via: Some(i),
                    });
                    queue.push_back(caller);
                }
            }
        }
        witness
    }

    /// Render the `fn -> fn -> source_fn` chain for a witness, shortest
    /// path as discovered by the BFS.
    pub fn taint_chain(&self, witness: &[Option<TaintWitness>], from: usize) -> String {
        let mut names = vec![self.display_name(from)];
        let mut cur = from;
        let mut guard = 0usize;
        while let Some(w) = witness.get(cur).and_then(|w| w.as_ref()) {
            let Some(next) = w.via else { break };
            names.push(self.display_name(next));
            cur = next;
            guard += 1;
            if guard > self.fns.len() {
                break;
            }
        }
        names.join(" -> ")
    }

    fn display_name(&self, i: usize) -> String {
        self.fns[i]
            .qual
            .clone()
            .unwrap_or_else(|| self.fns[i].name.clone())
    }
}

/// Why a function is considered tainted.
#[derive(Debug, Clone)]
pub struct TaintWitness {
    /// The originating source occurrence.
    pub source: TaintSource,
    /// Index of the function whose body contains the source.
    pub source_fn: usize,
    /// The callee through which taint arrived (`None` for the source
    /// function itself).
    pub via: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::tokenizer::tokenize;

    fn fns_of(src: &str) -> Vec<FnDef> {
        let toks = tokenize(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = parser::parse(&sig);
        extract_fns("crates/x/src/lib.rs", &sig, &tree, false)
    }

    #[test]
    fn calls_sources_and_panics_are_extracted() {
        let src = r#"
            fn measure() -> u64 {
                let t = Instant::now();
                helper(t.elapsed());
                data[0].unwrap();
                panic!("boom");
                vec![1, 2];
                #[inline]
                fn nested() {}
                t.as_nanos()
            }
        "#;
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        let call_names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(call_names.contains(&"helper"));
        assert!(call_names.contains(&"elapsed"));
        assert!(!call_names.contains(&"vec"), "macros are not calls");
        assert_eq!(f.sources.len(), 1);
        assert_eq!(f.sources[0].kind, "wall-clock");
        // data[0] indexing + .unwrap() + panic! = 3 (vec![..] excluded).
        assert_eq!(f.panic_count, 3);
    }

    #[test]
    fn taint_propagates_to_callers_with_a_chain() {
        let src = r#"
            fn source_fn() -> u64 { SystemTime::now(); 0 }
            fn middle() -> u64 { source_fn() }
            fn top() { let x = middle(); sink.record(x); }
            fn unrelated() { clean(); }
        "#;
        let g = CrateGraph::build(fns_of(src));
        let w = g.taint();
        let idx = |n: &str| g.fns.iter().position(|f| f.name == n).expect("fn");
        assert!(w[idx("source_fn")].is_some());
        assert!(w[idx("middle")].is_some());
        assert!(w[idx("top")].is_some());
        assert!(w[idx("unrelated")].is_none());
        let chain = g.taint_chain(&w, idx("top"));
        assert_eq!(chain, "top -> middle -> source_fn");
    }

    #[test]
    fn reachability_follows_qualified_and_method_calls() {
        let src = r#"
            impl World {
                fn step(&mut self) { self.dispatch(); }
                fn dispatch(&mut self) { queue[0]; }
                fn cold(&mut self) { other.unwrap(); }
            }
        "#;
        let g = CrateGraph::build(fns_of(src));
        let entries = g.resolve_entry("lib.rs", "World::step");
        assert_eq!(entries.len(), 1);
        let seen = g.reachable(&entries);
        let idx = |n: &str| g.fns.iter().position(|f| f.name == n).expect("fn");
        assert!(seen[idx("dispatch")]);
        assert!(!seen[idx("cold")]);
    }
}
