#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-lint — determinism/robustness static analysis for this workspace
//!
//! Every evaluation artifact in this repo (`BENCH_*.json`, the Fig. 5/6/7
//! replays) is gated on *byte-identical determinism*. That property has been
//! broken before by innocent-looking code — a `partial_cmp(..).expect(..)`
//! NaN panic in the Histogram, and it is one `Instant::now()` or `HashMap`
//! iteration away from breaking again. This crate turns the conventions that
//! protect it into machine-checked rules that run in `scripts/check.sh` and
//! CI (see `LINTS.md` at the workspace root for the full contract).
//!
//! The engine is **zero-dependency** by design: a small comment/string/
//! char-literal-aware Rust tokenizer ([`tokenizer`]) feeds token-sequence
//! rule passes ([`rules`]) over every workspace `.rs` file ([`engine`]),
//! with a committed, ratcheted debt baseline ([`baseline`]).
//!
//! Diagnostics are machine-readable, one per line:
//!
//! ```text
//! rule-id: file:line:col message
//! ```
//!
//! Any site can be exempted with an inline escape hatch on the same line or
//! the line above — the reason is mandatory:
//!
//! ```text
//! // lint:allow(no-wall-clock): times the solver itself, not simulated work
//! ```

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod engine;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod tokenizer;

pub use engine::{find_root, lint_workspace, lint_workspace_with_baseline, Report};
pub use rules::{analyze_file, scan_file, Diagnostic, FileAnalysis, FileFindings};
