//! A small, dependency-free Rust tokenizer.
//!
//! The lint rules only need a faithful *token stream*, not a syntax tree:
//! every rule matches short ident/punct sequences. What the tokenizer must
//! get right is the part naive `grep` gets wrong — banned identifiers inside
//! string literals, raw strings, char literals, and comments must **not**
//! surface as code tokens, and comments must be preserved (with positions)
//! so `lint:allow` escape hatches can be parsed from them.
//!
//! Positions are 1-based `(line, byte-column)`, matching the diagnostic
//! format `rule-id: file:line:col message`.

/// The coarse classification a lint rule can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `partial_cmp`, ...).
    Ident,
    /// A single punctuation byte (`.`, `:`, `(`, `{`, ...).
    Punct,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'a'`, `'\n'`, `b'\0'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Line (`//`, `///`, `//!`) or block (`/* */`, nested) comment.
    Comment,
}

/// One lexed token with its source text and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Raw source text, including quotes/prefixes for literals and the
    /// comment markers for comments.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token {
    /// True if this is an identifier with exactly the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the given single punctuation byte.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True if this is a string literal with empty contents (`""`, `r""`,
    /// `b""`, `r#""#`, ...). Used by the unwrap-ratchet to treat
    /// `.expect("")` like a bare `.unwrap()`.
    pub fn is_empty_str(&self) -> bool {
        if self.kind != TokKind::Str {
            return false;
        }
        let inner = self
            .text
            .trim_start_matches(['b', 'r'])
            .trim_start_matches('#')
            .trim_end_matches('#');
        inner == "\"\""
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    toks: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            toks: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.i + off).unwrap_or(&0)
    }

    /// Advance `n` bytes, updating line/col.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if self.i >= self.src.len() {
                return;
            }
            if self.src[self.i] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.toks.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.i < self.src.len() {
            let (start, line, col) = (self.i, self.line, self.col);
            let b = self.src[self.i];
            match b {
                b if b.is_ascii_whitespace() => self.bump(1),
                b'/' if self.peek(1) == b'/' => {
                    while self.i < self.src.len() && self.src[self.i] != b'\n' {
                        self.bump(1);
                    }
                    self.emit(TokKind::Comment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit(TokKind::Comment, start, line, col);
                }
                b'"' => {
                    self.quoted_string();
                    self.emit(TokKind::Str, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line, col);
                }
                b if is_ident_start(b) => {
                    let kind = self.ident_or_prefixed_literal();
                    self.emit(kind, start, line, col);
                }
                b if b.is_ascii_digit() => {
                    self.number();
                    self.emit(TokKind::Num, start, line, col);
                }
                _ => {
                    self.bump(1);
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.toks
    }

    /// Consume a (possibly nested) `/* ... */` block comment.
    fn block_comment(&mut self) {
        self.bump(2);
        let mut depth = 1usize;
        while self.i < self.src.len() && depth > 0 {
            if self.src[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump(2);
            } else if self.src[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump(2);
            } else {
                self.bump(1);
            }
        }
    }

    /// Consume a `"..."` string with escape handling; cursor on the `"`.
    fn quoted_string(&mut self) {
        self.bump(1);
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    return;
                }
                _ => self.bump(1),
            }
        }
    }

    /// Consume a raw string `r##"..."##` with `hashes` hashes; cursor on `"`.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(1);
        while self.i < self.src.len() {
            if self.src[self.i] == b'"' {
                let closing = (0..hashes).all(|k| self.peek(1 + k) == b'#');
                if closing {
                    self.bump(1 + hashes);
                    return;
                }
            }
            self.bump(1);
        }
    }

    /// Cursor on a `'`: decide char literal vs lifetime.
    fn char_or_lifetime(&mut self) -> TokKind {
        // `'\...'` is always a char literal; `'x'` (quote two ahead) too;
        // otherwise `'ident` is a lifetime.
        if self.peek(1) == b'\\' || (self.peek(2) == b'\'' && self.peek(1) != b'\'') {
            self.bump(1);
            while self.i < self.src.len() {
                match self.src[self.i] {
                    b'\\' => self.bump(2),
                    b'\'' => {
                        self.bump(1);
                        return TokKind::Char;
                    }
                    _ => self.bump(1),
                }
            }
            TokKind::Char
        } else {
            self.bump(1);
            while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
                self.bump(1);
            }
            TokKind::Lifetime
        }
    }

    /// Cursor on an ident-start byte. Handles the `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`, `b'x'`, and raw-identifier `r#name` forms whose
    /// leading bytes look like an identifier.
    fn ident_or_prefixed_literal(&mut self) -> TokKind {
        let word_start = self.i;
        while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
            self.bump(1);
        }
        let word = &self.src[word_start..self.i];
        let next = self.peek(0);
        match word {
            b"r" | b"b" | b"br" => {
                if next == b'"' {
                    if word == b"b" {
                        self.quoted_string(); // byte strings still process escapes
                    } else {
                        self.raw_string(0);
                    }
                    return TokKind::Str;
                }
                if next == b'#' && word != b"b" {
                    let mut hashes = 0usize;
                    while self.peek(hashes) == b'#' {
                        hashes += 1;
                    }
                    if self.peek(hashes) == b'"' {
                        self.bump(hashes);
                        self.raw_string(hashes);
                        return TokKind::Str;
                    }
                    if word == b"r" && hashes == 1 && is_ident_start(self.peek(1)) {
                        // raw identifier `r#match`
                        self.bump(1);
                        while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
                            self.bump(1);
                        }
                        return TokKind::Ident;
                    }
                }
                if word == b"b" && next == b'\'' {
                    self.char_or_lifetime();
                    return TokKind::Char;
                }
                TokKind::Ident
            }
            _ => TokKind::Ident,
        }
    }

    /// Cursor past the leading digit run start. Consumes integer/float forms.
    fn number(&mut self) {
        while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
            self.bump(1);
        }
        // Fractional part only when followed by a digit (so `0..10` and
        // `1.max(2)` don't swallow the dot).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump(1);
            while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
                self.bump(1);
            }
        }
        // Signed exponent (`1e-5`); unsigned exponents were consumed above.
        if (self.peek(0) == b'+' || self.peek(0) == b'-')
            && matches!(self.src.get(self.i.wrapping_sub(1)), Some(b'e' | b'E'))
            && self.peek(1).is_ascii_digit()
        {
            self.bump(1);
            while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
                self.bump(1);
            }
        }
    }
}

/// Tokenize a Rust source file into a flat token stream, comments included.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}
