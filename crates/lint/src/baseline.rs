//! The ratchet baselines: committed per-crate debt counts
//! (`lint-baseline.toml`) for the two ratcheted measures —
//! `[unwrap-ratchet]` (bare `unwrap()` / empty-message `expect()` in
//! non-test code) and `[panic-path]` (panicking constructs reachable from
//! the replay hot entry points).
//!
//! The gates fail only when a crate's count **grows** past its baseline, so
//! robustness debt can shrink freely but never accrete. After a burn-down,
//! regenerate with `cargo run -p microedge-lint -- --update-baseline`.
//!
//! The file is a two-table TOML subset (`"key" = integer` lines under a
//! `[section]` header) parsed here by hand — the lint is zero-dependency.

use std::collections::BTreeMap;

use crate::config::{PANIC_PATH_RATCHET, UNWRAP_RATCHET};
use crate::rules::Diagnostic;

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// The two committed ratchet tables.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `[unwrap-ratchet]` per-crate counts.
    pub unwrap: BTreeMap<String, usize>,
    /// `[panic-path]` per-crate counts.
    pub panic_path: BTreeMap<String, usize>,
}

/// Parse the baseline file contents.
///
/// Returns `Err` with a description on any line that is not a comment,
/// blank, a known section header, or a `"crate" = count` entry. A missing
/// `[panic-path]` section is an error: the gate must never silently pass
/// because half the ratchet got lost.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut base = Baseline::default();
    let mut section: Option<&str> = None;
    let mut saw_unwrap = false;
    let mut saw_panic = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[unwrap-ratchet]" => {
                    saw_unwrap = true;
                    Some("unwrap")
                }
                "[panic-path]" => {
                    saw_panic = true;
                    Some("panic")
                }
                other => return Err(format!("line {}: unknown section {other}", ln + 1)),
            };
            continue;
        }
        let Some(section) = section else {
            return Err(format!("line {}: entry outside any section", ln + 1));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `\"crate\" = count`", ln + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: count is not an integer", ln + 1))?;
        match section {
            "unwrap" => base.unwrap.insert(key, value),
            _ => base.panic_path.insert(key, value),
        };
    }
    if !saw_unwrap {
        return Err("missing [unwrap-ratchet] section".to_string());
    }
    if !saw_panic {
        return Err("missing [panic-path] section".to_string());
    }
    Ok(base)
}

/// Render per-crate counts back into the canonical committed form.
pub fn format(unwrap: &BTreeMap<String, usize>, panic_path: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Ratcheted per-crate debt baselines. microedge-lint fails a crate whose\n\
         # count GROWS past its baseline; shrinking is always allowed (and welcome).\n\
         # After a genuine burn-down, regenerate:\n\
         #\n\
         #     cargo run -p microedge-lint -- --update-baseline\n\
         \n\
         # Bare `unwrap()` / empty-message `expect()` in non-test code.\n\
         [unwrap-ratchet]\n",
    );
    for (k, v) in unwrap {
        out.push_str(&format!("\"{k}\" = {v}\n"));
    }
    out.push_str(
        "\n\
         # Panicking constructs (indexing/slicing, unwrap-family, explicit panic!)\n\
         # reachable from the hot entry points: World::run_until/dispatch, the\n\
         # ShardedWorld epoch loop, and FrontDoor::place.\n\
         [panic-path]\n",
    );
    for (k, v) in panic_path {
        out.push_str(&format!("\"{k}\" = {v}\n"));
    }
    out
}

/// Compare measured counts against the baseline; one diagnostic per crate
/// whose debt grew. Crates absent from the baseline ratchet against zero.
pub fn check(
    measured_unwrap: &BTreeMap<String, usize>,
    measured_panic: &BTreeMap<String, usize>,
    base: &Baseline,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (krate, &count) in measured_unwrap {
        let allowed = base.unwrap.get(krate).copied().unwrap_or(0);
        if count > allowed {
            diags.push(Diagnostic {
                rule: UNWRAP_RATCHET,
                path: BASELINE_FILE.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate {krate} has {count} bare unwrap()/empty expect() in non-test code, \
                     baseline {allowed}; convert them to expect(\"<invariant>\") or a typed \
                     error (or, after a genuine burn-down, regenerate with --update-baseline)"
                ),
            });
        }
    }
    for (krate, &count) in measured_panic {
        let allowed = base.panic_path.get(krate).copied().unwrap_or(0);
        if count > allowed {
            diags.push(Diagnostic {
                rule: PANIC_PATH_RATCHET,
                path: BASELINE_FILE.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate {krate} has {count} panicking constructs reachable from the hot \
                     entry points (World::run_until/dispatch, ShardedWorld epoch loop, \
                     FrontDoor::place), baseline {allowed}; replace indexing/unwraps on the \
                     hot path with checked accesses (or, after a genuine burn-down, \
                     regenerate with --update-baseline)"
                ),
            });
        }
    }
    diags
}
