//! The ratchet baseline: committed per-crate counts of bare `unwrap()` /
//! empty-message `expect()` in non-test code (`lint-baseline.toml`).
//!
//! The gate fails only when a crate's count **grows** past its baseline, so
//! robustness debt can shrink freely but never accrete. After a burn-down,
//! regenerate with `cargo run -p microedge-lint -- --update-baseline`.
//!
//! The file is a single-table TOML subset (`"key" = integer` lines under
//! `[unwrap-ratchet]`) parsed here by hand — the lint is zero-dependency.

use std::collections::BTreeMap;

use crate::config::UNWRAP_RATCHET;
use crate::rules::Diagnostic;

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Parse the baseline file contents into per-crate counts.
///
/// Returns `Err` with a description on any line that is not a comment,
/// blank, the `[unwrap-ratchet]` header, or a `"crate" = count` entry.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    let mut in_section = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[unwrap-ratchet]";
            continue;
        }
        if !in_section {
            return Err(format!("line {}: entry outside [unwrap-ratchet]", ln + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `\"crate\" = count`", ln + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: count is not an integer", ln + 1))?;
        counts.insert(key, value);
    }
    Ok(counts)
}

/// Render per-crate counts back into the canonical committed form.
pub fn format(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Per-crate count of bare `unwrap()` / empty-message `expect()` in non-test\n\
         # code. microedge-lint fails a crate whose count GROWS past this baseline;\n\
         # shrinking is always allowed (and welcome). After a burn-down, regenerate:\n\
         #\n\
         #     cargo run -p microedge-lint -- --update-baseline\n\
         \n\
         [unwrap-ratchet]\n",
    );
    for (k, v) in counts {
        out.push_str(&format!("\"{k}\" = {v}\n"));
    }
    out
}

/// Compare measured counts against the baseline; one diagnostic per crate
/// whose debt grew. Crates absent from the baseline ratchet against zero.
pub fn check(
    measured: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (krate, &count) in measured {
        let allowed = baseline.get(krate).copied().unwrap_or(0);
        if count > allowed {
            diags.push(Diagnostic {
                rule: UNWRAP_RATCHET,
                path: BASELINE_FILE.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate {krate} has {count} bare unwrap()/empty expect() in non-test code, \
                     baseline {allowed}; convert them to expect(\"<invariant>\") or a typed \
                     error (or, after a genuine burn-down, regenerate with --update-baseline)"
                ),
            });
        }
    }
    diags
}
