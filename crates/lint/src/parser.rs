//! A zero-dependency recursive-descent *item* parser over the token stream.
//!
//! The v1 lint passes were pure token-sequence matchers; the v2 analyses
//! (`taint-artifact-path`, `panic-path-ratchet`) need to know **which
//! function** a token belongs to, whether that function sits inside a
//! `#[cfg(test)]` item, and what type an `impl` block targets. This module
//! builds exactly that — an item tree of modules / `impl` blocks / functions
//! with token-range bodies and source spans — and nothing more. It is *not*
//! an expression parser: function bodies stay opaque token runs that the
//! rule passes scan linearly.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, on any byte sequence.** The parser runs inside the CI
//!    gate over arbitrary (possibly half-edited) source, and the fuzz test
//!    (`tests/parser_fuzz.rs`) mutates the fixture corpus at the byte level.
//!    Every token access goes through `get`, every loop strictly advances.
//! 2. **Spans stay inside the file.** Diagnostics anchor to token positions,
//!    so every span is copied from a real token.
//! 3. **Approximate is fine, silent scope loss is not.** Unrecognized
//!    constructs are skipped one token at a time; they can hide a function
//!    from the call graph (approximation) but never abort the file.

use crate::tokenizer::Token;

/// A source region, 1-based inclusive, copied from real token positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line of the first token of the item (attributes included).
    pub line: u32,
    /// Column of the first token.
    pub col: u32,
    /// Line of the last token (the closing brace or `;`).
    pub end_line: u32,
}

/// One parsed function (free function, method, trait default method).
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The bare function name (`place`, `run_until`, ...).
    pub name: String,
    /// `Type::name` when the function sits inside an `impl Type` /
    /// `impl Trait for Type` / `trait Type` block.
    pub qual: Option<String>,
    /// Span from the first attribute to the body's closing brace.
    pub span: Span,
    /// Significant-token index range `(open, close)` of the `{ ... }` body,
    /// braces included. `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the function is (transitively) inside a `#[cfg(test)]`
    /// item or carries `#[test]` itself: excluded from production analyses.
    pub is_test: bool,
}

/// The per-file item tree: every function, plus a token-level test mask.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All functions in lexical order.
    pub fns: Vec<FnNode>,
    /// `test_mask[i]` is true when significant token `i` belongs to a
    /// `#[cfg(test)]`-gated (or `#[test]`-attributed) item. This replaces
    /// the v1 attribute+brace scan with structural masking: the mask covers
    /// exactly the item the attribute is attached to, nested items included.
    pub test_mask: Vec<bool>,
}

/// Parse the significant (comment-free) token stream of one file.
pub fn parse(sig: &[&Token]) -> ItemTree {
    let mut p = Parser {
        sig,
        fns: Vec::new(),
        mask: vec![false; sig.len()],
    };
    p.items(0, sig.len(), false, None);
    ItemTree {
        fns: p.fns,
        test_mask: p.mask,
    }
}

/// Keywords that can open a block expression; never call targets, and the
/// extractor must not mistake `while (..)` for a call either.
pub const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "let",
    "move", "ref", "mut", "as", "where", "dyn", "impl", "fn", "self", "Self", "super", "crate",
    "await", "async", "unsafe", "box", "yield", "true", "false",
];

struct Parser<'a> {
    sig: &'a [&'a Token],
    fns: Vec<FnNode>,
    mask: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.sig.get(i).copied()
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn mark(&mut self, from: usize, to: usize) {
        let to = to.min(self.mask.len());
        for m in &mut self.mask[from.min(to)..to] {
            *m = true;
        }
    }

    /// Parse items in `[i, end)`; `in_test` marks an enclosing test item,
    /// `owner` the enclosing `impl`/`trait` type for method qualification.
    fn items(&mut self, mut i: usize, end: usize, in_test: bool, owner: Option<&str>) {
        while i < end {
            let item_start = i;

            // Leading attributes. Inner attributes (`#![...]`) attach to the
            // enclosing scope and never gate an item.
            let mut attr_test = false;
            while self.is_punct(i, '#') && i < end {
                let inner = self.is_punct(i + 1, '!');
                let open = if inner { i + 2 } else { i + 1 };
                if !self.is_punct(open, '[') {
                    break;
                }
                let close = self.skip_balanced(open, '[', ']').min(end);
                if !inner && self.attr_is_test(open, close) {
                    attr_test = true;
                }
                i = close.max(i + 1);
            }
            if i >= end {
                if in_test || attr_test {
                    self.mark(item_start, end);
                }
                break;
            }
            let item_test = in_test || attr_test;

            // Visibility and modifiers that may precede an item keyword.
            let mut k = i;
            loop {
                if self.is_ident(k, "pub") {
                    k += 1;
                    if self.is_punct(k, '(') {
                        k = self.skip_balanced(k, '(', ')');
                    }
                } else if self.is_ident(k, "default")
                    || self.is_ident(k, "unsafe")
                    || self.is_ident(k, "async")
                {
                    k += 1;
                } else if self.is_ident(k, "const") && self.is_ident(k + 1, "fn") {
                    k += 1; // `const fn` — fall through to the fn arm
                } else if self.is_ident(k, "extern") {
                    k += 1;
                    if self
                        .tok(k)
                        .is_some_and(|t| t.kind == crate::tokenizer::TokKind::Str)
                    {
                        k += 1;
                    }
                    // `extern crate x;` is handled by the statement fallback.
                } else {
                    break;
                }
                if k >= end {
                    break;
                }
            }

            let next = if self.is_ident(k, "fn") {
                self.parse_fn(item_start, k, end, item_test, owner)
            } else if self.is_ident(k, "mod") && !self.is_punct(k + 1, '!') {
                self.parse_braced_scope(k, end, item_test, owner, ScopeKind::Module)
            } else if self.is_ident(k, "impl") {
                self.parse_braced_scope(k, end, item_test, owner, ScopeKind::Impl)
            } else if self.is_ident(k, "trait") {
                self.parse_braced_scope(k, end, item_test, owner, ScopeKind::Trait)
            } else if self.is_ident(k, "macro_rules") {
                // `macro_rules! name { ... }` — the body is token soup.
                let mut j = k + 1;
                while j < end && !self.is_punct(j, '{') {
                    j += 1;
                }
                self.skip_balanced(j, '{', '}')
            } else if self.is_ident(k, "struct")
                || self.is_ident(k, "enum")
                || self.is_ident(k, "union")
            {
                self.skip_item_with_optional_body(k, end)
            } else {
                // `use`, `static`, `const` items, `type`, stray tokens:
                // consume up to `;` at depth 0, skipping balanced groups.
                self.skip_statement(k, end)
            };
            let next = next.clamp(i + 1, end.max(i + 1));
            if item_test {
                self.mark(item_start, next);
            }
            i = next;
        }
    }

    /// `fn` at `kw`: register the node and return the index past it. The
    /// body stays an opaque token run (nested `fn` declarations inside a
    /// body are an accepted approximation: their tokens belong to the
    /// enclosing function).
    fn parse_fn(
        &mut self,
        item_start: usize,
        kw: usize,
        end: usize,
        is_test: bool,
        owner: Option<&str>,
    ) -> usize {
        let Some(name_tok) = self.tok(kw + 1) else {
            return kw + 2;
        };
        let name = name_tok
            .text
            .strip_prefix("r#")
            .unwrap_or(&name_tok.text)
            .to_string();

        // Find the body `{` (or a bodiless `;`) at group depth 0. Generic
        // parameters and where clauses may contain `<`/`>`; those never
        // contain stray `{` in this codebase, so plain paren/bracket
        // tracking is enough and far more robust than angle matching.
        let mut j = kw + 2;
        let mut body = None;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.skip_balanced(j, '(', ')');
            } else if self.is_punct(j, '[') {
                j = self.skip_balanced(j, '[', ']');
            } else if self.is_punct(j, ';') {
                j += 1;
                break;
            } else if self.is_punct(j, '{') {
                let close_past = self.skip_balanced(j, '{', '}');
                body = Some((j, close_past.saturating_sub(1).max(j)));
                j = close_past;
                break;
            } else {
                j += 1;
            }
        }

        let (start_line, start_col) = self.tok(item_start).map_or((1, 1), |t| (t.line, t.col));
        let end_line = self
            .tok(j.saturating_sub(1).min(self.sig.len().saturating_sub(1)))
            .map_or(start_line, |t| t.line);
        let qual = owner.map(|o| format!("{o}::{name}"));
        self.fns.push(FnNode {
            name,
            qual,
            span: Span {
                line: start_line,
                col: start_col,
                end_line,
            },
            body,
            is_test,
        });
        j.max(kw + 2)
    }

    /// `mod name { .. }` / `impl .. { .. }` / `trait Name { .. }`: work out
    /// the owner name, recurse into the body, return the index past it.
    fn parse_braced_scope(
        &mut self,
        kw: usize,
        end: usize,
        is_test: bool,
        outer_owner: Option<&str>,
        kind: ScopeKind,
    ) -> usize {
        let Some(open) = self.find_body_open(kw + 1, end) else {
            // `mod name;` or an unparseable header: consume to `;`/end.
            return self.skip_statement(kw, end);
        };
        if self.is_punct(open, ';') {
            return open + 1;
        }
        let owner: Option<String> = match kind {
            ScopeKind::Module => outer_owner.map(str::to_string),
            ScopeKind::Trait => self
                .tok(kw + 1)
                .filter(|t| t.kind == crate::tokenizer::TokKind::Ident)
                .map(|t| t.text.clone()),
            ScopeKind::Impl => self.impl_self_type(kw + 1, open),
        };
        let close_past = self.skip_balanced(open, '{', '}');
        self.items(
            open + 1,
            close_past.saturating_sub(1),
            is_test,
            owner.as_deref(),
        );
        close_past
    }

    /// Scan `[from, end)` for the scope body `{` at group depth 0; also
    /// stops at `;` (bodiless form). Returns the index of the `{` or `;`.
    fn find_body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut j = from;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.skip_balanced(j, '(', ')');
            } else if self.is_punct(j, '[') {
                j = self.skip_balanced(j, '[', ']');
            } else if self.is_punct(j, '{') || self.is_punct(j, ';') {
                return Some(j);
            } else {
                j += 1;
            }
        }
        None
    }

    /// The self-type name of an `impl` header in `[from, open)`:
    /// `impl Foo<T>` → `Foo`; `impl fmt::Display for Diagnostic` →
    /// `Diagnostic`; `impl Trait for Vec<T>` → `Vec`. Heuristic: within the
    /// segment after the last top-level `for` (or the whole header), the
    /// identifier immediately preceding the first `<`, else the last
    /// identifier. A `where` clause terminates the scan.
    fn impl_self_type(&self, from: usize, open: usize) -> Option<String> {
        // Skip leading generic parameters `impl<T, ...>`.
        let mut j = from;
        if self.is_punct(j, '<') {
            j = self.skip_angles(j, open);
        }
        let mut segment_start = j;
        let mut k = j;
        while k < open {
            if self.is_ident(k, "for") {
                segment_start = k + 1;
            } else if self.is_ident(k, "where") {
                break;
            }
            k += 1;
        }
        let seg_end = k;
        let mut last_ident: Option<&Token> = None;
        let mut m = segment_start;
        while m < seg_end {
            let Some(t) = self.tok(m) else { break };
            if t.is_punct('<') {
                return last_ident.map(|t| t.text.clone());
            }
            if t.kind == crate::tokenizer::TokKind::Ident
                && !EXPR_KEYWORDS.contains(&t.text.as_str())
            {
                last_ident = Some(t);
            }
            m += 1;
        }
        last_ident.map(|t| t.text.clone())
    }

    /// Skip a `<...>` generic group starting at `open` (which holds `<`),
    /// guarding against `->` being misread as a closing angle. Returns the
    /// index past the matching `>`, clamped to `end`.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            if self.is_punct(j, '<') {
                depth += 1;
            } else if self.is_punct(j, '>') && !(j > 0 && self.is_punct(j - 1, '-')) {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// `struct`/`enum`/`union`: skip the header plus either a `{..}` body,
    /// a tuple-struct `(..);`, or a unit `;`.
    fn skip_item_with_optional_body(&self, kw: usize, end: usize) -> usize {
        let mut j = kw + 1;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.skip_balanced(j, '(', ')');
            } else if self.is_punct(j, '{') {
                return self.skip_balanced(j, '{', '}');
            } else if self.is_punct(j, ';') {
                return j + 1;
            } else {
                j += 1;
            }
        }
        end
    }

    /// Consume up to and including the next `;` at group depth 0, skipping
    /// balanced `{}`/`()`/`[]` groups (`use a::{b, c};`, `const X: [u8; 2] =
    /// [0, 1];`). Never consumes a `}` that would close the enclosing scope.
    fn skip_statement(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        while j < end {
            if self.is_punct(j, '{') {
                j = self.skip_balanced(j, '{', '}');
            } else if self.is_punct(j, '(') {
                j = self.skip_balanced(j, '(', ')');
            } else if self.is_punct(j, '[') {
                j = self.skip_balanced(j, '[', ']');
            } else if self.is_punct(j, ';') {
                return j + 1;
            } else if self.is_punct(j, '}') {
                return j; // end of enclosing scope; don't swallow it
            } else {
                j += 1;
            }
        }
        end
    }

    /// Index just past the closer matching the opener at `open`. If `open`
    /// does not actually hold the opener, returns `open + 1` (progress is
    /// guaranteed for every caller).
    fn skip_balanced(&self, open: usize, o: char, c: char) -> usize {
        if !self.is_punct(open, o) {
            return open + 1;
        }
        let mut depth = 0i32;
        let mut k = open;
        while k < self.sig.len() {
            if self.is_punct(k, o) {
                depth += 1;
            } else if self.is_punct(k, c) {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        self.sig.len()
    }

    /// True when the attribute tokens in `(open, close)` (exclusive of the
    /// brackets) gate a test item: `#[test]`, `#[cfg(test)]`, or any
    /// `cfg(...)` whose predicate mentions `test` (`cfg(all(test, ..))`).
    fn attr_is_test(&self, open: usize, close_past: usize) -> bool {
        let body_start = open + 1;
        let body_end = close_past.saturating_sub(1);
        let Some(head) = self.tok(body_start) else {
            return false;
        };
        if head.is_ident("test") {
            return true;
        }
        if head.is_ident("cfg") {
            let mut m = body_start + 1;
            while m < body_end {
                if self.is_ident(m, "test") {
                    return true;
                }
                m += 1;
            }
        }
        false
    }
}

#[derive(Clone, Copy)]
enum ScopeKind {
    Module,
    Impl,
    Trait,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{tokenize, TokKind};

    fn tree(src: &str) -> (Vec<crate::tokenizer::Token>, ItemTree) {
        let toks = tokenize(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let t = parse(&sig);
        (toks.clone(), t)
    }

    #[test]
    fn finds_free_fns_methods_and_trait_impls() {
        let src = r#"
            fn free() { helper(); }
            impl Foo {
                pub fn method(&self) -> u8 { 0 }
            }
            impl fmt::Display for Diagnostic {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            impl<T: Clone> Wrapper<T> {
                fn get(&self) -> T { self.0.clone() }
            }
            trait Planner {
                fn plan(&self) -> u8 { 1 }
                fn required(&self);
            }
        "#;
        let (_, t) = tree(src);
        let quals: Vec<(String, Option<String>)> = t
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone()))
            .collect();
        assert_eq!(
            quals,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Foo::method".into())),
                ("fmt".into(), Some("Diagnostic::fmt".into())),
                ("get".into(), Some("Wrapper::get".into())),
                ("plan".into(), Some("Planner::plan".into())),
                ("required".into(), Some("Planner::required".into())),
            ]
        );
        assert!(t.fns[5].body.is_none(), "bodiless trait method");
        assert!(t.fns[..5].iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn cfg_test_masking_is_structural() {
        let src = r#"
            fn prod() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
                #[test]
                fn case() { z.unwrap(); }
            }
            fn prod_after() { w.unwrap(); }
            #[cfg(all(test, feature = "x"))]
            fn gated() {}
            #[test]
            fn bare_test_attr() {}
        "#;
        let (_, t) = tree(src);
        let by_name = |n: &str| t.fns.iter().find(|f| f.name == n).expect("fn exists");
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("case").is_test);
        assert!(!by_name("prod_after").is_test);
        assert!(by_name("gated").is_test);
        assert!(by_name("bare_test_attr").is_test);
    }

    #[test]
    fn spans_are_ordered_and_inside_the_file() {
        let src = "fn a() {}\nfn b() {\n  body();\n}\n";
        let (_, t) = tree(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!((t.fns[0].span.line, t.fns[0].span.end_line), (1, 1));
        assert_eq!((t.fns[1].span.line, t.fns[1].span.end_line), (2, 4));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        for src in [
            "",
            "fn",
            "fn (",
            "impl",
            "impl {",
            "mod m {",
            "#[cfg(test)",
            "trait T",
            "fn f() { { { }",
            "struct S(",
            "macro_rules! m",
            "pub pub pub",
            "} } }",
        ] {
            let (_, t) = tree(src);
            let _ = t.fns.len();
        }
    }
}
