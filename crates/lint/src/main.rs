#![forbid(unsafe_code)]

//! `microedge-lint` binary: lint the workspace, regenerate the ratchet
//! baselines with `--update-baseline`, or sweep the integration-test trees
//! report-only with `--tests-report`. Exit 0 when clean, 1 on findings,
//! 2 on usage/IO errors.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use microedge_lint::rules::Diagnostic;
use microedge_lint::{baseline, engine};

/// Output format for findings.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// `rule-id: file:line:col message` (the LINTS.md contract).
    Text,
    /// GitHub Actions workflow commands (`::error file=...`), rendered by
    /// the Actions runner as inline PR annotations.
    Github,
}

fn main() -> ExitCode {
    let mut update_baseline = false;
    let mut tests_report = false;
    let mut format = Format::Text;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--tests-report" => tests_report = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("github") => format = Format::Github,
                Some(other) => return usage(&format!("unknown format `{other}` (text|github)")),
                None => return usage("--format requires a value (text|github)"),
            },
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root_arg.or_else(|| env::current_dir().ok().and_then(|d| engine::find_root(&d))) {
            Some(r) => r,
            None => return usage("could not locate the workspace root (run from inside the repo)"),
        };

    if update_baseline {
        let report = match engine::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => return fail(&format!("scan failed: {e}")),
        };
        let path = root.join(baseline::BASELINE_FILE);
        let text = baseline::format(&report.ratchet, &report.panic_ratchet);
        if let Err(e) = fs::write(&path, text) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        let unwraps: usize = report.ratchet.values().sum();
        let panics: usize = report.panic_ratchet.values().sum();
        println!(
            "microedge-lint: wrote {} ({} packages, {} bare unwrap/empty expect, \
             {} hot-path panic constructs)",
            path.display(),
            report.ratchet.len(),
            unwraps,
            panics
        );
        for (name, file, line, count) in report.panic_breakdown.iter().take(10) {
            println!("  panic-path: {count:3}  {name} ({file}:{line})");
        }
        return ExitCode::SUCCESS;
    }

    if tests_report {
        // Report-only sweep of tests/ trees the hard rules skip: always
        // exits 0 so it can run in CI without gating.
        let (diags, unwraps) = match engine::lint_test_trees(&root) {
            Ok(r) => r,
            Err(e) => return fail(&format!("scan failed: {e}")),
        };
        for d in &diags {
            emit(d, format, true);
        }
        println!(
            "microedge-lint: tests-report (informational): {} narrowing-cast site(s), \
             {} bare unwrap/empty expect in tests/ trees",
            diags.len(),
            unwraps
        );
        return ExitCode::SUCCESS;
    }

    let report = match engine::lint_workspace_with_baseline(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    for d in &report.diags {
        emit(d, format, false);
    }
    if report.diags.is_empty() {
        let unwraps: usize = report.ratchet.values().sum();
        let panics: usize = report.panic_ratchet.values().sum();
        println!(
            "microedge-lint: {} files clean; unwrap-ratchet at {} and panic-path at {} \
             within baseline",
            report.files_scanned, unwraps, panics
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("microedge-lint: {} finding(s)", report.diags.len());
        ExitCode::FAILURE
    }
}

/// Print one diagnostic in the selected format. GitHub workflow commands
/// must keep the message on one line; newlines become `%0A` per the
/// Actions escaping rules.
fn emit(d: &Diagnostic, format: Format, warning: bool) {
    match format {
        Format::Text => println!("{d}"),
        Format::Github => {
            let level = if warning { "warning" } else { "error" };
            let msg = d
                .message
                .replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A");
            println!(
                "::{level} file={},line={},col={},title={}::{msg}",
                d.path, d.line, d.col, d.rule
            );
        }
    }
}

const USAGE: &str = "\
microedge-lint — determinism/robustness static analysis (see LINTS.md)

USAGE:
    cargo run -p microedge-lint [-- OPTIONS]

OPTIONS:
    --update-baseline   Recount ratchet debt (unwrap + panic-path) and rewrite
                        lint-baseline.toml
    --tests-report      Report-only sweep of tests/ trees (narrowing casts,
                        unwrap counts); always exits 0
    --format <fmt>      Output format: text (default) or github (Actions
                        inline annotations)
    --root <path>       Workspace root (default: walk up from the current dir)
    -h, --help          Show this help
";

fn usage(msg: &str) -> ExitCode {
    eprintln!("microedge-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("microedge-lint: {msg}");
    ExitCode::from(2)
}
