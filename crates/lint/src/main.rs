#![forbid(unsafe_code)]

//! `microedge-lint` binary: lint the workspace, or regenerate the ratchet
//! baseline with `--update-baseline`. Exit 0 when clean, 1 on findings,
//! 2 on usage/IO errors.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use microedge_lint::{baseline, engine};

fn main() -> ExitCode {
    let mut update_baseline = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root_arg.or_else(|| env::current_dir().ok().and_then(|d| engine::find_root(&d))) {
            Some(r) => r,
            None => return usage("could not locate the workspace root (run from inside the repo)"),
        };

    if update_baseline {
        let report = match engine::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => return fail(&format!("scan failed: {e}")),
        };
        let path = root.join(baseline::BASELINE_FILE);
        if let Err(e) = fs::write(&path, baseline::format(&report.ratchet)) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        let total: usize = report.ratchet.values().sum();
        println!(
            "microedge-lint: wrote {} ({} packages, {} total bare unwrap/empty expect)",
            path.display(),
            report.ratchet.len(),
            total
        );
        return ExitCode::SUCCESS;
    }

    let report = match engine::lint_workspace_with_baseline(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    for d in &report.diags {
        println!("{d}");
    }
    if report.diags.is_empty() {
        let total: usize = report.ratchet.values().sum();
        println!(
            "microedge-lint: {} files clean; unwrap-ratchet at {} within baseline",
            report.files_scanned, total
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("microedge-lint: {} finding(s)", report.diags.len());
        ExitCode::FAILURE
    }
}

const USAGE: &str = "\
microedge-lint — determinism/robustness static analysis (see LINTS.md)

USAGE:
    cargo run -p microedge-lint [-- OPTIONS]

OPTIONS:
    --update-baseline   Recount unwrap-ratchet debt and rewrite lint-baseline.toml
    --root <path>       Workspace root (default: walk up from the current dir)
    -h, --help          Show this help
";

fn usage(msg: &str) -> ExitCode {
    eprintln!("microedge-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("microedge-lint: {msg}");
    ExitCode::from(2)
}
