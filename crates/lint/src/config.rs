//! Per-crate / per-file scoping for the lint rules.
//!
//! The scoping is deliberately *code*, not a config file: changing where a
//! determinism rule applies is a reviewable source change to the lint crate,
//! with the same weight as changing the rule itself.

/// Rule identifiers, exactly as they appear in diagnostics and in
/// `lint:allow(<rule-id>)` escape hatches.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// See [`NO_WALL_CLOCK`].
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
/// See [`NO_WALL_CLOCK`].
pub const NO_UNORDERED_COLLECTIONS: &str = "no-unordered-collections";
/// See [`NO_WALL_CLOCK`].
pub const NO_PARTIAL_FLOAT_CMP: &str = "no-partial-float-cmp";
/// See [`NO_WALL_CLOCK`].
pub const NO_UNSAFE: &str = "no-unsafe";
/// See [`NO_WALL_CLOCK`].
pub const UNWRAP_RATCHET: &str = "unwrap-ratchet";
/// See [`NO_WALL_CLOCK`].
pub const TAINT_ARTIFACT_PATH: &str = "taint-artifact-path";
/// See [`NO_WALL_CLOCK`].
pub const NO_NARROWING_AS_CAST: &str = "no-narrowing-as-cast";
/// See [`NO_WALL_CLOCK`].
pub const PANIC_PATH_RATCHET: &str = "panic-path-ratchet";
/// Diagnostic id for malformed `lint:allow` directives themselves.
pub const BAD_ALLOW: &str = "bad-allow";

/// Every rule id that may legally appear in a `lint:allow(...)` directive.
pub const ALLOWABLE_RULES: &[&str] = &[
    NO_WALL_CLOCK,
    NO_AMBIENT_RNG,
    NO_UNORDERED_COLLECTIONS,
    NO_PARTIAL_FLOAT_CMP,
    NO_UNSAFE,
    TAINT_ARTIFACT_PATH,
    NO_NARROWING_AS_CAST,
];

/// The bench crate's measurement modules: the only places allowed to read
/// the host wall clock, because they time the *simulator itself* (replay
/// wall time, admission throughput). Everything else must take time from
/// the `EventQueue`.
pub const WALL_CLOCK_EXEMPT_FILES: &[&str] = &[
    "crates/bench/src/perf.rs",
    "crates/bench/src/admission_overhead.rs",
    "crates/bench/src/scale.rs",
    "crates/bench/src/scale_sharded.rs",
    "crates/bench/src/fleet.rs",
    "crates/bench/src/netchaos.rs",
    "crates/bench/src/defrag.rs",
];

/// Crates whose data structures feed byte-identical JSON artifacts: any
/// `HashMap`/`HashSet` iteration order here could silently reorder output.
pub const ORDERED_COLLECTIONS_CRATES: &[&str] = &[
    "crates/sim",
    "crates/core",
    "crates/orch",
    "crates/metrics",
    "crates/tpu",
    "crates/cluster",
];

/// Crates where every lossy integer `as` cast must be a checked
/// `try_into().expect("<invariant>")` or a widening: these hold the
/// conservation ledgers, unit types, and artifact math where a silent
/// truncation corrupts results instead of crashing.
pub const NARROWING_CAST_CRATES: &[&str] = &["crates/core", "crates/sim", "crates/metrics"];

/// Sink *function names* for the `taint-artifact-path` analysis: calling
/// one of these from a nondeterminism-tainted function is a finding. They
/// are the points where a value escapes into a committed artifact, a
/// metrics sketch, or a cross-shard/cross-cluster message.
pub const TAINT_SINK_NAMES: &[&str] = &[
    // artifact serializers
    "to_json",
    "write_csv",
    // metrics sketches / recorders
    "record",
    "record_ns",
    "record_duration",
    "merge",
    // cross-shard / cross-cluster message builders
    "schedule_command",
    "admit_global",
    "submit_control",
    "pump_control",
    "place",
];

/// Sink name *prefixes* (e.g. every `render_*` artifact writer).
pub const TAINT_SINK_PREFIXES: &[&str] = &["render_"];

/// Hot entry points for the `panic-path-ratchet`: `(file suffix,
/// qualified name)`. Panicking constructs reachable from these in the
/// call graph are counted against the per-crate baseline.
pub const PANIC_ENTRY_POINTS: &[(&str, &str)] = &[
    // the deterministic replay loop ("World::step" of the paper)
    ("crates/core/src/runtime.rs", "World::run_until"),
    ("crates/core/src/runtime.rs", "World::run_to_completion"),
    ("crates/core/src/runtime.rs", "World::dispatch"),
    // sharded epoch exchange
    (
        "crates/core/src/shard.rs",
        "ShardedWorld::run_to_completion",
    ),
    // federated placement front door
    ("crates/core/src/fleet.rs", "FrontDoor::place"),
];

/// Directory names never scanned, at any depth. `vendor` holds offline
/// stand-ins for external crates (not ours to lint), `target` is build
/// output.
pub const SKIP_DIRS: &[&str] = &[".git", "target", "vendor"];

/// The lint's own fixture corpus: deliberately-violating snippets that must
/// not count as workspace findings.
pub const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// True if `rule` applies to the workspace-relative path `rel`.
pub fn rule_enabled(rule: &str, rel: &str) -> bool {
    match rule {
        NO_WALL_CLOCK => !WALL_CLOCK_EXEMPT_FILES.contains(&rel),
        NO_UNORDERED_COLLECTIONS => ORDERED_COLLECTIONS_CRATES
            .iter()
            .any(|c| rel.strip_prefix(c).is_some_and(|r| r.starts_with('/'))),
        // The ratchet measures production robustness debt: integration-test
        // trees are excluded here, `#[cfg(test)]` modules by the scanner.
        UNWRAP_RATCHET => !rel.starts_with("tests/") && !rel.contains("/tests/"),
        NO_NARROWING_AS_CAST => {
            !rel.starts_with("tests/")
                && !rel.contains("/tests/")
                && NARROWING_CAST_CRATES
                    .iter()
                    .any(|c| rel.strip_prefix(c).is_some_and(|r| r.starts_with('/')))
        }
        // Taint runs per-crate over production code only; test trees never
        // feed artifacts.
        TAINT_ARTIFACT_PATH | PANIC_PATH_RATCHET => {
            !rel.starts_with("tests/") && !rel.contains("/tests/")
        }
        _ => true,
    }
}

/// True when `name` is a taint sink (exact name or configured prefix).
pub fn is_taint_sink(name: &str) -> bool {
    TAINT_SINK_NAMES.contains(&name) || TAINT_SINK_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The cargo package a workspace-relative path belongs to, as named in
/// `lint-baseline.toml` (`crates/core` -> `microedge-core`; the root
/// package's `src/`, `examples/`, `tests/` -> `microedge`).
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(dir) = rest.split('/').next() {
            return format!("microedge-{dir}");
        }
    }
    "microedge".to_string()
}
