//! Per-crate / per-file scoping for the lint rules.
//!
//! The scoping is deliberately *code*, not a config file: changing where a
//! determinism rule applies is a reviewable source change to the lint crate,
//! with the same weight as changing the rule itself.

/// Rule identifiers, exactly as they appear in diagnostics and in
/// `lint:allow(<rule-id>)` escape hatches.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// See [`NO_WALL_CLOCK`].
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
/// See [`NO_WALL_CLOCK`].
pub const NO_UNORDERED_COLLECTIONS: &str = "no-unordered-collections";
/// See [`NO_WALL_CLOCK`].
pub const NO_PARTIAL_FLOAT_CMP: &str = "no-partial-float-cmp";
/// See [`NO_WALL_CLOCK`].
pub const NO_UNSAFE: &str = "no-unsafe";
/// See [`NO_WALL_CLOCK`].
pub const UNWRAP_RATCHET: &str = "unwrap-ratchet";
/// Diagnostic id for malformed `lint:allow` directives themselves.
pub const BAD_ALLOW: &str = "bad-allow";

/// Every rule id that may legally appear in a `lint:allow(...)` directive.
pub const ALLOWABLE_RULES: &[&str] = &[
    NO_WALL_CLOCK,
    NO_AMBIENT_RNG,
    NO_UNORDERED_COLLECTIONS,
    NO_PARTIAL_FLOAT_CMP,
    NO_UNSAFE,
];

/// The bench crate's measurement modules: the only places allowed to read
/// the host wall clock, because they time the *simulator itself* (replay
/// wall time, admission throughput). Everything else must take time from
/// the `EventQueue`.
pub const WALL_CLOCK_EXEMPT_FILES: &[&str] = &[
    "crates/bench/src/perf.rs",
    "crates/bench/src/admission_overhead.rs",
    "crates/bench/src/scale.rs",
    "crates/bench/src/scale_sharded.rs",
    "crates/bench/src/fleet.rs",
    "crates/bench/src/netchaos.rs",
    "crates/bench/src/defrag.rs",
];

/// Crates whose data structures feed byte-identical JSON artifacts: any
/// `HashMap`/`HashSet` iteration order here could silently reorder output.
pub const ORDERED_COLLECTIONS_CRATES: &[&str] = &[
    "crates/sim",
    "crates/core",
    "crates/orch",
    "crates/metrics",
    "crates/tpu",
    "crates/cluster",
];

/// Directory names never scanned, at any depth. `vendor` holds offline
/// stand-ins for external crates (not ours to lint), `target` is build
/// output.
pub const SKIP_DIRS: &[&str] = &[".git", "target", "vendor"];

/// The lint's own fixture corpus: deliberately-violating snippets that must
/// not count as workspace findings.
pub const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// True if `rule` applies to the workspace-relative path `rel`.
pub fn rule_enabled(rule: &str, rel: &str) -> bool {
    match rule {
        NO_WALL_CLOCK => !WALL_CLOCK_EXEMPT_FILES.contains(&rel),
        NO_UNORDERED_COLLECTIONS => ORDERED_COLLECTIONS_CRATES
            .iter()
            .any(|c| rel.strip_prefix(c).is_some_and(|r| r.starts_with('/'))),
        // The ratchet measures production robustness debt: integration-test
        // trees are excluded here, `#[cfg(test)]` modules by the scanner.
        UNWRAP_RATCHET => !rel.starts_with("tests/") && !rel.contains("/tests/"),
        _ => true,
    }
}

/// The cargo package a workspace-relative path belongs to, as named in
/// `lint-baseline.toml` (`crates/core` -> `microedge-core`; the root
/// package's `src/`, `examples/`, `tests/` -> `microedge`).
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(dir) = rest.split('/').next() {
            return format!("microedge-{dir}");
        }
    }
    "microedge".to_string()
}
