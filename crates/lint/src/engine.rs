//! Workspace walking and the top-level lint entry points.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::config::{self, crate_of};
use crate::rules::{scan_file, Diagnostic};

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All rule and `bad-allow` diagnostics, sorted by `(path, line, col)`.
    pub diags: Vec<Diagnostic>,
    /// Measured unwrap-ratchet counts per cargo package (crates with zero
    /// debt included, so the baseline lists every package explicitly).
    pub ratchet: BTreeMap<String, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collect every workspace `.rs` file under `root`, depth-first in sorted
/// order (deterministic output), skipping `vendor/`, `target/`, `.git/`,
/// and the lint's own deliberately-violating fixture corpus.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name.as_ref()) || rel == config::FIXTURE_DIR {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every workspace `.rs` file under `root`. Does *not* apply the
/// ratchet baseline — see [`lint_workspace_with_baseline`].
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    // Seed every package so a debt-free crate still appears (as 0) in the
    // regenerated baseline, keeping the committed file exhaustive.
    for krate in packages(root)? {
        report.ratchet.insert(krate, 0);
    }
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        let findings = scan_file(&rel, &src);
        report.diags.extend(findings.diags);
        *report.ratchet.entry(crate_of(&rel)).or_insert(0) += findings.unwrap_count;
        report.files_scanned += 1;
    }
    report
        .diags
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Lint the workspace and fold in ratchet-baseline violations. A missing
/// or unparseable baseline file is itself a failure (the gate must never
/// silently pass because the ratchet got lost).
pub fn lint_workspace_with_baseline(root: &Path) -> io::Result<Report> {
    let mut report = lint_workspace(root)?;
    let baseline_path = root.join(baseline::BASELINE_FILE);
    match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(base) => report.diags.extend(baseline::check(&report.ratchet, &base)),
            Err(e) => report.diags.push(baseline_error(format!(
                "{} is malformed ({e}); fix it or regenerate with --update-baseline",
                baseline::BASELINE_FILE
            ))),
        },
        Err(_) => report.diags.push(baseline_error(format!(
            "{} not found at the workspace root; regenerate with --update-baseline",
            baseline::BASELINE_FILE
        ))),
    }
    Ok(report)
}

fn baseline_error(message: String) -> Diagnostic {
    Diagnostic {
        rule: config::UNWRAP_RATCHET,
        path: baseline::BASELINE_FILE.to_string(),
        line: 1,
        col: 1,
        message,
    }
}

/// The cargo packages the ratchet tracks: the root package plus every
/// `crates/*` member, by baseline key name.
fn packages(root: &Path) -> io::Result<Vec<String>> {
    let mut out = vec!["microedge".to_string()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        out.extend(names.into_iter().map(|n| format!("microedge-{n}")));
    }
    Ok(out)
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
