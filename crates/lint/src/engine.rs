//! Workspace walking and the top-level lint entry points.
//!
//! Linting runs in two phases: a per-file pass (token-sequence rules,
//! unwrap counting, fact extraction) followed by per-crate flow analyses
//! over the assembled call graphs (`taint-artifact-path` and the
//! `panic-path-ratchet` debt measure).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::callgraph::{CrateGraph, FnDef};
use crate::config::{self, crate_of};
use crate::rules::{analyze_file, AllowDirective, Diagnostic};
use crate::taint;

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All rule and `bad-allow` diagnostics, sorted by `(path, line, col)`.
    pub diags: Vec<Diagnostic>,
    /// Measured unwrap-ratchet counts per cargo package (crates with zero
    /// debt included, so the baseline lists every package explicitly).
    pub ratchet: BTreeMap<String, usize>,
    /// Measured panic-path debt per cargo package: panicking constructs
    /// reachable from the hot entry points in that crate's call graph.
    pub panic_ratchet: BTreeMap<String, usize>,
    /// Per-function panic-path breakdown, heaviest first:
    /// `(qualified name, file, line, count)`.
    pub panic_breakdown: Vec<(String, String, u32, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collect every workspace `.rs` file under `root`, depth-first in sorted
/// order (deterministic output), skipping `vendor/`, `target/`, `.git/`,
/// and the lint's own deliberately-violating fixture corpus.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if config::SKIP_DIRS.contains(&name.as_ref()) || rel == config::FIXTURE_DIR {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every workspace `.rs` file under `root`. Does *not* apply the
/// ratchet baseline — see [`lint_workspace_with_baseline`].
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    // Seed every package so a debt-free crate still appears (as 0) in the
    // regenerated baseline, keeping the committed file exhaustive.
    for krate in packages(root)? {
        report.ratchet.insert(krate.clone(), 0);
        report.panic_ratchet.insert(krate, 0);
    }

    // Phase 1: per-file rules + fact extraction.
    let mut crate_fns: BTreeMap<String, Vec<FnDef>> = BTreeMap::new();
    let mut file_allows: BTreeMap<String, Vec<AllowDirective>> = BTreeMap::new();
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        let analysis = analyze_file(&rel, &src);
        report.diags.extend(analysis.findings.diags);
        *report.ratchet.entry(crate_of(&rel)).or_insert(0) += analysis.findings.unwrap_count;
        if config::rule_enabled(config::TAINT_ARTIFACT_PATH, &rel) {
            let mut fns: Vec<FnDef> = analysis.fns.into_iter().filter(|f| !f.is_test).collect();
            // The bench measurement modules are sanctioned wall-clock
            // readers (see WALL_CLOCK_EXEMPT_FILES): their host timings
            // land in `host_*` artifact lines that the determinism gate
            // strips before byte-comparison. Dropping that source class
            // here keeps taint focused on *unsanctioned* flows instead of
            // re-reporting the sanctioned one at every downstream sink.
            if config::WALL_CLOCK_EXEMPT_FILES.contains(&rel.as_str()) {
                for f in &mut fns {
                    f.sources.retain(|s| s.kind != "wall-clock");
                }
            }
            crate_fns.entry(crate_of(&rel)).or_default().extend(fns);
        }
        if !analysis.allows.is_empty() {
            file_allows.insert(rel.clone(), analysis.allows);
        }
        report.files_scanned += 1;
    }

    // Phase 2: per-crate flow analyses over the call graphs.
    for (krate, fns) in crate_fns {
        let graph = CrateGraph::build(fns);
        for d in taint::taint_artifact_path(&graph) {
            let covered = file_allows
                .get(&d.path)
                .is_some_and(|allows| allows.iter().any(|a| a.covers(d.rule, d.line)));
            if !covered {
                report.diags.push(d);
            }
        }
        let (debt, breakdown) = taint::panic_path_debt(&graph);
        *report.panic_ratchet.entry(krate).or_insert(0) += debt;
        report.panic_breakdown.extend(breakdown);
    }
    report
        .panic_breakdown
        .sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));

    report
        .diags
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Lint the workspace and fold in ratchet-baseline violations. A missing
/// or unparseable baseline file is itself a failure (the gate must never
/// silently pass because the ratchet got lost).
pub fn lint_workspace_with_baseline(root: &Path) -> io::Result<Report> {
    let mut report = lint_workspace(root)?;
    let baseline_path = root.join(baseline::BASELINE_FILE);
    match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(base) => report.diags.extend(baseline::check(
                &report.ratchet,
                &report.panic_ratchet,
                &base,
            )),
            Err(e) => report.diags.push(baseline_error(format!(
                "{} is malformed ({e}); fix it or regenerate with --update-baseline",
                baseline::BASELINE_FILE
            ))),
        },
        Err(_) => report.diags.push(baseline_error(format!(
            "{} not found at the workspace root; regenerate with --update-baseline",
            baseline::BASELINE_FILE
        ))),
    }
    Ok(report)
}

/// Report-only sweep of the integration-test trees (`tests/` directories)
/// that the hard rules skip: runs the unwrap counter and the narrowing
/// scan over them with test masking off, purely informational. Returns
/// `(diagnostics, unwrap-count)` — findings here never gate.
pub fn lint_test_trees(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    use crate::tokenizer::{tokenize, TokKind, Token};

    let mut diags = Vec::new();
    let mut unwraps = 0usize;
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        if !(rel.starts_with("tests/") || rel.contains("/tests/")) {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        let toks = tokenize(&src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        // In a test tree everything is "test code"; report with the mask
        // off so the sweep actually sees the files it exists to cover.
        let no_mask = vec![false; sig.len()];
        crate::rules::narrowing_casts_for_report(&rel, &sig, &no_mask, &mut diags);
        unwraps += crate::rules::unwraps_for_report(&sig, &no_mask);
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok((diags, unwraps))
}

fn baseline_error(message: String) -> Diagnostic {
    Diagnostic {
        rule: config::UNWRAP_RATCHET,
        path: baseline::BASELINE_FILE.to_string(),
        line: 1,
        col: 1,
        message,
    }
}

/// The cargo packages the ratchet tracks: the root package plus every
/// `crates/*` member, by baseline key name.
fn packages(root: &Path) -> io::Result<Vec<String>> {
    let mut out = vec!["microedge".to_string()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        out.extend(names.into_iter().map(|n| format!("microedge-{n}")));
    }
    Ok(out)
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
