//! Synthetic Azure-Functions-style camera trace (paper §6.3).
//!
//! The paper drives its real-world study with the Microsoft Azure Functions
//! (MAF) trace, mapping each function invocation to a camera stream and
//! downsizing to cluster capacity while retaining the functions' diversity.
//! It ascribes three behaviours to its three models:
//!
//! - **steady** — cameras that process 24×7 (continuous vehicle detection);
//! - **sparse** — occasional short-lived invocations (classification);
//! - **bursty** — clustered arrivals (segmentation bursts).
//!
//! The original trace is proprietary-licensed and two weeks long, so we
//! synthesise those three invocation classes directly with a seeded
//! generator: steady streams arrive once and never leave, sparse streams
//! follow a Poisson process with exponential dwell, and bursty streams
//! arrive in Poisson-timed groups. Every draw is deterministic per seed.

use serde::{Deserialize, Serialize};

use microedge_sim::rng::DetRng;
use microedge_sim::time::{SimDuration, SimTime};

/// Which invocation class a trace event belongs to (indexes
/// [`crate::apps::CameraApp::trace_apps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceClass {
    /// 24×7 processing.
    Steady,
    /// Sparse, short invocations.
    Sparse,
    /// Bursty group arrivals.
    Bursty,
}

impl TraceClass {
    /// Index into the `[steady, sparse, bursty]` application array.
    #[must_use]
    pub fn app_index(self) -> usize {
        match self {
            TraceClass::Steady => 0,
            TraceClass::Sparse => 1,
            TraceClass::Bursty => 2,
        }
    }
}

/// One camera arrival in the synthesised trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the camera requests admission.
    pub at: SimTime,
    /// Which application class it runs.
    pub class: TraceClass,
    /// How long it stays; `None` = until the end of the trace.
    pub lifetime: Option<SimDuration>,
    /// Unique sequence number within the trace.
    pub seq: u32,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Length of the synthesised trace.
    pub duration: SimDuration,
    /// Number of 24×7 cameras.
    pub steady_cameras: u32,
    /// Sparse arrivals per minute.
    pub sparse_rate_per_min: f64,
    /// Mean sparse dwell time.
    pub sparse_dwell_mean: SimDuration,
    /// Bursts per minute.
    pub burst_rate_per_min: f64,
    /// Mean cameras per burst (≥ 1).
    pub burst_size_mean: f64,
    /// Mean bursty dwell time.
    pub burst_dwell_mean: SimDuration,
    /// Optional diurnal cycle: when set, sparse and bursty arrival rates
    /// swing ±75 % around their base over one period (MAF-style day/night
    /// pattern). The period is typically 24 h; shorter periods compress
    /// the cycle for quicker experiments.
    pub diurnal_period: Option<SimDuration>,
}

impl TraceConfig {
    /// A 30-minute trace downsized to the 6-TPU MicroEdge cluster, mirroring
    /// the paper's "fit the limited capacity" adjustment.
    #[must_use]
    pub fn microedge_downsized() -> Self {
        TraceConfig {
            duration: SimDuration::from_secs(30 * 60),
            steady_cameras: 4,
            sparse_rate_per_min: 1.2,
            sparse_dwell_mean: SimDuration::from_secs(150),
            burst_rate_per_min: 0.35,
            burst_size_mean: 3.0,
            burst_dwell_mean: SimDuration::from_secs(100),
            diurnal_period: None,
        }
    }

    /// Enables the diurnal cycle with the given period.
    #[must_use]
    pub fn with_diurnal_period(mut self, period: SimDuration) -> Self {
        self.diurnal_period = Some(period);
        self
    }

    /// Scales every arrival rate and the steady population by `factor`
    /// (the paper's downsizing knob).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.steady_cameras = ((self.steady_cameras as f64 * factor).round() as u32).max(1);
        self.sparse_rate_per_min *= factor;
        self.burst_rate_per_min *= factor;
        self
    }
}

impl Default for TraceConfig {
    /// The downsized MicroEdge trace.
    fn default() -> Self {
        TraceConfig::microedge_downsized()
    }
}

/// Relative arrival intensity at `t` for the configured diurnal cycle:
/// `1 + 0.75·sin(2πt/period)`, or 1.0 with no cycle.
fn diurnal_factor(config: &TraceConfig, t: SimDuration) -> f64 {
    match config.diurnal_period {
        Some(period) => {
            let phase = std::f64::consts::TAU * t.as_secs_f64() / period.as_secs_f64();
            1.0 + 0.75 * phase.sin()
        }
        None => 1.0,
    }
}

/// Peak of [`diurnal_factor`], used for Poisson thinning.
const DIURNAL_PEAK: f64 = 1.75;

/// Synthesises a trace: all events sorted by arrival time, sequence numbers
/// in emission order. When a diurnal period is configured, sparse and
/// bursty arrivals follow a non-homogeneous Poisson process (thinning).
///
/// # Examples
///
/// ```
/// use microedge_workloads::trace::{synthesize, TraceConfig};
///
/// let trace = synthesize(&TraceConfig::microedge_downsized(), 42);
/// assert!(!trace.is_empty());
/// assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[must_use]
pub fn synthesize(config: &TraceConfig, seed: u64) -> Vec<TraceEvent> {
    let mut rng = DetRng::seed_from(seed);
    let mut events = Vec::new();

    // Steady cameras: arrive in the first seconds, never leave.
    let mut steady_rng = rng.fork(1);
    for i in 0..config.steady_cameras {
        let jitter = steady_rng.uniform_range(0, 5_000);
        events.push((
            SimTime::from_millis(u64::from(i) * 500 + jitter),
            TraceClass::Steady,
            None,
        ));
    }

    // Sparse: Poisson arrivals, exponential dwell.
    let mut sparse_rng = rng.fork(2);
    if config.sparse_rate_per_min > 0.0 {
        // Non-homogeneous Poisson via thinning: draw at the diurnal peak
        // rate, accept proportionally to the instantaneous intensity.
        let peak_rate = config.sparse_rate_per_min * DIURNAL_PEAK;
        let mean_gap = SimDuration::from_secs_f64(60.0 / peak_rate);
        let mut cursor = SimDuration::ZERO;
        loop {
            cursor += sparse_rng.exponential_duration(mean_gap);
            if cursor >= config.duration {
                break;
            }
            if !sparse_rng.chance(diurnal_factor(config, cursor) / DIURNAL_PEAK) {
                continue;
            }
            let dwell = sparse_rng.exponential_duration(config.sparse_dwell_mean);
            events.push((SimTime::ZERO + cursor, TraceClass::Sparse, Some(dwell)));
        }
    }

    // Bursty: Poisson-timed bursts of several cameras each.
    let mut bursty_rng = rng.fork(3);
    if config.burst_rate_per_min > 0.0 {
        let peak_rate = config.burst_rate_per_min * DIURNAL_PEAK;
        let mean_gap = SimDuration::from_secs_f64(60.0 / peak_rate);
        let mut cursor = SimDuration::ZERO;
        loop {
            cursor += bursty_rng.exponential_duration(mean_gap);
            if cursor >= config.duration {
                break;
            }
            if !bursty_rng.chance(diurnal_factor(config, cursor) / DIURNAL_PEAK) {
                continue;
            }
            let size = 1 + bursty_rng.poisson((config.burst_size_mean - 1.0).max(0.0));
            for k in 0..size {
                let stagger = SimDuration::from_millis(k * 200);
                let dwell = bursty_rng.exponential_duration(config.burst_dwell_mean);
                events.push((
                    SimTime::ZERO + cursor + stagger,
                    TraceClass::Bursty,
                    Some(dwell),
                ));
            }
        }
    }

    events.sort_by_key(|&(at, _, _)| at);
    events
        .into_iter()
        .enumerate()
        .map(|(i, (at, class, lifetime))| TraceEvent {
            at,
            class,
            lifetime,
            seq: i as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::microedge_downsized();
        assert_eq!(synthesize(&cfg, 9), synthesize(&cfg, 9));
        assert_ne!(synthesize(&cfg, 9), synthesize(&cfg, 10));
    }

    #[test]
    fn trace_is_sorted_with_unique_seqs() {
        let trace = synthesize(&TraceConfig::microedge_downsized(), 1);
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for (i, ev) in trace.iter().enumerate() {
            assert_eq!(ev.seq as usize, i);
        }
    }

    #[test]
    fn steady_cameras_arrive_early_and_stay() {
        let trace = synthesize(&TraceConfig::microedge_downsized(), 2);
        let steady: Vec<&TraceEvent> = trace
            .iter()
            .filter(|e| e.class == TraceClass::Steady)
            .collect();
        assert_eq!(steady.len(), 4);
        for e in steady {
            assert!(e.lifetime.is_none());
            assert!(e.at < SimTime::from_secs(10));
        }
    }

    #[test]
    fn class_mix_matches_configuration() {
        let cfg = TraceConfig::microedge_downsized();
        let trace = synthesize(&cfg, 3);
        let sparse = trace
            .iter()
            .filter(|e| e.class == TraceClass::Sparse)
            .count();
        let bursty = trace
            .iter()
            .filter(|e| e.class == TraceClass::Bursty)
            .count();
        // 30 min at 1.2/min ≈ 36 sparse arrivals; bursts 0.35/min × ~3 ≈ 31.
        assert!((20..=55).contains(&sparse), "sparse {sparse}");
        assert!((12..=60).contains(&bursty), "bursty {bursty}");
    }

    #[test]
    fn all_arrivals_inside_duration() {
        let cfg = TraceConfig::microedge_downsized();
        let trace = synthesize(&cfg, 4);
        let end = SimTime::ZERO + cfg.duration + SimDuration::from_secs(2);
        assert!(trace.iter().all(|e| e.at < end));
    }

    #[test]
    fn scaling_changes_population() {
        let base = TraceConfig::microedge_downsized();
        let double = base.scaled(2.0);
        assert_eq!(double.steady_cameras, 8);
        let t1 = synthesize(&base, 5).len();
        let t2 = synthesize(&double, 5).len();
        assert!(t2 > t1, "scaled trace should contain more arrivals");
    }

    #[test]
    fn app_index_mapping() {
        assert_eq!(TraceClass::Steady.app_index(), 0);
        assert_eq!(TraceClass::Sparse.app_index(), 1);
        assert_eq!(TraceClass::Bursty.app_index(), 2);
    }

    #[test]
    fn diurnal_cycle_modulates_arrivals() {
        // One full cycle over the trace: the first half (rising intensity)
        // must carry substantially more arrivals than the second half
        // (falling intensity), since sin is positive in the first half.
        let mut cfg =
            TraceConfig::microedge_downsized().with_diurnal_period(SimDuration::from_secs(60 * 60));
        cfg.duration = SimDuration::from_secs(60 * 60);
        cfg.steady_cameras = 0;
        cfg.sparse_rate_per_min = 4.0;
        cfg.burst_rate_per_min = 0.0;
        let trace = synthesize(&cfg, 21);
        let half = SimTime::ZERO + cfg.duration / 2;
        let first = trace.iter().filter(|e| e.at < half).count();
        let second = trace.len() - first;
        assert!(
            first as f64 > second as f64 * 1.6,
            "diurnal skew expected: {first} vs {second}"
        );
        // Mean rate is preserved (thinning is unbiased): ≈ 4/min × 60 min.
        assert!(
            (150..=330).contains(&trace.len()),
            "total arrivals {}",
            trace.len()
        );
    }

    #[test]
    fn no_diurnal_period_means_uniform_rate() {
        let mut cfg = TraceConfig::microedge_downsized();
        cfg.duration = SimDuration::from_secs(60 * 60);
        cfg.steady_cameras = 0;
        cfg.sparse_rate_per_min = 4.0;
        cfg.burst_rate_per_min = 0.0;
        let trace = synthesize(&cfg, 21);
        let half = SimTime::ZERO + cfg.duration / 2;
        let first = trace.iter().filter(|e| e.at < half).count();
        let second = trace.len() - first;
        let ratio = first as f64 / second.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = TraceConfig::microedge_downsized().scaled(0.0);
    }
}
