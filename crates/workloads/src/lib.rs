#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-workloads — camera workloads for the evaluation
//!
//! Everything the paper's experiments feed into the cluster:
//!
//! - [`apps`] — the evaluation applications (Coral-Pie, BodyPix, the three
//!   trace-study apps) and the NoScope-style difference detector;
//! - [`camera`] — fleet builders turning an app template into staggered
//!   stream specs;
//! - [`dataset`] — synthetic stand-ins for the campus security video and
//!   3DPeople images, including a seeded vehicle-visit generator;
//! - [`trace`] — the Azure-Functions-style trace synthesiser (steady /
//!   sparse / bursty invocation classes, optional diurnal cycle);
//! - [`coralpie`] — the Coral-Pie application layer: camera graphs,
//!   upstream-notification re-identification, and space-time tracks.
//!
//! # Examples
//!
//! ```
//! use microedge_workloads::apps::CameraApp;
//! use microedge_workloads::camera::camera_fleet;
//!
//! let fleet = camera_fleet(&CameraApp::coral_pie(), 17, 1000, false);
//! assert_eq!(fleet.len(), 17);
//! ```

pub mod apps;
pub mod camera;
pub mod coralpie;
pub mod dataset;
pub mod trace;

pub use apps::{CameraApp, DiffDetector, STANDARD_FPS};
pub use camera::{camera_fleet, camera_instance, filtered_instance, open_stream};
pub use coralpie::{CameraGraph, CameraId, Observation, SpaceTimeTrack, TrackBuilder};
pub use dataset::{campus_vehicle_visits, time_shifted, VehicleVisit, VideoSegment};
pub use trace::{synthesize, TraceClass, TraceConfig, TraceEvent};
