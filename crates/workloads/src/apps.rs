//! The evaluation applications (paper §6.1).
//!
//! - **Coral-Pie** — space-time vehicle tracking; its detection pipeline
//!   runs SSD MobileNet V2 at 15 FPS and needs 0.35 TPU units;
//! - **BodyPix** — real-time person segmentation; BodyPix MobileNet V1 at
//!   15 FPS needs 1.2 TPU units, so a dedicated deployment requires two
//!   TPUs per camera;
//! - the three **trace-study** applications (§6.3): a 24×7 detection
//!   stream, a sparse classification stream, and a bursty segmentation
//!   stream.

use serde::{Deserialize, Serialize};

use microedge_core::units::TpuUnits;
use microedge_models::profile::ModelId;

/// The industry-recommended camera frame rate the paper uses everywhere.
pub const STANDARD_FPS: f64 = 15.0;

/// A camera application template: which model it runs, at what rate, and
/// the TPU units its Yaml file declares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraApp {
    name: String,
    model: ModelId,
    fps: f64,
    units: TpuUnits,
}

impl CameraApp {
    /// Creates an application template.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive or `units` is zero.
    #[must_use]
    pub fn new(name: &str, model: &str, fps: f64, units: TpuUnits) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        assert!(!units.is_zero(), "a camera app needs TPU units");
        CameraApp {
            name: name.to_owned(),
            model: ModelId::new(model),
            fps,
            units,
        }
    }

    /// Coral-Pie's vehicle-detection pipeline: SSD MobileNet V2, 15 FPS,
    /// 0.35 TPU units.
    #[must_use]
    pub fn coral_pie() -> Self {
        CameraApp::new(
            "coral-pie",
            "ssd-mobilenet-v2",
            STANDARD_FPS,
            TpuUnits::from_f64(0.35),
        )
    }

    /// BodyPix person segmentation: BodyPix MobileNet V1, 15 FPS, 1.2 TPU
    /// units (needs workload partitioning or two dedicated TPUs).
    #[must_use]
    pub fn bodypix() -> Self {
        CameraApp::new(
            "bodypix",
            "bodypix-mobilenet-v1",
            STANDARD_FPS,
            TpuUnits::from_f64(1.2),
        )
    }

    /// The 24×7 trace-study application: continuous vehicle detection.
    #[must_use]
    pub fn trace_steady() -> Self {
        CameraApp::coral_pie()
    }

    /// The sparse trace-study application: MobileNet V1 classification,
    /// 0.215 TPU units.
    #[must_use]
    pub fn trace_sparse() -> Self {
        CameraApp::new(
            "mobilenet-cls",
            "mobilenet-v1",
            STANDARD_FPS,
            TpuUnits::from_f64(0.215),
        )
    }

    /// The bursty trace-study application: UNet V2 segmentation, 0.675 TPU
    /// units.
    #[must_use]
    pub fn trace_bursty() -> Self {
        CameraApp::new(
            "unet-seg",
            "unet-v2",
            STANDARD_FPS,
            TpuUnits::from_f64(0.675),
        )
    }

    /// The three trace-study applications in `[steady, sparse, bursty]`
    /// order.
    #[must_use]
    pub fn trace_apps() -> [CameraApp; 3] {
        [
            CameraApp::trace_steady(),
            CameraApp::trace_sparse(),
            CameraApp::trace_bursty(),
        ]
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model the pipeline runs.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.model
    }

    /// Frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The TPU units the app's Yaml declares.
    #[must_use]
    pub fn units(&self) -> TpuUnits {
        self.units
    }

    /// The frame interval.
    #[must_use]
    pub fn frame_interval(&self) -> microedge_sim::time::SimDuration {
        microedge_sim::time::SimDuration::from_secs_f64(1.0 / self.fps)
    }
}

/// NoScope-style difference detector (paper §1): a cheap frame filter that
/// forwards only frames that differ enough from the previous one, reducing
/// the effective TPU demand of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffDetector {
    pass_rate: f64,
}

impl DiffDetector {
    /// Creates a detector passing the given fraction of frames.
    ///
    /// # Panics
    ///
    /// Panics if `pass_rate` is outside `(0, 1]`.
    #[must_use]
    pub fn new(pass_rate: f64) -> Self {
        assert!(
            pass_rate > 0.0 && pass_rate <= 1.0,
            "pass rate must be in (0, 1], got {pass_rate}"
        );
        DiffDetector { pass_rate }
    }

    /// The calibration the paper implies: adding the difference detector to
    /// Coral-Pie dropped TPU utilization from 30 % to 20 %, i.e. about 2/3
    /// of frames reach the TPU.
    #[must_use]
    pub fn coral_pie_calibrated() -> Self {
        DiffDetector::new(2.0 / 3.0)
    }

    /// Fraction of frames forwarded to the TPU.
    #[must_use]
    pub fn pass_rate(&self) -> f64 {
        self.pass_rate
    }

    /// The effective TPU demand of an app behind this filter.
    #[must_use]
    pub fn effective_units(&self, units: TpuUnits) -> TpuUnits {
        TpuUnits::from_f64(units.as_f64() * self.pass_rate)
    }

    /// The effective frame rate reaching the TPU.
    #[must_use]
    pub fn effective_fps(&self, fps: f64) -> f64 {
        fps * self.pass_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_pie_matches_paper_numbers() {
        let app = CameraApp::coral_pie();
        assert_eq!(app.model().as_str(), "ssd-mobilenet-v2");
        assert_eq!(app.fps(), 15.0);
        assert_eq!(app.units(), TpuUnits::from_f64(0.35));
        assert_eq!(app.frame_interval().as_nanos(), 66_666_667);
    }

    #[test]
    fn bodypix_needs_more_than_one_tpu() {
        let app = CameraApp::bodypix();
        assert_eq!(app.units(), TpuUnits::from_f64(1.2));
        assert_eq!(app.units().whole_tpus_needed(), 2);
    }

    #[test]
    fn trace_apps_cover_three_models() {
        let apps = CameraApp::trace_apps();
        let models: Vec<&str> = apps.iter().map(|a| a.model().as_str()).collect();
        assert_eq!(models, vec!["ssd-mobilenet-v2", "mobilenet-v1", "unet-v2"]);
    }

    #[test]
    fn declared_units_match_offline_profiling() {
        // The Yaml-declared units must agree with what the offline
        // profiling service would compute.
        use microedge_core::config::DataPlaneConfig;
        use microedge_models::catalog::Catalog;
        let dp = DataPlaneConfig::calibrated();
        let catalog = Catalog::builtin();
        for app in [
            CameraApp::coral_pie(),
            CameraApp::bodypix(),
            CameraApp::trace_sparse(),
            CameraApp::trace_bursty(),
        ] {
            let profile = catalog.expect(app.model());
            assert_eq!(
                dp.profiled_units(profile, app.fps()),
                app.units(),
                "{}",
                app.name()
            );
        }
    }

    #[test]
    fn diff_detector_reduces_demand() {
        let dd = DiffDetector::coral_pie_calibrated();
        let reduced = dd.effective_units(TpuUnits::from_f64(0.3));
        assert_eq!(reduced, TpuUnits::from_f64(0.2));
        assert!((dd.effective_fps(15.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pass rate")]
    fn zero_pass_rate_rejected() {
        let _ = DiffDetector::new(0.0);
    }

    #[test]
    #[should_panic(expected = "TPU units")]
    fn zero_unit_app_rejected() {
        let _ = CameraApp::new("x", "m", 15.0, TpuUnits::ZERO);
    }
}
