//! Camera fleets: turning an application template into stream specs.
//!
//! The scalability study (paper §6.2) runs N identical camera instances of
//! one application. Real cameras are not phase-aligned, so the fleet
//! staggers stream start offsets evenly across one frame interval.

use microedge_core::runtime::StreamSpec;
use microedge_sim::time::SimDuration;

use crate::apps::{CameraApp, DiffDetector};

/// Builds `count` stream specs for `app`, each processing `frames` frames,
/// with start offsets staggered evenly across one frame interval.
///
/// # Panics
///
/// Panics if `count` is zero.
///
/// # Examples
///
/// ```
/// use microedge_workloads::apps::CameraApp;
/// use microedge_workloads::camera::camera_fleet;
///
/// let fleet = camera_fleet(&CameraApp::coral_pie(), 3, 1000, false);
/// assert_eq!(fleet.len(), 3);
/// assert_eq!(fleet[0].name(), "coral-pie-0");
/// ```
#[must_use]
pub fn camera_fleet(
    app: &CameraApp,
    count: usize,
    frames: u64,
    collocated: bool,
) -> Vec<StreamSpec> {
    assert!(count > 0, "a fleet needs at least one camera");
    let interval = app.frame_interval();
    (0..count)
        .map(|i| {
            let offset = interval.mul_f64(i as f64 / count as f64);
            camera_instance(
                app,
                &format!("{}-{i}", app.name()),
                frames,
                offset,
                collocated,
            )
        })
        .collect()
}

/// Builds a single stream spec for one camera instance of `app`.
#[must_use]
pub fn camera_instance(
    app: &CameraApp,
    name: &str,
    frames: u64,
    start_offset: SimDuration,
    collocated: bool,
) -> StreamSpec {
    StreamSpec::builder(name, app.model().as_str())
        .fps(app.fps())
        .units(app.units())
        .frame_limit(frames)
        .start_offset(start_offset)
        .collocated(collocated)
        .build()
}

/// Builds an open-ended stream (no frame limit) for trace replay.
#[must_use]
pub fn open_stream(app: &CameraApp, name: &str, start_offset: SimDuration) -> StreamSpec {
    StreamSpec::builder(name, app.model().as_str())
        .fps(app.fps())
        .units(app.units())
        .start_offset(start_offset)
        .build()
}

/// Builds a camera instance running behind a NoScope-style difference
/// detector (paper §1): the declared TPU units shrink to the detector's
/// effective demand and the data plane drops the filtered frames
/// client-side.
#[must_use]
pub fn filtered_instance(
    app: &CameraApp,
    detector: DiffDetector,
    name: &str,
    frames: u64,
    seed: u64,
) -> StreamSpec {
    StreamSpec::builder(name, app.model().as_str())
        .fps(app.fps())
        .units(detector.effective_units(app.units()))
        .frame_filter(detector.pass_rate(), seed)
        .frame_limit(frames)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_staggered_offsets() {
        let fleet = camera_fleet(&CameraApp::coral_pie(), 4, 100, false);
        assert_eq!(fleet.len(), 4);
        let names: Vec<&str> = fleet.iter().map(StreamSpec::name).collect();
        assert_eq!(
            names,
            vec!["coral-pie-0", "coral-pie-1", "coral-pie-2", "coral-pie-3"]
        );
    }

    #[test]
    fn instance_carries_app_parameters() {
        let app = CameraApp::bodypix();
        let spec = camera_instance(&app, "seg-0", 50, SimDuration::ZERO, true);
        assert_eq!(spec.model().as_str(), "bodypix-mobilenet-v1");
        assert_eq!(spec.fps(), 15.0);
    }

    #[test]
    fn open_stream_has_no_frame_limit() {
        // Admit into a world and verify it keeps emitting past any frame
        // count a limit would allow.
        use microedge_cluster::topology::ClusterBuilder;
        use microedge_core::config::Features;
        use microedge_core::runtime::World;
        use microedge_sim::time::SimTime;

        let cluster = ClusterBuilder::new().trpis(1).vrpis(2).build();
        let mut world = World::new(cluster, Features::all());
        let spec = open_stream(&CameraApp::coral_pie(), "cam", SimDuration::ZERO);
        let id = world.admit_stream(spec).unwrap();
        world.run_until(SimTime::from_secs(10));
        let results = world.finish(SimTime::from_secs(10));
        assert!(results.report(id).unwrap().emitted() > 140);
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn empty_fleet_rejected() {
        let _ = camera_fleet(&CameraApp::coral_pie(), 0, 1, false);
    }

    #[test]
    fn filtered_instance_declares_reduced_units() {
        // Paper §1: with the NoScope difference detector each Coral-Pie
        // camera declares only 0.35 × 2/3 ≈ 0.233 units, so *four* cameras
        // fit one TPU where only two unfiltered ones would.
        use microedge_cluster::topology::ClusterBuilder;
        use microedge_core::config::Features;
        use microedge_core::runtime::World;
        use microedge_core::units::TpuUnits;
        use microedge_sim::time::SimTime;

        let app = CameraApp::coral_pie();
        let dd = DiffDetector::coral_pie_calibrated();
        let cluster = ClusterBuilder::new().trpis(1).vrpis(4).build();
        let mut world = World::new(cluster, Features::all());
        for i in 0..4 {
            let spec = filtered_instance(&app, dd, &format!("f-{i}"), 300, i);
            world.admit_stream(spec).unwrap();
        }
        assert!(
            world.scheduler().pool().total_free_units() < TpuUnits::from_f64(0.1),
            "four filtered cameras nearly fill the TPU"
        );
        let results = world.run_to_completion(SimTime::from_secs(60));
        assert!(results.all_met_fps());
        // Realised utilization ≈ 4 × 0.233, with sampling noise from the
        // stochastic filter.
        assert!(
            (results.average_utilization() - 0.933).abs() < 0.05,
            "got {}",
            results.average_utilization()
        );
    }
}
