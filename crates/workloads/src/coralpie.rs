//! The Coral-Pie application layer: space-time vehicle tracking across a
//! geo-distributed camera network (paper §1, §6.2; Xu et al.,
//! Middleware '20).
//!
//! Coral-Pie is the paper's motivating exemplar: each camera runs a
//! detection pipeline (the part MicroEdge schedules on TPUs) and a
//! re-identification stage that matches vehicles reported by *upstream*
//! cameras and notifies *downstream* cameras, building a space-time track
//! per vehicle. This module implements that application logic over the
//! synthetic campus dataset:
//!
//! - [`CameraGraph`] — the corridor/graph of cameras with travel times;
//! - [`TrackBuilder`] — consumes per-camera [`VehicleVisit`]s in event
//!   order and assembles [`SpaceTimeTrack`]s via upstream notifications;
//! - ground-truth evaluation helpers (precision of re-identification under
//!   a travel-time window).
//!
//! The detection pipeline itself runs on the MicroEdge data plane (see the
//! `vehicle_tracking` example); this module is the post-processing stage
//! the paper's Fig. 2 calls "application logic".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use microedge_sim::time::{SimDuration, SimTime};

use crate::dataset::VehicleVisit;

/// Identifies a camera in the tracking network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CameraId(pub u32);

impl std::fmt::Display for CameraId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "camera-{}", self.0)
    }
}

/// A directed edge: vehicles leaving `from` appear at `to` after roughly
/// `travel` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corridor {
    /// Upstream camera.
    pub from: CameraId,
    /// Downstream camera.
    pub to: CameraId,
    /// Nominal travel time between the fields of view.
    pub travel: SimDuration,
}

/// The camera network topology.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CameraGraph {
    corridors: Vec<Corridor>,
}

impl CameraGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        CameraGraph::default()
    }

    /// A straight corridor of `cameras` cameras with uniform `travel` time
    /// between neighbours — the paper's evaluation layout (time-shifted
    /// replays along a line of cameras).
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is zero.
    #[must_use]
    pub fn corridor(cameras: u32, travel: SimDuration) -> Self {
        assert!(cameras > 0, "a graph needs at least one camera");
        let corridors = (1..cameras)
            .map(|i| Corridor {
                from: CameraId(i - 1),
                to: CameraId(i),
                travel,
            })
            .collect();
        CameraGraph { corridors }
    }

    /// Adds a corridor.
    pub fn connect(&mut self, from: CameraId, to: CameraId, travel: SimDuration) {
        self.corridors.push(Corridor { from, to, travel });
    }

    /// All corridors.
    #[must_use]
    pub fn corridors(&self) -> &[Corridor] {
        &self.corridors
    }

    /// Upstream cameras of `camera`, with travel times.
    #[must_use]
    pub fn upstream_of(&self, camera: CameraId) -> Vec<(CameraId, SimDuration)> {
        self.corridors
            .iter()
            .filter(|c| c.to == camera)
            .map(|c| (c.from, c.travel))
            .collect()
    }

    /// Number of distinct cameras mentioned in the graph.
    #[must_use]
    pub fn camera_count(&self) -> usize {
        let mut ids: Vec<CameraId> = self.corridors.iter().flat_map(|c| [c.from, c.to]).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }
}

/// One observation: a vehicle seen at a camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Where it was seen.
    pub camera: CameraId,
    /// When it entered the field of view.
    pub seen_at: SimTime,
    /// Appearance identity from the detection pipeline. In the real system
    /// this is an embedding; ground-truth replay gives us the true id, and
    /// the tracker must still *justify* a match with an upstream
    /// notification inside the travel-time window.
    pub vehicle: u32,
}

/// A vehicle's reconstructed path through the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceTimeTrack {
    vehicle: u32,
    hops: Vec<Observation>,
}

impl SpaceTimeTrack {
    /// The tracked vehicle.
    #[must_use]
    pub fn vehicle(&self) -> u32 {
        self.vehicle
    }

    /// Observations in time order.
    #[must_use]
    pub fn hops(&self) -> &[Observation] {
        &self.hops
    }

    /// Number of cameras the vehicle was tracked through.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `false` — a track always contains its origin observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Re-identification outcome counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReidStats {
    /// Matches justified by an upstream notification in the window.
    pub matched: u64,
    /// Observations with no upstream candidate (track origins).
    pub origins: u64,
    /// Observations whose upstream candidate fell outside the window
    /// (missed hand-off — starts a new track).
    pub missed_window: u64,
}

/// Builds space-time tracks from time-ordered observations, mirroring
/// Coral-Pie's notification protocol: when a camera sees a vehicle, it
/// checks the notifications its upstream cameras sent and accepts the
/// hand-off only if the elapsed time is within `tolerance` of the
/// corridor's travel time.
#[derive(Debug, Clone)]
pub struct TrackBuilder {
    graph: CameraGraph,
    tolerance: SimDuration,
    /// Latest departure notification per (camera, vehicle).
    notifications: BTreeMap<(CameraId, u32), SimTime>,
    tracks: BTreeMap<u32, SpaceTimeTrack>,
    stats: ReidStats,
}

impl TrackBuilder {
    /// Creates a tracker over `graph` accepting hand-offs within
    /// `± tolerance` of the nominal travel time.
    #[must_use]
    pub fn new(graph: CameraGraph, tolerance: SimDuration) -> Self {
        TrackBuilder {
            graph,
            tolerance,
            notifications: BTreeMap::new(),
            tracks: BTreeMap::new(),
            stats: ReidStats::default(),
        }
    }

    /// Ingests one observation; observations must arrive in time order per
    /// vehicle (the data plane guarantees this — frames are processed in
    /// order).
    pub fn observe(&mut self, obs: Observation) {
        let matched = self
            .graph
            .upstream_of(obs.camera)
            .into_iter()
            .any(|(upstream, travel)| {
                self.notifications
                    .get(&(upstream, obs.vehicle))
                    .is_some_and(|&left_at| {
                        let elapsed = obs.seen_at.saturating_since(left_at);
                        let lo = travel.saturating_sub(self.tolerance);
                        let hi = travel + self.tolerance;
                        elapsed >= lo && elapsed <= hi
                    })
            });
        let has_upstream = !self.graph.upstream_of(obs.camera).is_empty();
        if matched {
            self.stats.matched += 1;
            self.tracks
                .get_mut(&obs.vehicle)
                .expect("matched vehicles have a track")
                .hops
                .push(obs);
        } else {
            if has_upstream && self.notifications.keys().any(|&(_, v)| v == obs.vehicle) {
                self.stats.missed_window += 1;
            } else {
                self.stats.origins += 1;
            }
            self.tracks
                .entry(obs.vehicle)
                .and_modify(|t| t.hops.push(obs))
                .or_insert_with(|| SpaceTimeTrack {
                    vehicle: obs.vehicle,
                    hops: vec![obs],
                });
        }
        // The camera notifies downstream when the vehicle leaves; we use
        // entry time as the notification timestamp, matching the
        // time-shifted ground truth.
        self.notifications
            .insert((obs.camera, obs.vehicle), obs.seen_at);
    }

    /// Completed tracks, by vehicle id.
    #[must_use]
    pub fn tracks(&self) -> Vec<&SpaceTimeTrack> {
        self.tracks.values().collect()
    }

    /// Re-identification counters.
    #[must_use]
    pub fn stats(&self) -> ReidStats {
        self.stats
    }
}

/// Replays per-camera visit lists (e.g. from
/// [`crate::dataset::campus_vehicle_visits`] + [`crate::dataset::time_shifted`])
/// through a tracker and returns it. Visit lists are indexed by camera in
/// graph order.
#[must_use]
pub fn track_corridor(
    graph: CameraGraph,
    tolerance: SimDuration,
    per_camera_visits: &[Vec<VehicleVisit>],
) -> TrackBuilder {
    let mut tracker = TrackBuilder::new(graph, tolerance);
    let mut observations: Vec<Observation> = per_camera_visits
        .iter()
        .enumerate()
        .flat_map(|(cam, visits)| {
            visits.iter().map(move |v| Observation {
                camera: CameraId(cam as u32),
                seen_at: v.enters,
                vehicle: v.vehicle,
            })
        })
        .collect();
    observations.sort_by_key(|o| (o.seen_at, o.camera));
    for obs in observations {
        tracker.observe(obs);
    }
    tracker
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{campus_vehicle_visits, time_shifted, VideoSegment};

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn corridor_visits(cameras: u32, travel: SimDuration, seed: u64) -> Vec<Vec<VehicleVisit>> {
        let base = campus_vehicle_visits(VideoSegment::campus_video(), seed);
        (0..cameras)
            .map(|i| time_shifted(&base, travel.mul_f64(f64::from(i))))
            .collect()
    }

    #[test]
    fn corridor_graph_topology() {
        let g = CameraGraph::corridor(4, SimDuration::from_secs(12));
        assert_eq!(g.corridors().len(), 3);
        assert_eq!(g.camera_count(), 4);
        assert!(g.upstream_of(CameraId(0)).is_empty());
        assert_eq!(
            g.upstream_of(CameraId(2)),
            vec![(CameraId(1), SimDuration::from_secs(12))]
        );
    }

    #[test]
    fn perfect_replay_builds_full_tracks() {
        let travel = SimDuration::from_secs(12);
        let visits = corridor_visits(4, travel, 7);
        let vehicles = visits[0].len();
        let tracker = track_corridor(
            CameraGraph::corridor(4, travel),
            SimDuration::from_secs(2),
            &visits,
        );
        let tracks = tracker.tracks();
        assert_eq!(tracks.len(), vehicles, "one track per vehicle");
        for t in tracks {
            assert_eq!(t.len(), 4, "vehicle {} tracked end to end", t.vehicle());
            assert!(!t.is_empty());
            // Hops are time-ordered through consecutive cameras.
            for w in t.hops().windows(2) {
                assert!(w[0].seen_at < w[1].seen_at);
                assert_eq!(w[1].camera.0, w[0].camera.0 + 1);
            }
        }
        let stats = tracker.stats();
        assert_eq!(stats.origins as usize, vehicles);
        assert_eq!(stats.matched as usize, vehicles * 3);
        assert_eq!(stats.missed_window, 0);
    }

    #[test]
    fn out_of_window_arrivals_break_the_track() {
        // The downstream camera's replay is shifted by far more than the
        // corridor's nominal travel time → no hand-off is justified.
        let travel = SimDuration::from_secs(12);
        let base = campus_vehicle_visits(VideoSegment::campus_video(), 3);
        let visits = vec![
            base.clone(),
            time_shifted(&base, SimDuration::from_secs(40)),
        ];
        let tracker = track_corridor(
            CameraGraph::corridor(2, travel),
            SimDuration::from_secs(2),
            &visits,
        );
        let stats = tracker.stats();
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.missed_window as usize, base.len());
    }

    #[test]
    fn observation_order_independence_across_vehicles() {
        // Two vehicles interleaved; both still tracked.
        let g = CameraGraph::corridor(2, SimDuration::from_secs(10));
        let mut tracker = TrackBuilder::new(g, SimDuration::from_secs(1));
        for obs in [
            Observation {
                camera: CameraId(0),
                seen_at: secs(0),
                vehicle: 0,
            },
            Observation {
                camera: CameraId(0),
                seen_at: secs(3),
                vehicle: 1,
            },
            Observation {
                camera: CameraId(1),
                seen_at: secs(10),
                vehicle: 0,
            },
            Observation {
                camera: CameraId(1),
                seen_at: secs(13),
                vehicle: 1,
            },
        ] {
            tracker.observe(obs);
        }
        assert_eq!(tracker.tracks().len(), 2);
        assert!(tracker.tracks().iter().all(|t| t.len() == 2));
        assert_eq!(tracker.stats().matched, 2);
    }

    #[test]
    fn branching_graph_accepts_either_upstream() {
        // Y-shaped: cameras 0 and 1 both feed camera 2.
        let mut g = CameraGraph::new();
        g.connect(CameraId(0), CameraId(2), SimDuration::from_secs(5));
        g.connect(CameraId(1), CameraId(2), SimDuration::from_secs(9));
        let mut tracker = TrackBuilder::new(g, SimDuration::from_secs(1));
        tracker.observe(Observation {
            camera: CameraId(1),
            seen_at: secs(0),
            vehicle: 7,
        });
        tracker.observe(Observation {
            camera: CameraId(2),
            seen_at: secs(9),
            vehicle: 7,
        });
        assert_eq!(tracker.stats().matched, 1);
    }
}
