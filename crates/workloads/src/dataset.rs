//! Synthetic stand-ins for the paper's datasets.
//!
//! The paper evaluates Coral-Pie on 1000 frames of campus security video
//! (≈ 67 s at 15 FPS, vehicles dwelling ≈ 10 s in the field of view),
//! time-shifted to downstream cameras for 20 000 frames total, and BodyPix
//! on 1000 images from the 3DPeople dataset. The MicroEdge data plane is
//! content-oblivious — only frame cadence, count, and resolution influence
//! any measured quantity — so these descriptors carry exactly those facts,
//! plus a seeded vehicle-visit generator used by the vehicle-tracking
//! example to produce plausible re-identification events.

use serde::{Deserialize, Serialize};

use microedge_sim::rng::DetRng;
use microedge_sim::time::{SimDuration, SimTime};

/// A recorded video segment replayed at fixed FPS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoSegment {
    frames: u64,
    fps: f64,
}

impl VideoSegment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or `fps` is not strictly positive.
    #[must_use]
    pub fn new(frames: u64, fps: f64) -> Self {
        assert!(frames > 0, "a segment needs frames");
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        VideoSegment { frames, fps }
    }

    /// The paper's campus security video: 1000 frames at 15 FPS (≈ 67 s).
    #[must_use]
    pub fn campus_video() -> Self {
        VideoSegment::new(1000, 15.0)
    }

    /// The paper's 3DPeople sample: 1000 images at 15 FPS.
    #[must_use]
    pub fn people_3d() -> Self {
        VideoSegment::new(1000, 15.0)
    }

    /// Number of frames.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Playback rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Wall-clock duration of the segment.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.frames as f64 / self.fps)
    }
}

/// One vehicle's pass through a camera's field of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleVisit {
    /// Synthetic vehicle identity (consistent across cameras).
    pub vehicle: u32,
    /// When the vehicle enters the field of view.
    pub enters: SimTime,
    /// When it leaves.
    pub leaves: SimTime,
}

impl VehicleVisit {
    /// Dwell time in the field of view.
    #[must_use]
    pub fn dwell(&self) -> SimDuration {
        self.leaves.saturating_since(self.enters)
    }
}

/// Seeded generator of vehicle visits matching the paper's description:
/// a vehicle takes ≈ 10 s to traverse the field of view, and several
/// vehicles pass during the 67 s segment.
///
/// # Examples
///
/// ```
/// use microedge_workloads::dataset::{campus_vehicle_visits, VideoSegment};
///
/// let visits = campus_vehicle_visits(VideoSegment::campus_video(), 42);
/// assert!(visits.len() >= 3, "several vehicles traverse the segment");
/// assert!(visits.iter().all(|v| v.dwell().as_secs_f64() > 5.0));
/// ```
#[must_use]
pub fn campus_vehicle_visits(segment: VideoSegment, seed: u64) -> Vec<VehicleVisit> {
    let mut rng = DetRng::seed_from(seed);
    let mut visits = Vec::new();
    let end = segment.duration();
    let mut cursor = SimDuration::ZERO;
    let mut vehicle = 0;
    loop {
        // Gap between vehicle arrivals: exponential, mean 8 s.
        cursor += rng.exponential_duration(SimDuration::from_secs(8));
        if cursor >= end {
            break;
        }
        let dwell = rng.normal_duration(SimDuration::from_secs(10), SimDuration::from_secs(2));
        let dwell = dwell.max(SimDuration::from_secs(6));
        let enters = SimTime::ZERO + cursor;
        visits.push(VehicleVisit {
            vehicle,
            enters,
            leaves: enters + dwell,
        });
        vehicle += 1;
    }
    visits
}

/// Time-shifts visits for a downstream camera — the paper's ground-truth
/// construction replays the same frames shifted so a vehicle seen upstream
/// re-appears downstream after `shift`.
#[must_use]
pub fn time_shifted(visits: &[VehicleVisit], shift: SimDuration) -> Vec<VehicleVisit> {
    visits
        .iter()
        .map(|v| VehicleVisit {
            vehicle: v.vehicle,
            enters: v.enters + shift,
            leaves: v.leaves + shift,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_video_matches_paper() {
        let seg = VideoSegment::campus_video();
        assert_eq!(seg.frames(), 1000);
        assert_eq!(seg.fps(), 15.0);
        let secs = seg.duration().as_secs_f64();
        assert!((secs - 66.67).abs() < 0.01, "≈ 67 seconds, got {secs}");
    }

    #[test]
    fn visits_are_deterministic_per_seed() {
        let seg = VideoSegment::campus_video();
        assert_eq!(campus_vehicle_visits(seg, 7), campus_vehicle_visits(seg, 7));
        assert_ne!(campus_vehicle_visits(seg, 7), campus_vehicle_visits(seg, 8));
    }

    #[test]
    fn visits_fit_segment_and_dwell_about_10s() {
        let seg = VideoSegment::campus_video();
        let visits = campus_vehicle_visits(seg, 1);
        assert!(!visits.is_empty());
        for v in &visits {
            assert!(v.enters < SimTime::ZERO + seg.duration());
            let dwell = v.dwell().as_secs_f64();
            assert!((6.0..=20.0).contains(&dwell), "dwell {dwell}");
        }
        // Vehicle ids are unique and ordered.
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.vehicle as usize, i);
        }
    }

    #[test]
    fn time_shift_preserves_identity_and_dwell() {
        let seg = VideoSegment::campus_video();
        let visits = campus_vehicle_visits(seg, 3);
        let shifted = time_shifted(&visits, SimDuration::from_secs(12));
        assert_eq!(visits.len(), shifted.len());
        for (a, b) in visits.iter().zip(&shifted) {
            assert_eq!(a.vehicle, b.vehicle);
            assert_eq!(a.dwell(), b.dwell());
            assert_eq!(b.enters.saturating_since(a.enters).as_secs_f64(), 12.0);
        }
    }

    #[test]
    #[should_panic(expected = "needs frames")]
    fn empty_segment_rejected() {
        let _ = VideoSegment::new(0, 15.0);
    }
}
