//! Per-request latency breakdown (paper Fig. 7b).
//!
//! Every inference request passes through four steps: pre-processing on the
//! client, transmission to the TPU Service, inference on the TPU, and
//! post-processing back at the application. A [`LatencyBreakdown`] holds one
//! request's cost per step; a [`BreakdownRecorder`] aggregates many requests
//! into the per-phase means and percentiles the figure reports.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::latency::{BreakdownRecorder, LatencyBreakdown, Phase};
//! use microedge_sim::time::SimDuration;
//!
//! let mut rec = BreakdownRecorder::new();
//! rec.record(&LatencyBreakdown::new(
//!     SimDuration::from_millis(5),
//!     SimDuration::from_millis(8),
//!     SimDuration::from_millis(15),
//!     SimDuration::from_millis(3),
//! ));
//! assert_eq!(rec.mean_total_ms(), 31.0);
//! assert_eq!(rec.mean_ms(Phase::Transmission), 8.0);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use microedge_sim::stats::LogLinearSketch;
use microedge_sim::time::SimDuration;

/// The four steps of one `Invoke` (paper §6.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Client-side resize/format to the model's input.
    PreProcess,
    /// Moving the pre-processed frame to the TPU Service (absent on the
    /// bare-metal baseline, whose TPU is local).
    Transmission,
    /// On-TPU execution, including any parameter streaming.
    Inference,
    /// Application-side handling of the result.
    PostProcess,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 4] = [
        Phase::PreProcess,
        Phase::Transmission,
        Phase::Inference,
        Phase::PostProcess,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::PreProcess => "pre-processing",
            Phase::Transmission => "transmission",
            Phase::Inference => "inference",
            Phase::PostProcess => "post-processing",
        };
        f.write_str(s)
    }
}

/// One request's cost in each phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    pre: SimDuration,
    transmission: SimDuration,
    inference: SimDuration,
    post: SimDuration,
}

impl LatencyBreakdown {
    /// Creates a breakdown from the four phase costs.
    #[must_use]
    pub fn new(
        pre: SimDuration,
        transmission: SimDuration,
        inference: SimDuration,
        post: SimDuration,
    ) -> Self {
        LatencyBreakdown {
            pre,
            transmission,
            inference,
            post,
        }
    }

    /// Cost of one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> SimDuration {
        match phase {
            Phase::PreProcess => self.pre,
            Phase::Transmission => self.transmission,
            Phase::Inference => self.inference,
            Phase::PostProcess => self.post,
        }
    }

    /// End-to-end cost.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.pre + self.transmission + self.inference + self.post
    }
}

/// Aggregates breakdowns across requests in constant memory.
///
/// Per-phase costs are summed exactly in integer nanoseconds — this sits on
/// the simulator's per-completion hot path, and only the phase *means* are
/// ever reported, so a full streaming-moments accumulator per phase would be
/// wasted work. End-to-end totals feed a [`LogLinearSketch`]: one bucket
/// increment per completion, zero allocation, memory independent of frame
/// count, and percentiles within the sketch's advertised
/// [`microedge_sim::stats::SKETCH_RELATIVE_ERROR`] bound (≤ 0.79 %).
/// Recorders from sharded workers combine losslessly via
/// [`BreakdownRecorder::merge`].
#[derive(Debug, Default, Clone)]
pub struct BreakdownRecorder {
    phase_sums: [u64; 4],
    count: u64,
    totals: LogLinearSketch,
}

impl BreakdownRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        BreakdownRecorder::default()
    }

    /// Records one request.
    pub fn record(&mut self, breakdown: &LatencyBreakdown) {
        for (slot, phase) in self.phase_sums.iter_mut().zip(Phase::ALL) {
            *slot += breakdown.phase(phase).as_nanos();
        }
        self.count += 1;
        self.totals.record_duration(breakdown.total());
    }

    /// Number of requests recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean cost of one phase, in milliseconds.
    #[must_use]
    pub fn mean_ms(&self, phase: Phase) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = Phase::ALL.iter().position(|p| *p == phase).expect("phase");
        (self.phase_sums[idx] as f64 / self.count as f64) / 1e6
    }

    /// Mean end-to-end cost in milliseconds (exact — from the sketch's
    /// retained integer-nanosecond sum).
    #[must_use]
    pub fn mean_total_ms(&self) -> f64 {
        self.totals.mean()
    }

    /// End-to-end percentile in milliseconds, or `None` when empty —
    /// within the sketch's ≤ 0.79 % relative-error bound
    /// ([`microedge_sim::stats::SKETCH_RELATIVE_ERROR`]).
    #[must_use]
    pub fn total_percentile_ms(&self, p: f64) -> Option<f64> {
        self.totals.percentile(p)
    }

    /// Merges another recorder into this one — exactly equivalent to
    /// having recorded the concatenated request streams, in any order.
    pub fn merge(&mut self, other: &BreakdownRecorder) {
        for (slot, v) in self.phase_sums.iter_mut().zip(other.phase_sums) {
            *slot += v;
        }
        self.count += other.count;
        self.totals.merge(&other.totals);
    }

    /// Heap footprint of the end-to-end distribution in bytes — fixed
    /// once the workload's latency range is covered, whatever the frame
    /// count.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.totals.memory_bytes()
    }

    /// Mean breakdown across all requests, per phase in pipeline order.
    #[must_use]
    pub fn mean_breakdown_ms(&self) -> [(Phase, f64); 4] {
        [
            (Phase::PreProcess, self.mean_ms(Phase::PreProcess)),
            (Phase::Transmission, self.mean_ms(Phase::Transmission)),
            (Phase::Inference, self.mean_ms(Phase::Inference)),
            (Phase::PostProcess, self.mean_ms(Phase::PostProcess)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn breakdown_total_sums_phases() {
        let b = LatencyBreakdown::new(ms(5), ms(8), ms(15), ms(3));
        assert_eq!(b.total(), ms(31));
        assert_eq!(b.phase(Phase::Inference), ms(15));
    }

    #[test]
    fn recorder_means() {
        let mut r = BreakdownRecorder::new();
        r.record(&LatencyBreakdown::new(ms(4), ms(8), ms(14), ms(2)));
        r.record(&LatencyBreakdown::new(ms(6), ms(8), ms(16), ms(4)));
        assert_eq!(r.count(), 2);
        assert_eq!(r.mean_ms(Phase::PreProcess), 5.0);
        assert_eq!(r.mean_ms(Phase::Transmission), 8.0);
        assert_eq!(r.mean_ms(Phase::Inference), 15.0);
        assert_eq!(r.mean_ms(Phase::PostProcess), 3.0);
        assert_eq!(r.mean_total_ms(), 31.0);
    }

    #[test]
    fn recorder_percentiles() {
        let mut r = BreakdownRecorder::new();
        for i in 1..=100u64 {
            r.record(&LatencyBreakdown::new(ms(i), ms(0), ms(0), ms(0)));
        }
        let bound = microedge_sim::stats::SKETCH_RELATIVE_ERROR;
        let p50 = r.total_percentile_ms(50.0).unwrap();
        assert!((p50 - 50.0).abs() <= 50.0 * bound, "p50 {p50}");
        let p99 = r.total_percentile_ms(99.0).unwrap();
        assert!((p99 - 99.0).abs() <= 99.0 * bound, "p99 {p99}");
        // Extremes are exact: the sketch retains exact min/max.
        assert_eq!(r.total_percentile_ms(0.0), Some(1.0));
        assert_eq!(r.total_percentile_ms(100.0), Some(100.0));
    }

    #[test]
    fn empty_recorder_is_safe() {
        let r = BreakdownRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean_total_ms(), 0.0);
        assert_eq!(r.total_percentile_ms(50.0), None);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut whole = BreakdownRecorder::new();
        let mut a = BreakdownRecorder::new();
        let mut b = BreakdownRecorder::new();
        for i in 1..=40u64 {
            let bd = LatencyBreakdown::new(ms(i), ms(2 * i), ms(3 * i), ms(1));
            whole.record(&bd);
            if i % 2 == 0 {
                a.record(&bd)
            } else {
                b.record(&bd)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_total_ms(), whole.mean_total_ms());
        assert_eq!(a.mean_ms(Phase::Inference), whole.mean_ms(Phase::Inference));
        assert_eq!(a.total_percentile_ms(90.0), whole.total_percentile_ms(90.0));
    }

    #[test]
    fn memory_is_independent_of_request_count() {
        let mut r = BreakdownRecorder::new();
        for i in 0..1_000u64 {
            r.record(&LatencyBreakdown::new(ms(i % 60), ms(8), ms(15), ms(3)));
        }
        let footprint = r.memory_bytes();
        for i in 0..100_000u64 {
            r.record(&LatencyBreakdown::new(ms(i % 60), ms(8), ms(15), ms(3)));
        }
        assert_eq!(r.memory_bytes(), footprint);
    }

    #[test]
    fn mean_breakdown_order() {
        let mut r = BreakdownRecorder::new();
        r.record(&LatencyBreakdown::new(ms(1), ms(2), ms(3), ms(4)));
        let rows = r.mean_breakdown_ms();
        assert_eq!(rows[0], (Phase::PreProcess, 1.0));
        assert_eq!(rows[3], (Phase::PostProcess, 4.0));
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Transmission.to_string(), "transmission");
        assert_eq!(Phase::ALL.len(), 4);
    }

    #[test]
    fn default_breakdown_is_zero() {
        assert_eq!(LatencyBreakdown::default().total(), SimDuration::ZERO);
    }
}
