//! Online-defragmentation counters and packing-efficiency gauges.
//!
//! The background defragmenter (`core::defrag`) migrates live pods off
//! lightly-loaded "donor" TPUs so their scattered load compacts into the
//! rest of the fleet and each donor returns to the capacity index as one
//! whole contiguous slot. Every cycle it accounts here what it did — moves
//! executed, pods migrated, contiguous micro-units recovered, modeled
//! migration disruption — and, just as importantly, what it *declined* to
//! do and why, so a run's artifact shows the budget actually binding.
//!
//! [`packing_efficiency`] is the study's headline gauge: the Martello–Toth
//! L2 lower bound on the bins the live demand provably needs, over the TPUs
//! actually carrying load. 1.0 is provably optimal packing; long-running
//! churned fleets drift down without defragmentation.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::defrag::{fragmentation_ratio, packing_efficiency, DefragStats};
//!
//! let mut a = DefragStats::default();
//! a.moves = 2;
//! a.units_recovered_micro = 600_000;
//! let mut b = DefragStats::default();
//! b.moves = 1;
//! a.merge(&b);
//! assert_eq!(a.moves, 3);
//!
//! // 14 provably-needed bins spread over 20 loaded TPUs.
//! assert!((packing_efficiency(14, 20) - 0.7).abs() < 1e-12);
//! // One 0.4-unit hole out of 1.2 free units total: heavily fragmented.
//! assert!((fragmentation_ratio(400_000, 1_200_000) - 1.0 / 3.0).abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// Deterministic counters of one world's (or one merged fleet's)
/// defragmentation activity. All fields are integers, so merged shards sum
/// exactly and the counters participate in byte-compared artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefragStats {
    /// Planning cycles run (one per armed epoch interval).
    pub cycles: u64,
    /// Donor evictions executed (each empties one TPU).
    pub moves: u64,
    /// Pod migrations executed across all moves.
    pub pods_migrated: u64,
    /// Contiguous micro-units recovered (each executed move turns the
    /// donor's scattered load into one whole free slot).
    pub units_recovered_micro: u64,
    /// Total modeled migration disruption, in nanoseconds of simulated
    /// time: per move, the busiest receiver's parameter swap plus its
    /// co-compile transition.
    pub disruption_ns: u64,
    /// Candidate donors skipped because their recoverable load was below
    /// the configured minimum gain.
    pub skipped_gain: u64,
    /// Candidate donors skipped because a resident pod was mid-swap or its
    /// stream was not serving (the swap-seq/epoch guard).
    pub skipped_guard: u64,
    /// Candidate donors skipped because the cycle's disruption budget had
    /// no room for the move.
    pub skipped_budget: u64,
    /// Candidate donors skipped because the move's disruption per recovered
    /// unit exceeded the configured exchange rate.
    pub skipped_cost: u64,
    /// Candidate donors skipped because the rest of the fleet could not
    /// absorb their pods (planning failed).
    pub skipped_unplaceable: u64,
}

impl DefragStats {
    /// Total modeled disruption as a duration.
    #[must_use]
    pub fn disruption(&self) -> SimDuration {
        SimDuration::from_nanos(self.disruption_ns)
    }

    /// Folds another shard's counters into this one (exact integer sums;
    /// merge order does not matter).
    pub fn merge(&mut self, other: &DefragStats) {
        self.cycles += other.cycles;
        self.moves += other.moves;
        self.pods_migrated += other.pods_migrated;
        self.units_recovered_micro += other.units_recovered_micro;
        self.disruption_ns += other.disruption_ns;
        self.skipped_gain += other.skipped_gain;
        self.skipped_guard += other.skipped_guard;
        self.skipped_budget += other.skipped_budget;
        self.skipped_cost += other.skipped_cost;
        self.skipped_unplaceable += other.skipped_unplaceable;
    }
}

/// Packing efficiency: `l2_bins / used_tpus`, the provable lower bound on
/// bins the live demand needs over the TPUs actually carrying load. 1.0
/// means the fleet provably cannot pack tighter; values below 1.0 measure
/// fragmentation waste. An idle fleet (`used_tpus == 0`) is perfectly
/// packed by convention.
///
/// The bound itself comes from the bench crate's `l2_lower_bound` (the
/// Martello–Toth L2 over the live demand multiset); this gauge only
/// normalizes it, so the metrics crate stays independent of the solver.
#[must_use]
pub fn packing_efficiency(l2_bins: u32, used_tpus: usize) -> f64 {
    if used_tpus == 0 {
        1.0
    } else {
        f64::from(l2_bins) / used_tpus as f64
    }
}

/// Fragmentation ratio: largest contiguous free slot over total free
/// units, in micro-units. 1.0 means all free capacity sits in one
/// contiguous block (not fragmented); ratios near 0 mean the free space is
/// shattered into slivers no whole-placement request can use. A pool with
/// no free capacity is unfragmented by convention.
#[must_use]
pub fn fragmentation_ratio(max_free_micro: u64, total_free_micro: u64) -> f64 {
    if total_free_micro == 0 {
        1.0
    } else {
        max_free_micro as f64 / total_free_micro as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = DefragStats {
            cycles: 1,
            moves: 2,
            pods_migrated: 3,
            units_recovered_micro: 4,
            disruption_ns: 5,
            skipped_gain: 6,
            skipped_guard: 7,
            skipped_budget: 8,
            skipped_cost: 9,
            skipped_unplaceable: 10,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(
            a,
            DefragStats {
                cycles: 2,
                moves: 4,
                pods_migrated: 6,
                units_recovered_micro: 8,
                disruption_ns: 10,
                skipped_gain: 12,
                skipped_guard: 14,
                skipped_budget: 16,
                skipped_cost: 18,
                skipped_unplaceable: 20,
            }
        );
    }

    #[test]
    fn gauges_handle_empty_fleets() {
        assert!((packing_efficiency(0, 0) - 1.0).abs() < f64::EPSILON);
        assert!((packing_efficiency(3, 4) - 0.75).abs() < f64::EPSILON);
        assert!((fragmentation_ratio(0, 0) - 1.0).abs() < f64::EPSILON);
        assert!((fragmentation_ratio(250_000, 1_000_000) - 0.25).abs() < f64::EPSILON);
    }
}
