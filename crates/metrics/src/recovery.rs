//! Failure-recovery latency and per-stream availability accounting.
//!
//! With the heartbeat/lease failure detector a stream's recovery from a
//! fault is no longer instantaneous; it decomposes into three phases:
//!
//! 1. **detection** — the fault occurs silently, traffic is dropped, and
//!    the control plane only notices once the component's lease expires;
//! 2. **rescheduling** — the reconciler re-plans the displaced stages onto
//!    surviving TPUs (including any backoff waits while capacity is tight);
//! 3. **swap-in** — parameters for models not already resident on the new
//!    TPUs stream over USB before serving resumes.
//!
//! A [`RecoveryBreakdown`] holds one recovery's cost per phase and a
//! [`RecoveryRecorder`] aggregates many, mirroring the per-request
//! [`crate::latency::BreakdownRecorder`]. [`StreamAvailability`] totals a
//! stream lineage's downtime, degraded time, and restart counts over the
//! run, from which availability "nines" are derived.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::recovery::{RecoveryBreakdown, RecoveryPhase, RecoveryRecorder};
//! use microedge_sim::time::SimDuration;
//!
//! let mut rec = RecoveryRecorder::new();
//! rec.record(&RecoveryBreakdown::new(
//!     SimDuration::from_secs(4),
//!     SimDuration::from_millis(150),
//!     SimDuration::from_millis(500),
//! ));
//! assert_eq!(rec.mean_ms(RecoveryPhase::Detection), 4000.0);
//! assert_eq!(rec.mean_total_ms(), 4650.0);
//! ```

use std::fmt;

use microedge_sim::stats::{LogLinearSketch, OnlineStats};
use microedge_sim::time::{SimDuration, SimTime};

/// The three phases of one stream recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPhase {
    /// Fault instant until the lease-based detector fires.
    Detection,
    /// Detection until the replacement placement is committed (includes
    /// reconciler backoff while the stream is parked).
    Rescheduling,
    /// Parameter streaming onto newly assigned TPUs.
    SwapIn,
}

impl RecoveryPhase {
    /// All phases in recovery order.
    pub const ALL: [RecoveryPhase; 3] = [
        RecoveryPhase::Detection,
        RecoveryPhase::Rescheduling,
        RecoveryPhase::SwapIn,
    ];
}

impl fmt::Display for RecoveryPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecoveryPhase::Detection => "detection",
            RecoveryPhase::Rescheduling => "rescheduling",
            RecoveryPhase::SwapIn => "swap-in",
        };
        f.write_str(s)
    }
}

/// One completed recovery's cost in each phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryBreakdown {
    detection: SimDuration,
    rescheduling: SimDuration,
    swap_in: SimDuration,
}

impl RecoveryBreakdown {
    /// Creates a breakdown from the three phase costs.
    #[must_use]
    pub fn new(detection: SimDuration, rescheduling: SimDuration, swap_in: SimDuration) -> Self {
        RecoveryBreakdown {
            detection,
            rescheduling,
            swap_in,
        }
    }

    /// Cost of one phase.
    #[must_use]
    pub fn phase(&self, phase: RecoveryPhase) -> SimDuration {
        match phase {
            RecoveryPhase::Detection => self.detection,
            RecoveryPhase::Rescheduling => self.rescheduling,
            RecoveryPhase::SwapIn => self.swap_in,
        }
    }

    /// Fault-to-serving total.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.detection + self.rescheduling + self.swap_in
    }
}

/// Aggregates recovery breakdowns across faults in constant memory.
///
/// Per-phase costs are summed exactly in integer nanoseconds; totals feed a
/// [`LogLinearSketch`], so the MTTR distribution (percentiles) is reported
/// within the sketch's [`microedge_sim::stats::SKETCH_RELATIVE_ERROR`]
/// bound (≤ 0.79 %) while memory stays independent of fault count.
/// Recorders from sharded workers combine losslessly via
/// [`RecoveryRecorder::merge`].
#[derive(Debug, Default, Clone)]
pub struct RecoveryRecorder {
    phase_sums: [u64; 3],
    count: u64,
    totals: LogLinearSketch,
}

impl RecoveryRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecoveryRecorder::default()
    }

    /// Records one completed recovery.
    pub fn record(&mut self, breakdown: &RecoveryBreakdown) {
        for (slot, phase) in self.phase_sums.iter_mut().zip(RecoveryPhase::ALL) {
            *slot += breakdown.phase(phase).as_nanos();
        }
        self.count += 1;
        self.totals.record_duration(breakdown.total());
    }

    /// Number of recoveries recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean cost of one phase, in milliseconds.
    #[must_use]
    pub fn mean_ms(&self, phase: RecoveryPhase) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = RecoveryPhase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("phase");
        (self.phase_sums[idx] as f64 / self.count as f64) / 1e6
    }

    /// Mean fault-to-serving time (MTTR) in milliseconds.
    #[must_use]
    pub fn mean_total_ms(&self) -> f64 {
        self.totals.mean()
    }

    /// MTTR percentile in milliseconds, or `None` when no recovery
    /// completed — within the sketch's ≤ 0.79 % relative-error bound
    /// ([`microedge_sim::stats::SKETCH_RELATIVE_ERROR`]).
    #[must_use]
    pub fn total_percentile_ms(&self, p: f64) -> Option<f64> {
        self.totals.percentile(p)
    }

    /// Merges another recorder into this one — exactly equivalent to
    /// having recorded the concatenated recovery streams, in any order.
    pub fn merge(&mut self, other: &RecoveryRecorder) {
        for (slot, v) in self.phase_sums.iter_mut().zip(other.phase_sums) {
            *slot += v;
        }
        self.count += other.count;
        self.totals.merge(&other.totals);
    }

    /// Heap footprint of the MTTR distribution in bytes — fixed once the
    /// workload's recovery-time range is covered, whatever the fault count.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.totals.memory_bytes()
    }

    /// Mean breakdown across all recoveries, per phase in recovery order.
    #[must_use]
    pub fn mean_breakdown_ms(&self) -> [(RecoveryPhase, f64); 3] {
        [
            (
                RecoveryPhase::Detection,
                self.mean_ms(RecoveryPhase::Detection),
            ),
            (
                RecoveryPhase::Rescheduling,
                self.mean_ms(RecoveryPhase::Rescheduling),
            ),
            (RecoveryPhase::SwapIn, self.mean_ms(RecoveryPhase::SwapIn)),
        ]
    }
}

/// Availability totals for one stream lineage (the original admission plus
/// every healed or restarted incarnation).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StreamAvailability {
    /// Total time the lineage was not serving frames (fault to swap-in
    /// completion, or to end-of-run for outages still open).
    pub downtime: SimDuration,
    /// Total time the lineage served at a reduced frame rate.
    pub degraded: SimDuration,
    /// Number of distinct outages (closed or open at end of run).
    pub outages: u32,
    /// Number of re-admissions (healed or manually restarted incarnations).
    pub restarts: u32,
    /// Whether the lineage ended the run dropped with no pending recovery.
    pub lost: bool,
    /// Per-outage repair times, for MTTR distribution summaries.
    pub repair_times: OnlineStats,
}

impl StreamAvailability {
    /// Fraction of `window` the lineage was serving (full rate or degraded).
    #[must_use]
    pub fn availability(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 1.0;
        }
        let window_ns = window.as_nanos() as f64;
        let down = (self.downtime.as_nanos() as f64).min(window_ns);
        (window_ns - down) / window_ns
    }

    /// Availability expressed as "nines" (`2.0` ≈ 99%, `3.0` ≈ 99.9%),
    /// capped at 9 for lineages with zero recorded downtime.
    #[must_use]
    pub fn nines(&self, window: SimDuration) -> f64 {
        availability_nines(self.availability(window))
    }
}

/// Converts an availability fraction into "nines", capped at 9.0.
#[must_use]
pub fn availability_nines(availability: f64) -> f64 {
    let unavail = (1.0 - availability).max(0.0);
    if unavail <= 1e-9 {
        return 9.0;
    }
    (-unavail.log10()).clamp(0.0, 9.0)
}

/// Running availability bookkeeping for one lineage, folded into a
/// [`StreamAvailability`] at end of run.
///
/// The world drives this from fault/repair events: [`Self::outage_begins`]
/// when the stream stops serving, [`Self::outage_ends`] when a replacement
/// placement finishes swap-in, and the degrade pair around reduced-rate
/// windows. Nested or overlapping signals are tolerated (a second fault
/// during an open outage extends it rather than double-counting).
#[derive(Debug, Default, Clone)]
pub struct AvailabilityTracker {
    outage_start: Option<SimTime>,
    degrade_start: Option<SimTime>,
    totals: StreamAvailability,
}

impl AvailabilityTracker {
    /// Creates a tracker with no history.
    #[must_use]
    pub fn new() -> Self {
        AvailabilityTracker::default()
    }

    /// Marks the lineage as not serving from `now`. No-op if an outage is
    /// already open.
    pub fn outage_begins(&mut self, now: SimTime) {
        if self.outage_start.is_none() {
            self.outage_start = Some(now);
            self.totals.outages += 1;
        }
        self.degrade_ends(now);
    }

    /// Closes the open outage at `now`, recording its duration as one
    /// repair. No-op if no outage is open.
    pub fn outage_ends(&mut self, now: SimTime) {
        if let Some(start) = self.outage_start.take() {
            let span = now.saturating_since(start);
            self.totals.downtime += span;
            self.totals.repair_times.record(span.as_secs_f64());
        }
    }

    /// Marks the lineage as serving at reduced rate from `now`.
    pub fn degrade_begins(&mut self, now: SimTime) {
        if self.degrade_start.is_none() {
            self.degrade_start = Some(now);
        }
    }

    /// Closes the open degraded window at `now`, if any.
    pub fn degrade_ends(&mut self, now: SimTime) {
        if let Some(start) = self.degrade_start.take() {
            self.totals.degraded += now.saturating_since(start);
        }
    }

    /// Counts one re-admission of the lineage.
    pub fn count_restart(&mut self) {
        self.totals.restarts += 1;
    }

    /// Whether an outage is open right now.
    #[must_use]
    pub fn in_outage(&self) -> bool {
        self.outage_start.is_some()
    }

    /// Closes any open windows at `end` and returns the lineage totals.
    /// An outage still open at `end` counts toward downtime but not toward
    /// the repair-time distribution (it never repaired).
    #[must_use]
    pub fn finish(mut self, end: SimTime, lost: bool) -> StreamAvailability {
        if let Some(start) = self.outage_start.take() {
            self.totals.downtime += end.saturating_since(start);
        }
        if let Some(start) = self.degrade_start.take() {
            self.totals.degraded += end.saturating_since(start);
        }
        self.totals.lost = lost;
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn breakdown_total_sums_phases() {
        let b = RecoveryBreakdown::new(ms(4000), ms(150), ms(500));
        assert_eq!(b.total(), ms(4650));
        assert_eq!(b.phase(RecoveryPhase::SwapIn), ms(500));
    }

    #[test]
    fn recorder_means() {
        let mut r = RecoveryRecorder::new();
        r.record(&RecoveryBreakdown::new(ms(4000), ms(100), ms(500)));
        r.record(&RecoveryBreakdown::new(ms(2000), ms(300), ms(0)));
        assert_eq!(r.count(), 2);
        assert_eq!(r.mean_ms(RecoveryPhase::Detection), 3000.0);
        assert_eq!(r.mean_ms(RecoveryPhase::Rescheduling), 200.0);
        assert_eq!(r.mean_ms(RecoveryPhase::SwapIn), 250.0);
        assert_eq!(r.mean_total_ms(), 3450.0);
    }

    #[test]
    fn empty_recorder_is_safe() {
        let r = RecoveryRecorder::new();
        assert_eq!(r.mean_total_ms(), 0.0);
        assert_eq!(r.total_percentile_ms(50.0), None);
        assert_eq!(r.mean_ms(RecoveryPhase::Detection), 0.0);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut whole = RecoveryRecorder::new();
        let mut a = RecoveryRecorder::new();
        let mut b = RecoveryRecorder::new();
        for i in 1..=20u64 {
            let bd = RecoveryBreakdown::new(ms(1000 * i), ms(10 * i), ms(i));
            whole.record(&bd);
            if i % 3 == 0 {
                a.record(&bd)
            } else {
                b.record(&bd)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_total_ms(), whole.mean_total_ms());
        assert_eq!(a.total_percentile_ms(95.0), whole.total_percentile_ms(95.0));
    }

    #[test]
    fn tracker_counts_one_outage() {
        let mut t = AvailabilityTracker::new();
        t.outage_begins(at(1_000));
        // A second fault mid-outage must not double-count.
        t.outage_begins(at(2_000));
        t.outage_ends(at(5_000));
        let a = t.finish(at(10_000), false);
        assert_eq!(a.downtime, ms(4_000));
        assert_eq!(a.outages, 1);
        assert_eq!(a.repair_times.count(), 1);
        assert!(!a.lost);
        assert_eq!(a.availability(ms(10_000)), 0.6);
    }

    #[test]
    fn open_outage_runs_to_end() {
        let mut t = AvailabilityTracker::new();
        t.outage_begins(at(8_000));
        let a = t.finish(at(10_000), true);
        assert_eq!(a.downtime, ms(2_000));
        assert!(a.lost);
        // Never repaired: no MTTR sample.
        assert_eq!(a.repair_times.count(), 0);
    }

    #[test]
    fn degraded_windows_accumulate() {
        let mut t = AvailabilityTracker::new();
        t.degrade_begins(at(0));
        t.degrade_ends(at(3_000));
        t.degrade_begins(at(5_000));
        let a = t.finish(at(6_000), false);
        assert_eq!(a.degraded, ms(4_000));
        assert_eq!(a.downtime, SimDuration::ZERO);
    }

    #[test]
    fn outage_closes_degrade_window() {
        let mut t = AvailabilityTracker::new();
        t.degrade_begins(at(0));
        t.outage_begins(at(2_000));
        t.outage_ends(at(3_000));
        let a = t.finish(at(4_000), false);
        assert_eq!(a.degraded, ms(2_000));
        assert_eq!(a.downtime, ms(1_000));
    }

    #[test]
    fn nines_scale() {
        assert_eq!(availability_nines(1.0), 9.0);
        assert!((availability_nines(0.99) - 2.0).abs() < 1e-9);
        assert!((availability_nines(0.999) - 3.0).abs() < 1e-9);
        assert_eq!(availability_nines(0.0), 0.0);
        let a = StreamAvailability::default();
        assert_eq!(a.availability(SimDuration::ZERO), 1.0);
        assert_eq!(a.nines(ms(1)), 9.0);
    }
}
