#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-metrics — evaluation metrics
//!
//! The quantities the paper's evaluation reports, collected live from the
//! simulation:
//!
//! - [`utilization`] — TPU busy-time accounting, overall and per window
//!   (Fig. 5b/5d, Fig. 6a);
//! - [`latency`] — four-phase per-request breakdowns (Fig. 7b);
//! - [`throughput`] — frame accounting and FPS SLO audits (§6.2);
//! - [`recovery`] — failure-recovery latency breakdowns and per-stream
//!   availability under the chaos subsystem;
//! - [`defrag`] — online-defragmentation counters (moves, recovered
//!   contiguous capacity, modeled migration disruption, per-reason skip
//!   counts) and the packing-efficiency / fragmentation gauges;
//! - [`net`] — per-QoS-class message-delivery ledgers (conservation law
//!   `delivered + dropped + gave_up == sent`) and heartbeat
//!   false-positive counters for the lossy-transport layer;
//! - [`report`] — aligned text tables for the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::utilization::BusyTracker;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let mut tpu = BusyTracker::new(SimDuration::from_secs(60));
//! tpu.begin_busy(SimTime::ZERO);
//! tpu.end_busy(SimTime::from_millis(233));
//! // One 23.3 ms invoke per 66.7 ms frame — 0.35 TPU units.
//! let u = tpu.utilization(SimTime::from_millis(667));
//! assert!((u - 0.35).abs() < 0.01);
//! ```

pub mod defrag;
pub mod latency;
pub mod net;
pub mod recovery;
pub mod report;
pub mod throughput;
pub mod utilization;

pub use defrag::{fragmentation_ratio, packing_efficiency, DefragStats};
pub use latency::{BreakdownRecorder, LatencyBreakdown, Phase};
pub use net::{ChannelStats, DetectionStats, NetStats};
pub use recovery::{
    availability_nines, AvailabilityTracker, RecoveryBreakdown, RecoveryPhase, RecoveryRecorder,
    StreamAvailability,
};
pub use report::Table;
pub use throughput::{SloReport, ThroughputAudit};
pub use utilization::{BusyTracker, FleetUtilization};
