//! TPU busy-time accounting.
//!
//! Utilization is the paper's headline metric: the fraction of wall-clock
//! time a TPU spends executing inference requests. A [`BusyTracker`] records
//! busy intervals as they happen and can answer both "total utilization over
//! the run" (Fig. 5b/5d) and "average utilization per minute" (Fig. 6a).
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::utilization::BusyTracker;
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let mut t = BusyTracker::new(SimDuration::from_secs(60));
//! t.begin_busy(SimTime::from_millis(0));
//! t.end_busy(SimTime::from_millis(350));
//! let u = t.utilization(SimTime::from_millis(1000));
//! assert!((u - 0.35).abs() < 1e-9);
//! ```

use microedge_sim::series::StepSeries;
use microedge_sim::time::{SimDuration, SimTime};

/// Tracks the busy/idle state of one device over simulated time.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    series: StepSeries,
    busy_since: Option<SimTime>,
    total_busy: SimDuration,
}

impl BusyTracker {
    /// Creates an idle tracker whose windowed view uses `window`-wide
    /// buckets.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        BusyTracker {
            series: StepSeries::new(window),
            busy_since: None,
            total_busy: SimDuration::ZERO,
        }
    }

    /// Marks the device busy from `now`.
    ///
    /// # Panics
    ///
    /// Panics if the device is already busy — TPUs execute run-to-completion,
    /// so overlapping busy intervals indicate a scheduling bug.
    pub fn begin_busy(&mut self, now: SimTime) {
        assert!(
            self.busy_since.is_none(),
            "device marked busy while already busy at {now}"
        );
        self.busy_since = Some(now);
        self.series.set(now, 1.0);
    }

    /// Marks the device idle from `now`.
    ///
    /// # Panics
    ///
    /// Panics if the device was not busy, or if `now` precedes the busy
    /// start.
    pub fn end_busy(&mut self, now: SimTime) {
        let since = self
            .busy_since
            .take()
            .expect("device marked idle while not busy");
        self.total_busy += now.saturating_since(since);
        self.series.set(now, 0.0);
    }

    /// `true` while inside a busy interval.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Cumulative busy time of *completed* intervals.
    #[must_use]
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Overall utilization in `[0, 1]` over `[0, end]`, including any busy
    /// interval still open at `end`.
    #[must_use]
    pub fn utilization(&self, end: SimTime) -> f64 {
        let open = self
            .busy_since
            .map_or(SimDuration::ZERO, |s| end.saturating_since(s));
        (self.total_busy + open).ratio(end.saturating_since(SimTime::ZERO))
    }

    /// Per-window time-weighted utilization up to `end` (consumes the
    /// tracker). Each element is in `[0, 1]`.
    #[must_use]
    pub fn into_windows(mut self, end: SimTime) -> Vec<f64> {
        if self.busy_since.is_some() {
            self.end_busy(end);
        }
        self.series.finish(end)
    }
}

/// Utilization across a fleet of devices.
///
/// # Examples
///
/// ```
/// use microedge_metrics::utilization::FleetUtilization;
/// use microedge_sim::time::{SimDuration, SimTime};
///
/// let mut fleet = FleetUtilization::new(2, SimDuration::from_secs(60));
/// fleet.tracker_mut(0).begin_busy(SimTime::ZERO);
/// fleet.tracker_mut(0).end_busy(SimTime::from_secs(30));
/// // One device half busy, one idle: average 25 %.
/// let avg = fleet.average_utilization(SimTime::from_secs(60));
/// assert!((avg - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FleetUtilization {
    trackers: Vec<BusyTracker>,
}

impl FleetUtilization {
    /// Creates trackers for `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    #[must_use]
    pub fn new(devices: usize, window: SimDuration) -> Self {
        assert!(devices > 0, "fleet must contain at least one device");
        FleetUtilization {
            trackers: (0..devices).map(|_| BusyTracker::new(window)).collect(),
        }
    }

    /// Number of devices tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trackers.len()
    }

    /// `false` — a fleet always has at least one device; provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// Mutable access to one device's tracker.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn tracker_mut(&mut self, device: usize) -> &mut BusyTracker {
        &mut self.trackers[device]
    }

    /// Shared access to one device's tracker.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    #[must_use]
    pub fn tracker(&self, device: usize) -> &BusyTracker {
        &self.trackers[device]
    }

    /// Mean utilization across all devices over `[0, end]` — the quantity
    /// plotted in the paper's Fig. 5b/5d.
    #[must_use]
    pub fn average_utilization(&self, end: SimTime) -> f64 {
        let sum: f64 = self.trackers.iter().map(|t| t.utilization(end)).sum();
        sum / self.trackers.len() as f64
    }

    /// Per-device utilization over `[0, end]`.
    #[must_use]
    pub fn per_device_utilization(&self, end: SimTime) -> Vec<f64> {
        self.trackers.iter().map(|t| t.utilization(end)).collect()
    }

    /// Per-window fleet-average utilization up to `end` (consumes the
    /// fleet) — the series plotted in the paper's Fig. 6a.
    #[must_use]
    pub fn into_windowed_average(self, end: SimTime) -> Vec<f64> {
        let n = self.trackers.len() as f64;
        let per_device: Vec<Vec<f64>> = self
            .trackers
            .into_iter()
            .map(|t| t.into_windows(end))
            .collect();
        let buckets = per_device.iter().map(Vec::len).max().unwrap_or(0);
        (0..buckets)
            .map(|i| {
                per_device
                    .iter()
                    .map(|d| d.get(i).copied().unwrap_or(0.0))
                    .sum::<f64>()
                    / n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> SimDuration {
        SimDuration::from_secs(60)
    }

    #[test]
    fn utilization_counts_open_interval() {
        let mut t = BusyTracker::new(minute());
        t.begin_busy(SimTime::from_secs(0));
        // Still busy at the end of the run.
        assert!((t.utilization(SimTime::from_secs(10)) - 1.0).abs() < 1e-12);
        assert!(t.is_busy());
        assert_eq!(t.total_busy(), SimDuration::ZERO);
    }

    #[test]
    fn interleaved_busy_idle() {
        let mut t = BusyTracker::new(minute());
        for k in 0..10u64 {
            t.begin_busy(SimTime::from_millis(k * 100));
            t.end_busy(SimTime::from_millis(k * 100 + 35));
        }
        let u = t.utilization(SimTime::from_millis(1000));
        assert!((u - 0.35).abs() < 1e-9, "got {u}");
        assert_eq!(t.total_busy(), SimDuration::from_millis(350));
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_begin_panics() {
        let mut t = BusyTracker::new(minute());
        t.begin_busy(SimTime::ZERO);
        t.begin_busy(SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "not busy")]
    fn end_without_begin_panics() {
        let mut t = BusyTracker::new(minute());
        t.end_busy(SimTime::from_millis(1));
    }

    #[test]
    fn windowed_view_integrates_correctly() {
        let mut t = BusyTracker::new(SimDuration::from_secs(10));
        // Busy for the entire first window, half the second.
        t.begin_busy(SimTime::ZERO);
        t.end_busy(SimTime::from_secs(15));
        let windows = t.into_windows(SimTime::from_secs(20));
        assert_eq!(windows.len(), 2);
        assert!((windows[0] - 1.0).abs() < 1e-12);
        assert!((windows[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn windowed_view_closes_open_interval() {
        let mut t = BusyTracker::new(SimDuration::from_secs(10));
        t.begin_busy(SimTime::from_secs(5));
        let windows = t.into_windows(SimTime::from_secs(10));
        assert!((windows[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fleet_average_and_per_device() {
        let mut f = FleetUtilization::new(4, minute());
        f.tracker_mut(0).begin_busy(SimTime::ZERO);
        f.tracker_mut(0).end_busy(SimTime::from_secs(60));
        f.tracker_mut(1).begin_busy(SimTime::ZERO);
        f.tracker_mut(1).end_busy(SimTime::from_secs(30));
        let end = SimTime::from_secs(60);
        let per = f.per_device_utilization(end);
        assert_eq!(per.len(), 4);
        assert!((per[0] - 1.0).abs() < 1e-12);
        assert!((per[1] - 0.5).abs() < 1e-12);
        assert!((f.average_utilization(end) - 0.375).abs() < 1e-12);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn fleet_windowed_average() {
        let mut f = FleetUtilization::new(2, SimDuration::from_secs(10));
        f.tracker_mut(0).begin_busy(SimTime::ZERO);
        f.tracker_mut(0).end_busy(SimTime::from_secs(20));
        let series = f.into_windowed_average(SimTime::from_secs(20));
        assert_eq!(series.len(), 2);
        assert!((series[0] - 0.5).abs() < 1e-12);
        assert!((series[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_rejected() {
        let _ = FleetUtilization::new(0, minute());
    }
}
