//! Plain-text result tables.
//!
//! The benchmark harness regenerates every table and figure as aligned
//! ASCII tables; [`Table`] does the formatting.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::report::Table;
//!
//! let mut table = Table::new(&["config", "#TPUs", "cost"]);
//! table.row(&["baseline", "17", "$2550"]);
//! table.row(&["microedge", "6", "$1725"]);
//! let text = table.to_string();
//! assert!(text.contains("baseline"));
//! ```

use std::fmt;

/// An aligned, pipe-separated text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|&c| c.to_owned()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, width) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<width$}")?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimals — convenience for
/// building table rows.
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer-name", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows equal width.
        assert_eq!(lines[2].find('|'), lines[3].find('|'));
    }

    #[test]
    fn row_owned_and_len() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new(&[]);
    }

    #[test]
    fn fmt_f64_rounds() {
        assert_eq!(fmt_f64(0.3456, 2), "0.35");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }
}
