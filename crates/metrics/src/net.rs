//! Message-delivery accounting for the lossy-transport layer.
//!
//! Every cross-boundary message in a sharded replay belongs to one of three
//! QoS classes (control / heartbeat / telemetry), and each class keeps a
//! [`ChannelStats`] ledger obeying one conservation law:
//!
//! ```text
//! delivered + dropped + gave_up == sent
//! ```
//!
//! `sent` counts *logical* messages, not wire attempts — a control message
//! retransmitted four times is one `sent` plus four `retransmits`. A class
//! that never retransmits (heartbeat, telemetry) keeps `gave_up == 0`; a
//! class that always retransmits until its budget runs out (control) keeps
//! `dropped == 0`. The invariant is checked by [`ChannelStats::conserved`]
//! and asserted by the conservation proptests.
//!
//! [`DetectionStats`] counts what lossy heartbeats do to the failure
//! detector: suspicions raised, how many were false positives (the
//! component was alive — a gray failure of the link, not the node), and how
//! many were reconciled when heartbeats resumed.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::net::ChannelStats;
//!
//! let mut ch = ChannelStats::default();
//! ch.sent = 10;
//! ch.delivered = 8;
//! ch.dropped = 2;
//! assert!(ch.conserved());
//! assert!((ch.delivery_fraction() - 0.8).abs() < 1e-12);
//! ```

/// Per-QoS-class message ledger. All counters are exact integers so merged
/// artifacts stay byte-identical across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Logical messages submitted to the channel.
    pub sent: u64,
    /// Messages that reached the receiver (counted once, even if a
    /// retransmission was what got through).
    pub delivered: u64,
    /// Messages lost with no retransmission contract (best-effort classes).
    pub dropped: u64,
    /// Messages abandoned after the retransmit budget ran out, or shed
    /// before the first attempt (acked classes; each surfaces a typed
    /// error).
    pub gave_up: u64,
    /// Wire attempts beyond the first, summed over all messages.
    pub retransmits: u64,
    /// Messages shed at submission because the link's in-flight budget was
    /// exhausted (a subset of `gave_up`).
    pub shed: u64,
    /// Delivered messages that overtook a later-sent message on the same
    /// link (a reorder draw deferred them).
    pub reordered: u64,
}

impl ChannelStats {
    /// The conservation law every channel must obey at end of run.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.delivered + self.dropped + self.gave_up == self.sent && self.shed <= self.gave_up
    }

    /// Fraction of logical messages delivered (1.0 for an idle channel).
    #[must_use]
    pub fn delivery_fraction(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Retransmissions per logical message (control-plane overhead).
    #[must_use]
    pub fn retransmit_overhead(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.sent as f64
        }
    }

    /// Folds another ledger into this one (sharded-run merges).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.gave_up += other.gave_up;
        self.retransmits += other.retransmits;
        self.shed += other.shed;
        self.reordered += other.reordered;
    }
}

/// The three channel ledgers of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Acked, retransmitted admit/remove/fleet operations.
    pub control: ChannelStats,
    /// Unacked liveness beacons feeding the lease detector.
    pub heartbeat: ChannelStats,
    /// Best-effort frame exports and summary refreshes.
    pub telemetry: ChannelStats,
}

impl NetStats {
    /// `true` when every class obeys the conservation law.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.control.conserved() && self.heartbeat.conserved() && self.telemetry.conserved()
    }

    /// Number of classes violating conservation (0 on a healthy run; the
    /// benchmark artifact reports this so CI can pin it at zero).
    #[must_use]
    pub fn conservation_violations(&self) -> u64 {
        [&self.control, &self.heartbeat, &self.telemetry]
            .into_iter()
            .filter(|c| !c.conserved())
            .count() as u64
    }

    /// Folds another run's ledgers into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.control.merge(&other.control);
        self.heartbeat.merge(&other.heartbeat);
        self.telemetry.merge(&other.telemetry);
    }
}

/// What lossy heartbeats did to the failure detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionStats {
    /// Lease expiries that raised a suspicion.
    pub detections: u64,
    /// Suspicions raised against a component that was actually alive — the
    /// link was lossy or partitioned, not the node (gray failures).
    pub false_positives: u64,
    /// Suspicions cleared when heartbeats resumed.
    pub reconciliations: u64,
    /// Live streams on suspected clusters at suspicion time.
    pub suspected_streams: u64,
    /// Streams restored to service when their cluster's suspicion cleared.
    pub reconciled_streams: u64,
}

impl DetectionStats {
    /// False positives per heartbeat sent (0.0 for an idle detector).
    #[must_use]
    pub fn false_positive_rate(&self, heartbeats_sent: u64) -> f64 {
        if heartbeats_sent == 0 {
            0.0
        } else {
            self.false_positives as f64 / heartbeats_sent as f64
        }
    }

    /// Folds another detector's counters into this one.
    pub fn merge(&mut self, other: &DetectionStats) {
        self.detections += other.detections;
        self.false_positives += other.false_positives;
        self.reconciliations += other.reconciliations;
        self.suspected_streams += other.suspected_streams;
        self.reconciled_streams += other.reconciled_streams;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_catches_silent_loss_and_duplicates() {
        let mut ch = ChannelStats {
            sent: 5,
            delivered: 3,
            dropped: 1,
            gave_up: 1,
            ..ChannelStats::default()
        };
        assert!(ch.conserved());
        // Silent loss: a message vanished without being counted.
        ch.dropped = 0;
        assert!(!ch.conserved());
        // Duplicate delivery: more arrivals than submissions.
        ch.dropped = 1;
        ch.delivered = 4;
        assert!(!ch.conserved());
    }

    #[test]
    fn shed_must_stay_within_gave_up() {
        let ch = ChannelStats {
            sent: 2,
            gave_up: 1,
            delivered: 1,
            shed: 2,
            ..ChannelStats::default()
        };
        assert!(!ch.conserved());
    }

    #[test]
    fn fractions_and_overhead() {
        let ch = ChannelStats {
            sent: 4,
            delivered: 3,
            dropped: 1,
            retransmits: 6,
            ..ChannelStats::default()
        };
        assert!((ch.delivery_fraction() - 0.75).abs() < 1e-12);
        assert!((ch.retransmit_overhead() - 1.5).abs() < 1e-12);
        assert_eq!(ChannelStats::default().delivery_fraction(), 1.0);
        assert_eq!(ChannelStats::default().retransmit_overhead(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = ChannelStats {
            sent: 3,
            delivered: 2,
            dropped: 1,
            gave_up: 0,
            retransmits: 4,
            shed: 0,
            reordered: 1,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.sent, 6);
        assert_eq!(b.retransmits, 8);
        assert_eq!(b.reordered, 2);
        assert!(b.conserved());

        let mut stats = NetStats::default();
        stats.control.sent = 1;
        stats.control.delivered = 1;
        let mut merged = NetStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.control.sent, 2);
        assert!(merged.conserved());
        assert_eq!(merged.conservation_violations(), 0);
        merged.telemetry.sent = 1;
        assert_eq!(merged.conservation_violations(), 1);
    }

    #[test]
    fn detection_rate_and_merge() {
        let mut d = DetectionStats {
            detections: 3,
            false_positives: 2,
            reconciliations: 2,
            suspected_streams: 10,
            reconciled_streams: 10,
        };
        assert!((d.false_positive_rate(100) - 0.02).abs() < 1e-12);
        assert_eq!(d.false_positive_rate(0), 0.0);
        let other = d;
        d.merge(&other);
        assert_eq!(d.detections, 6);
        assert_eq!(d.reconciled_streams, 20);
    }
}
