//! Throughput accounting and SLO audits.
//!
//! "Meeting the processing throughput requirement in FPS is an important
//! SLO" (paper §2): if completions lag arrivals, queued frames eventually
//! blow the per-frame latency bound. A [`ThroughputAudit`] counts emitted
//! and completed frames for one camera stream and judges whether the stream
//! held its target frame rate.
//!
//! # Examples
//!
//! ```
//! use microedge_metrics::throughput::ThroughputAudit;
//! use microedge_sim::time::SimTime;
//!
//! let mut audit = ThroughputAudit::new(15.0);
//! for k in 0..30u64 {
//!     let t = SimTime::from_millis(k * 67);
//!     audit.frame_emitted(t);
//!     audit.frame_completed(t);
//! }
//! let report = audit.report("camera-0", SimTime::from_secs(2));
//! assert!(report.met_fps());
//! ```

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimTime;

/// Fractional shortfall tolerated before an SLO is declared violated.
///
/// Completions trail arrivals by the in-flight frame, so even a perfectly
/// keeping-up stream measures marginally below its nominal rate over a
/// finite window; 2 % absorbs that edge effect without masking real
/// backlog growth.
pub const FPS_TOLERANCE: f64 = 0.02;

/// Counts frames for one camera stream.
///
/// The audit is nameless — the owning runtime already stores the stream's
/// name, and duplicating it here would cost one heap `String` per stream
/// at 100k-stream scale. The name is supplied at [`ThroughputAudit::report`]
/// time instead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputAudit {
    target_fps: f64,
    emitted: u64,
    completed: u64,
    first_emit: Option<SimTime>,
    last_complete: Option<SimTime>,
}

impl ThroughputAudit {
    /// Creates an audit with the given target frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `target_fps` is not strictly positive.
    #[must_use]
    pub fn new(target_fps: f64) -> Self {
        assert!(
            target_fps.is_finite() && target_fps > 0.0,
            "target FPS must be positive, got {target_fps}"
        );
        ThroughputAudit {
            target_fps,
            emitted: 0,
            completed: 0,
            first_emit: None,
            last_complete: None,
        }
    }

    /// Target frame rate.
    #[must_use]
    pub fn target_fps(&self) -> f64 {
        self.target_fps
    }

    /// Records a frame entering the pipeline at `now`.
    pub fn frame_emitted(&mut self, now: SimTime) {
        self.emitted += 1;
        self.first_emit.get_or_insert(now);
    }

    /// Records a frame finishing the pipeline at `now`.
    ///
    /// Completions may be reported out of time order (the simulator records
    /// a completion the moment its timing is decided); the audit keeps the
    /// latest completion instant regardless of reporting order.
    ///
    /// # Panics
    ///
    /// Panics if more frames complete than were emitted.
    pub fn frame_completed(&mut self, now: SimTime) {
        assert!(self.completed < self.emitted, "completion without emission");
        self.completed += 1;
        self.last_complete = Some(self.last_complete.map_or(now, |last| last.max(now)));
    }

    /// Frames emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Frames completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Frames still in flight.
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.emitted - self.completed
    }

    /// Produces the final report for `stream`, for a run ending at `end`.
    ///
    /// For a fully drained stream (every emitted frame completed) the
    /// observation window closes at the last completion rather than at
    /// `end`, so a frame-limited stream that finished early is judged over
    /// its active period only. A stream with backlog is always judged over
    /// the full window — falling behind must not flatter the rate.
    #[must_use]
    pub fn report(&self, stream: &str, end: SimTime) -> SloReport {
        let effective_end = match self.last_complete {
            Some(last) if self.completed == self.emitted => last.min(end),
            _ => end,
        };
        let window = self
            .first_emit
            .map_or(0.0, |s| effective_end.saturating_since(s).as_secs_f64());
        let achieved = if window > 0.0 {
            self.completed as f64 / window
        } else {
            0.0
        };
        SloReport {
            stream: stream.to_owned(),
            target_fps: self.target_fps,
            achieved_fps: achieved,
            emitted: self.emitted,
            completed: self.completed,
        }
    }
}

/// The outcome of one stream's throughput audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    stream: String,
    target_fps: f64,
    achieved_fps: f64,
    emitted: u64,
    completed: u64,
}

impl SloReport {
    /// Stream name.
    #[must_use]
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// Target frame rate.
    #[must_use]
    pub fn target_fps(&self) -> f64 {
        self.target_fps
    }

    /// Measured completion rate over the observation window.
    #[must_use]
    pub fn achieved_fps(&self) -> f64 {
        self.achieved_fps
    }

    /// Frames emitted during the run.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Frames completed during the run.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// `true` when the achieved rate is within [`FPS_TOLERANCE`] of target.
    #[must_use]
    pub fn met_fps(&self) -> bool {
        self.achieved_fps >= self.target_fps * (1.0 - FPS_TOLERANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeping_up_meets_slo() {
        let mut a = ThroughputAudit::new(10.0);
        for k in 0..100u64 {
            let t = SimTime::from_millis(k * 100);
            a.frame_emitted(t);
            a.frame_completed(t + microedge_sim::time::SimDuration::from_millis(30));
        }
        let r = a.report("s", SimTime::from_secs(10));
        assert!(r.met_fps(), "achieved {}", r.achieved_fps());
        assert_eq!(r.emitted(), 100);
        assert_eq!(r.completed(), 100);
    }

    #[test]
    fn falling_behind_violates_slo() {
        let mut a = ThroughputAudit::new(10.0);
        for k in 0..100u64 {
            a.frame_emitted(SimTime::from_millis(k * 100));
        }
        // Only half the frames ever complete.
        for k in 0..50u64 {
            a.frame_completed(SimTime::from_millis(k * 200));
        }
        let r = a.report("s", SimTime::from_secs(10));
        assert!(!r.met_fps());
        assert_eq!(a.backlog(), 50);
    }

    #[test]
    fn empty_stream_reports_zero() {
        let a = ThroughputAudit::new(15.0);
        let r = a.report("s", SimTime::from_secs(1));
        assert_eq!(r.achieved_fps(), 0.0);
        assert!(!r.met_fps());
    }

    #[test]
    fn window_starts_at_first_emission() {
        let mut a = ThroughputAudit::new(10.0);
        // Stream starts 5 s into the run; rate must be judged from there.
        for k in 0..50u64 {
            let t = SimTime::from_millis(5000 + k * 100);
            a.frame_emitted(t);
            a.frame_completed(t);
        }
        let r = a.report("s", SimTime::from_secs(10));
        assert!(r.met_fps(), "achieved {}", r.achieved_fps());
    }

    #[test]
    #[should_panic(expected = "completion without emission")]
    fn overcompletion_panics() {
        let mut a = ThroughputAudit::new(1.0);
        a.frame_completed(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = ThroughputAudit::new(0.0);
    }

    #[test]
    fn accessors() {
        let a = ThroughputAudit::new(15.0);
        assert_eq!(a.target_fps(), 15.0);
        assert_eq!(a.emitted(), 0);
        assert_eq!(a.completed(), 0);
    }
}
