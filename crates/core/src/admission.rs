//! Admission control (paper §4.2 and §4.3 — Algorithm 1).
//!
//! The extended scheduler treats TPU placement as **online bin packing**:
//! TPUs are bins of capacity 1 TPU unit, requests are items sized by their
//! requested units, with the extra *Model Size Rule* constraint that the
//! distinct models on one TPU must fit its parameter memory. MicroEdge uses
//! First-Fit (asymptotic approximation ratio 1.7); the other classic
//! heuristics are provided for the packing ablation.
//!
//! Two decision procedures mirror Algorithm 1 exactly:
//!
//! - `AdmissionControl` (lines 1–8): place the whole request on the first
//!   TPU that passes both the TPU Units Rule and the Model Size Rule;
//! - `AdmissionControlWithWorkloadPartitioning` (lines 9–28): if that fails,
//!   split the requested units across several TPUs, taking
//!   `min(remaining, 1 − CurrentLoad)` from each eligible TPU in scan order.
//!
//! ## The control-plane fast path
//!
//! Every policy here plans through the pool's capacity index (see
//! [`crate::pool`]): First-Fit and Next-Fit walk the max-free segment tree
//! ("first TPU at or after `start` with room for the request", O(log M) per
//! hop, and each hop either admits or permanently skips a model-inadmissible
//! TPU), while Best-Fit and Worst-Fit iterate the free-units buckets in the
//! exact order their reference sort would produce — without sorting, and
//! without visiting TPUs that cannot contribute. Plans are written into a
//! caller-owned [`PlanBuffer`], so steady-state planning allocates nothing.
//!
//! The pre-index linear scan survives verbatim in [`reference`] as the
//! differential-testing oracle: for every request sequence, each indexed
//! policy must produce byte-identical plans to its reference twin (see
//! `tests/admission_differential.rs`).
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::admission::{AdmissionPolicy, FirstFit};
//! use microedge_core::config::Features;
//! use microedge_core::pool::TpuPool;
//! use microedge_core::units::TpuUnits;
//! use microedge_models::catalog::ssd_mobilenet_v2;
//! use microedge_tpu::spec::TpuSpec;
//!
//! let cluster = ClusterBuilder::new().trpis(2).vrpis(1).build();
//! let pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
//! let mut policy = FirstFit::new();
//! let plan = policy
//!     .plan(&pool, &ssd_mobilenet_v2(), TpuUnits::from_f64(0.35), Features::all())
//!     .unwrap();
//! assert_eq!(plan.len(), 1);
//! ```

use microedge_models::profile::ModelProfile;
use microedge_tpu::device::TpuId;

use crate::config::Features;
use crate::pool::{Allocation, TpuAccount, TpuPool};
use crate::units::TpuUnits;

/// A reusable plan target: holds the allocations of the most recent
/// successful [`AdmissionPolicy::plan_into`] call. Reusing one buffer across
/// decisions keeps steady-state admission planning allocation-free.
#[derive(Debug, Clone, Default)]
pub struct PlanBuffer {
    allocations: Vec<Allocation>,
}

impl PlanBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        PlanBuffer::default()
    }

    /// The planned allocations (empty unless the last `plan_into` returned
    /// `true`, or the request was for zero units).
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Number of planned allocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// `true` when the buffer holds no allocations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// Moves the plan out as an owned vector, leaving the buffer empty
    /// (and its capacity intact is *not* guaranteed — prefer
    /// [`PlanBuffer::allocations`] on hot paths).
    #[must_use]
    pub fn take(&mut self) -> Vec<Allocation> {
        std::mem::take(&mut self.allocations)
    }

    /// Empties the buffer, keeping its capacity. Policy implementations
    /// must call this before planning (and on rejection).
    pub fn clear(&mut self) {
        self.allocations.clear();
    }

    /// Appends one allocation — the building block for out-of-crate
    /// [`AdmissionPolicy`] implementations.
    pub fn push(&mut self, allocation: Allocation) {
        self.allocations.push(allocation);
    }
}

/// Decides where a TPU request goes. Implementations are the packing
/// heuristics; [`FirstFit`] is the one MicroEdge ships. `Send` because the
/// sharded replay moves whole `World`s — scheduler and policy included —
/// across its worker pool between epochs.
pub trait AdmissionPolicy: std::fmt::Debug + Send {
    /// Plans allocations for a request of `units` of `model` into `out`,
    /// returning `false` when the request must be rejected (in which case
    /// `out` is left empty). The plan is **not** committed — callers apply
    /// it with [`TpuPool::commit`]. This is the zero-allocation entry
    /// point; reuse one [`PlanBuffer`] across calls.
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool;

    /// Convenience wrapper over [`AdmissionPolicy::plan_into`] allocating a
    /// fresh plan vector per call, or `None` when the request must be
    /// rejected.
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let mut buffer = PlanBuffer::new();
        self.plan_into(pool, model, units, features, &mut buffer)
            .then(|| buffer.take())
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// The Model Size Rule plus the co-compiling feature flag: can `model` be
/// (or is it already) loaded on this TPU?
///
/// With co-compiling enabled this is Algorithm 1 line 4/14: the model is
/// already resident, or its parameter data fits the TPU's free memory. With
/// co-compiling *disabled* a TPU cannot space-share distinct models, so the
/// TPU must either already serve this model or serve no model at all.
fn model_admissible(
    account: &TpuAccount,
    model: &ModelProfile,
    budget: u64,
    features: Features,
) -> bool {
    if account.has_live_model(model.id()) {
        return true;
    }
    if features.co_compiling {
        model.param_bytes() <= account.free_mem(budget)
    } else {
        account.live_model_count() == 0
    }
}

fn eligible(account: &TpuAccount) -> bool {
    account.is_available()
}

/// Indexed scan of available TPUs with ids in `[lo, hi)` and free units
/// ≥ `min_free`, ascending by id — each step is one O(log M) segment-tree
/// descent, so skipping over a fully committed prefix costs nothing.
fn id_scan(
    pool: &TpuPool,
    lo: u32,
    hi: u32,
    min_free: TpuUnits,
) -> impl Iterator<Item = TpuId> + '_ {
    let mut next = lo;
    std::iter::from_fn(move || {
        if next >= hi {
            return None;
        }
        let id = pool.next_tpu_with_free(TpuId(next), min_free)?;
        if id.0 >= hi {
            return None;
        }
        next = id.0 + 1;
        Some(id)
    })
}

/// The shared Algorithm 1 body over index-backed candidate streams.
///
/// `whole_pass` yields, in the policy's scan order, exactly the available
/// TPUs whose free units satisfy the TPU Units Rule for the whole request;
/// `split_pass` yields, in the same order, every available TPU with any
/// free capacity at all. Both must be equivalent to the reference policy's
/// ordered scan with un-fitting TPUs removed — the removal is sound because
/// `plan_in_order` skips those TPUs anyway (whole placement needs
/// `free ≥ units`; partitioning takes `min(remaining, free)`, a no-op at
/// `free = 0`).
fn plan_indexed<W, S, WI, SI>(
    pool: &TpuPool,
    model: &ModelProfile,
    units: TpuUnits,
    features: Features,
    whole_pass: W,
    split_pass: S,
    out: &mut PlanBuffer,
) -> bool
where
    W: FnOnce() -> WI,
    WI: Iterator<Item = TpuId>,
    S: FnOnce() -> SI,
    SI: Iterator<Item = TpuId>,
{
    out.allocations.clear();
    if units.is_zero() {
        return true;
    }
    let budget = pool.param_budget();
    // Procedure AdmissionControl (Algorithm 1, lines 1–8): candidates
    // already satisfy the TPU Units Rule, so only the Model Size Rule is
    // left to check.
    for tpu in whole_pass() {
        if model_admissible(pool.account(tpu), model, budget, features) {
            out.allocations.push(Allocation::new(tpu, units));
            return true;
        }
    }
    if !features.workload_partitioning {
        return false;
    }
    // Procedure AdmissionControlWithWorkloadPartitioning (lines 9–28).
    let mut remaining = units;
    for tpu in split_pass() {
        let account = pool.account(tpu);
        if !model_admissible(account, model, budget, features) {
            continue;
        }
        let wp = remaining.min(account.free_units());
        if !wp.is_zero() {
            out.allocations.push(Allocation::new(tpu, wp));
            remaining -= wp;
            if remaining.is_zero() {
                return true;
            }
        }
    }
    out.allocations.clear();
    false
}

/// First-Fit: scan TPUs in fixed id order — MicroEdge's shipped policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl FirstFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        FirstFit
    }
}

impl AdmissionPolicy for FirstFit {
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        let len = u32::try_from(pool.len()).expect("tpu pool size fits u32");
        plan_indexed(
            pool,
            model,
            units,
            features,
            || id_scan(pool, 0, len, units),
            || id_scan(pool, 0, len, TpuUnits::ZERO),
            out,
        )
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Best-Fit: prefer the most-loaded TPU that can still take the request,
/// keeping large holes open for future big requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestFit;

impl BestFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        BestFit
    }
}

impl AdmissionPolicy for BestFit {
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        // Least free units first, ids ascending within ties — the bucket
        // iteration order is exactly the reference `(free_units, id)` sort.
        plan_indexed(
            pool,
            model,
            units,
            features,
            || pool.tpus_by_free_ascending(units),
            || pool.tpus_by_free_ascending(TpuUnits::ZERO),
            out,
        )
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }
}

/// Worst-Fit: prefer the emptiest TPU, spreading load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFit;

impl WorstFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        WorstFit
    }
}

impl AdmissionPolicy for WorstFit {
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        // Most free units first, ids ascending within ties — matching the
        // reference `(Reverse(free_units), id)` sort.
        plan_indexed(
            pool,
            model,
            units,
            features,
            || pool.tpus_by_free_descending(units),
            || pool.tpus_by_free_descending(TpuUnits::ZERO),
            out,
        )
    }

    fn name(&self) -> &'static str {
        "worst-fit"
    }
}

/// Next-k-Fit: like Next-Fit but keeps the last `k` opened TPUs active —
/// the middle ground the paper's §4.2 heuristic list includes between
/// Next-Fit (k = 1) and First-Fit (k = ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextKFit {
    k: usize,
    cursor: usize,
}

impl NextKFit {
    /// Creates the policy keeping the last `k` TPUs active.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Next-k-Fit requires k ≥ 1");
        NextKFit { k, cursor: 0 }
    }
}

impl AdmissionPolicy for NextKFit {
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        let accounts = pool.accounts();
        if accounts.is_empty() {
            out.allocations.clear();
            return false;
        }
        // The active window (at most k TPUs ending at the cursor) is a
        // constant-size linear scan; the tail beyond the cursor goes
        // through the index. TPUs before the window are never candidates.
        let window_start = self.cursor.saturating_sub(self.k - 1);
        let window_end = self.cursor.min(accounts.len() - 1);
        let tail_lo =
            u32::try_from((self.cursor + 1).min(accounts.len())).expect("tpu pool size fits u32");
        let len = u32::try_from(accounts.len()).expect("tpu pool size fits u32");
        let window = &accounts[window_start..=window_end];
        let planned = plan_indexed(
            pool,
            model,
            units,
            features,
            || {
                window
                    .iter()
                    .filter(move |a| eligible(a) && a.free_units() >= units)
                    .map(TpuAccount::id)
                    .chain(id_scan(pool, tail_lo, len, units))
            },
            || {
                window
                    .iter()
                    .filter(|a| eligible(a) && !a.free_units().is_zero())
                    .map(TpuAccount::id)
                    .chain(id_scan(pool, tail_lo, len, TpuUnits::ZERO))
            },
            out,
        );
        if planned {
            if let Some(last) = out.allocations.last() {
                // Ids are dense (TPU i is accounts[i]), so the id doubles
                // as the cursor position.
                self.cursor = (last.tpu().index()).max(self.cursor);
            }
        }
        planned
    }

    fn name(&self) -> &'static str {
        "next-k-fit"
    }
}

/// Next-Fit: resume scanning where the previous request left off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NextFit {
    cursor: usize,
}

impl NextFit {
    /// Creates the policy with the cursor at the first TPU.
    #[must_use]
    pub fn new() -> Self {
        NextFit { cursor: 0 }
    }
}

impl AdmissionPolicy for NextFit {
    fn plan_into(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        if pool.is_empty() {
            out.allocations.clear();
            return false;
        }
        let len = u32::try_from(pool.len()).expect("tpu pool size fits u32");
        let start = u32::try_from(self.cursor % pool.len()).expect("cursor below len fits u32");
        let planned = plan_indexed(
            pool,
            model,
            units,
            features,
            || id_scan(pool, start, len, units).chain(id_scan(pool, 0, start, units)),
            || {
                id_scan(pool, start, len, TpuUnits::ZERO).chain(id_scan(
                    pool,
                    0,
                    start,
                    TpuUnits::ZERO,
                ))
            },
            out,
        );
        if planned {
            if let Some(last) = out.allocations.last() {
                self.cursor = last.tpu().index();
            }
        }
        planned
    }

    fn name(&self) -> &'static str {
        "next-fit"
    }
}

pub mod reference {
    //! The pre-index linear-scan policies, kept verbatim as the
    //! differential-testing oracle: every indexed policy above must produce
    //! byte-identical plans to its twin here on any request sequence. These
    //! materialise and (for Best/Worst-Fit) sort a full candidate vector
    //! per decision — O(M) or O(M log M) where the fast path is O(log M) —
    //! so they are for testing and the perf baseline, not production use.

    use super::{
        eligible, model_admissible, AdmissionPolicy, Allocation, Features, ModelProfile,
        PlanBuffer, TpuAccount, TpuPool, TpuUnits,
    };

    /// Places the whole request on one TPU chosen from `ordered`, or splits
    /// it across them when `features.workload_partitioning` allows — the
    /// shared body of every heuristic, parameterised only by scan order.
    fn plan_in_order(
        ordered: &[&TpuAccount],
        budget: u64,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
        out: &mut PlanBuffer,
    ) -> bool {
        out.allocations.clear();
        if units.is_zero() {
            return true;
        }
        // Procedure AdmissionControl (Algorithm 1, lines 1–8).
        for account in ordered {
            let fits_units = account
                .load()
                .checked_add(units)
                .is_some_and(|total| total <= TpuUnits::ONE);
            if fits_units && model_admissible(account, model, budget, features) {
                out.allocations.push(Allocation::new(account.id(), units));
                return true;
            }
        }
        if !features.workload_partitioning {
            return false;
        }
        // Procedure AdmissionControlWithWorkloadPartitioning (lines 9–28).
        let mut remaining = units;
        for account in ordered {
            if !model_admissible(account, model, budget, features) {
                continue;
            }
            let wp = remaining.min(account.free_units());
            if !wp.is_zero() {
                out.allocations.push(Allocation::new(account.id(), wp));
                remaining -= wp;
                if remaining.is_zero() {
                    return true;
                }
            }
        }
        out.allocations.clear();
        false
    }

    /// Linear-scan First-Fit (the oracle for [`super::FirstFit`]).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct FirstFit;

    impl FirstFit {
        /// Creates the policy.
        #[must_use]
        pub fn new() -> Self {
            FirstFit
        }
    }

    impl AdmissionPolicy for FirstFit {
        fn plan_into(
            &mut self,
            pool: &TpuPool,
            model: &ModelProfile,
            units: TpuUnits,
            features: Features,
            out: &mut PlanBuffer,
        ) -> bool {
            let ordered: Vec<&TpuAccount> =
                pool.accounts().iter().filter(|a| eligible(a)).collect();
            plan_in_order(&ordered, pool.param_budget(), model, units, features, out)
        }

        fn name(&self) -> &'static str {
            "first-fit/linear"
        }
    }

    /// Linear-scan Best-Fit (the oracle for [`super::BestFit`]).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct BestFit;

    impl BestFit {
        /// Creates the policy.
        #[must_use]
        pub fn new() -> Self {
            BestFit
        }
    }

    impl AdmissionPolicy for BestFit {
        fn plan_into(
            &mut self,
            pool: &TpuPool,
            model: &ModelProfile,
            units: TpuUnits,
            features: Features,
            out: &mut PlanBuffer,
        ) -> bool {
            let mut ordered: Vec<&TpuAccount> =
                pool.accounts().iter().filter(|a| eligible(a)).collect();
            // Least free units first; ties by id for determinism.
            ordered.sort_by_key(|a| (a.free_units(), a.id()));
            plan_in_order(&ordered, pool.param_budget(), model, units, features, out)
        }

        fn name(&self) -> &'static str {
            "best-fit/linear"
        }
    }

    /// Linear-scan Worst-Fit (the oracle for [`super::WorstFit`]).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct WorstFit;

    impl WorstFit {
        /// Creates the policy.
        #[must_use]
        pub fn new() -> Self {
            WorstFit
        }
    }

    impl AdmissionPolicy for WorstFit {
        fn plan_into(
            &mut self,
            pool: &TpuPool,
            model: &ModelProfile,
            units: TpuUnits,
            features: Features,
            out: &mut PlanBuffer,
        ) -> bool {
            let mut ordered: Vec<&TpuAccount> =
                pool.accounts().iter().filter(|a| eligible(a)).collect();
            ordered.sort_by_key(|a| (std::cmp::Reverse(a.free_units()), a.id()));
            plan_in_order(&ordered, pool.param_budget(), model, units, features, out)
        }

        fn name(&self) -> &'static str {
            "worst-fit/linear"
        }
    }

    /// Linear-scan Next-k-Fit (the oracle for [`super::NextKFit`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct NextKFit {
        k: usize,
        cursor: usize,
    }

    impl NextKFit {
        /// Creates the policy keeping the last `k` TPUs active.
        ///
        /// # Panics
        ///
        /// Panics if `k` is zero.
        #[must_use]
        pub fn new(k: usize) -> Self {
            assert!(k > 0, "Next-k-Fit requires k ≥ 1");
            NextKFit { k, cursor: 0 }
        }
    }

    impl AdmissionPolicy for NextKFit {
        fn plan_into(
            &mut self,
            pool: &TpuPool,
            model: &ModelProfile,
            units: TpuUnits,
            features: Features,
            out: &mut PlanBuffer,
        ) -> bool {
            let accounts = pool.accounts();
            if accounts.is_empty() {
                out.allocations.clear();
                return false;
            }
            // The active window: the k TPUs ending at the cursor, then the
            // rest in id order (candidates for opening).
            let window_start = self.cursor.saturating_sub(self.k - 1);
            let ordered: Vec<&TpuAccount> = accounts
                [window_start..=self.cursor.min(accounts.len() - 1)]
                .iter()
                .chain(&accounts[(self.cursor + 1).min(accounts.len())..])
                .filter(|a| eligible(a))
                .collect();
            let planned = plan_in_order(&ordered, pool.param_budget(), model, units, features, out);
            if planned {
                if let Some(last) = out.allocations.last() {
                    self.cursor = accounts
                        .iter()
                        .position(|a| a.id() == last.tpu())
                        .unwrap_or(0)
                        .max(self.cursor);
                }
            }
            planned
        }

        fn name(&self) -> &'static str {
            "next-k-fit/linear"
        }
    }

    /// Linear-scan Next-Fit (the oracle for [`super::NextFit`]).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct NextFit {
        cursor: usize,
    }

    impl NextFit {
        /// Creates the policy with the cursor at the first TPU.
        #[must_use]
        pub fn new() -> Self {
            NextFit { cursor: 0 }
        }
    }

    impl AdmissionPolicy for NextFit {
        fn plan_into(
            &mut self,
            pool: &TpuPool,
            model: &ModelProfile,
            units: TpuUnits,
            features: Features,
            out: &mut PlanBuffer,
        ) -> bool {
            let accounts = pool.accounts();
            if accounts.is_empty() {
                out.allocations.clear();
                return false;
            }
            let start = self.cursor % accounts.len();
            let ordered: Vec<&TpuAccount> = accounts[start..]
                .iter()
                .chain(&accounts[..start])
                .filter(|a| eligible(a))
                .collect();
            let planned = plan_in_order(&ordered, pool.param_budget(), model, units, features, out);
            if planned {
                if let Some(last) = out.allocations.last() {
                    self.cursor = accounts
                        .iter()
                        .position(|a| a.id() == last.tpu())
                        .unwrap_or(0);
                }
            }
            planned
        }

        fn name(&self) -> &'static str {
            "next-fit/linear"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_models::catalog::{
        bodypix_mobilenet_v1, mobilenet_v1, resnet_50, ssd_mobilenet_v2, unet_v2,
    };
    use microedge_tpu::device::TpuId;
    use microedge_tpu::spec::TpuSpec;

    fn pool(trpis: u32) -> TpuPool {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(1).build();
        TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
    }

    fn u(f: f64) -> TpuUnits {
        TpuUnits::from_f64(f)
    }

    #[test]
    fn first_fit_fills_first_tpu_first() {
        let mut pool = pool(3);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        for _ in 0..2 {
            let plan = ff.plan(&pool, &m, u(0.35), Features::all()).unwrap();
            assert_eq!(plan.len(), 1);
            assert_eq!(plan[0].tpu(), TpuId(0));
            pool.commit(&m, &plan);
        }
        // Third 0.35 no longer fits TPU 0 (0.70 + 0.35 > 1): basic pass
        // moves to TPU 1... unless partitioning splits it first? Algorithm 1
        // tries the whole request on each TPU first, so TPU 1 takes it.
        let plan = ff.plan(&pool, &m, u(0.35), Features::all()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].tpu(), TpuId(1));
    }

    #[test]
    fn partitioning_splits_the_paper_example() {
        // Three pods of 0.6 units fit on two TPUs only with partitioning
        // (paper §4.3's worked example).
        let mut pool = pool(2);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();

        let p1 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(p1, vec![Allocation::new(TpuId(0), u(0.6))]);
        pool.commit(&m, &p1);

        // Algorithm 1 always tries the unsplit placement first (line 11), so
        // the second pod lands whole on the still-empty TPU 1.
        let p2 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(p2, vec![Allocation::new(TpuId(1), u(0.6))]);
        pool.commit(&m, &p2);

        // The third pod cannot fit unsplit anywhere; partitioning takes
        // 0.4 from TPU 0 (66 % of its requests) and 0.2 from TPU 1.
        let p3 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(
            p3,
            vec![
                Allocation::new(TpuId(0), u(0.4)),
                Allocation::new(TpuId(1), u(0.2)),
            ]
        );
        pool.commit(&m, &p3);

        // Two TPUs suffice for the three 0.6-unit pods, as in the paper.
        assert_eq!(pool.account(TpuId(0)).load(), TpuUnits::ONE);
        assert_eq!(pool.account(TpuId(1)).load(), u(0.8));
    }

    #[test]
    fn without_partitioning_the_example_needs_three_tpus() {
        let mut pool = pool(3);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        let features = Features::co_compiling_only();
        for i in 0..3 {
            let plan = ff.plan(&pool, &m, u(0.6), features).unwrap();
            assert_eq!(plan.len(), 1, "no partitioning allowed");
            assert_eq!(plan[0].tpu(), TpuId(i));
            pool.commit(&m, &plan);
        }
    }

    #[test]
    fn requests_over_one_unit_need_partitioning() {
        let pool = pool(2);
        let mut ff = FirstFit::new();
        let m = bodypix_mobilenet_v1();
        assert!(
            ff.plan(&pool, &m, u(1.2), Features::co_compiling_only())
                .is_none(),
            "1.2 units cannot fit one TPU"
        );
        let plan = ff.plan(&pool, &m, u(1.2), Features::all()).unwrap();
        assert_eq!(
            plan,
            vec![
                Allocation::new(TpuId(0), u(1.0)),
                Allocation::new(TpuId(1), u(0.2)),
            ]
        );
    }

    #[test]
    fn rejects_when_cumulative_capacity_insufficient() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        pool.commit(&m, &[Allocation::new(TpuId(0), u(0.9))]);
        assert!(ff.plan(&pool, &m, u(0.2), Features::all()).is_none());
    }

    #[test]
    fn model_size_rule_blocks_overflowing_model() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        // ResNet-50 alone exceeds the budget; another model resident means
        // ResNet cannot be admitted at all on that TPU.
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(
            ff.plan(&pool, &resnet_50(), u(0.3), Features::all())
                .is_none(),
            "no TPU satisfies the Model Size Rule"
        );
    }

    #[test]
    fn resident_model_bypasses_size_check() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let big = resnet_50();
        // An empty TPU: free_mem is the whole budget, which ResNet exceeds.
        assert!(
            ff.plan(&pool, &big, u(0.3), Features::all()).is_none(),
            "ResNet-50 never fits the parameter budget"
        );
        // But if it is somehow already resident (committed by an operator
        // override), further pods of the same model are admissible.
        pool.commit(&big, &[Allocation::new(TpuId(0), u(0.3))]);
        assert!(ff.plan(&pool, &big, u(0.3), Features::all()).is_some());
    }

    #[test]
    fn no_cocompiling_forbids_mixing_models() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let features = Features::partitioning_only();
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(
            ff.plan(&pool, &unet_v2(), u(0.2), features).is_none(),
            "distinct model may not share a TPU without co-compiling"
        );
        assert!(
            ff.plan(&pool, &mobilenet_v1(), u(0.2), features).is_some(),
            "same model may time-share"
        );
    }

    #[test]
    fn cocompiling_allows_mixing_within_budget() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(ff
            .plan(&pool, &unet_v2(), u(0.2), Features::all())
            .is_some());
        // A third model that would overflow the budget is rejected.
        pool.commit(&unet_v2(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(ff
            .plan(&pool, &ssd_mobilenet_v2(), u(0.2), Features::all())
            .is_none());
    }

    #[test]
    fn failed_tpus_are_skipped() {
        let mut pool = pool(2);
        let mut ff = FirstFit::new();
        pool.fail(TpuId(0));
        let plan = ff.plan(&pool, &unet_v2(), u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1));
    }

    #[test]
    fn zero_unit_request_is_trivially_admitted() {
        let pool = pool(1);
        let mut ff = FirstFit::new();
        let plan = ff
            .plan(&pool, &unet_v2(), TpuUnits::ZERO, Features::all())
            .unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn best_fit_prefers_fuller_tpu() {
        let mut pool = pool(2);
        let m = unet_v2();
        pool.commit(&m, &[Allocation::new(TpuId(1), u(0.5))]);
        let mut bf = BestFit::new();
        let plan = bf.plan(&pool, &m, u(0.3), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1), "best-fit picks the fuller TPU");
        let mut wf = WorstFit::new();
        let plan = wf.plan(&pool, &m, u(0.3), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(0), "worst-fit picks the emptier TPU");
    }

    #[test]
    fn next_fit_advances_cursor() {
        let mut pool = pool(3);
        let mut nf = NextFit::new();
        let m = mobilenet_v1();
        let p1 = nf.plan(&pool, &m, u(0.9), Features::all()).unwrap();
        pool.commit(&m, &p1);
        assert_eq!(p1[0].tpu(), TpuId(0));
        // Cursor stays at TPU 0; 0.9 no longer fits there, so scanning
        // resumes from 0 and lands on TPU 1.
        let p2 = nf.plan(&pool, &m, u(0.9), Features::all()).unwrap();
        pool.commit(&m, &p2);
        assert_eq!(p2[0].tpu(), TpuId(1));
        // A small request now starts scanning at TPU 1 (cursor), not TPU 0.
        let p3 = nf.plan(&pool, &m, u(0.05), Features::all()).unwrap();
        assert_eq!(p3[0].tpu(), TpuId(1));
    }

    #[test]
    fn policy_names() {
        assert_eq!(FirstFit::new().name(), "first-fit");
        assert_eq!(BestFit::new().name(), "best-fit");
        assert_eq!(WorstFit::new().name(), "worst-fit");
        assert_eq!(NextFit::new().name(), "next-fit");
        assert_eq!(NextKFit::new(2).name(), "next-k-fit");
        assert_eq!(reference::FirstFit::new().name(), "first-fit/linear");
        assert_eq!(reference::NextFit::new().name(), "next-fit/linear");
    }

    #[test]
    fn next_k_fit_keeps_a_window_of_open_tpus() {
        let mut pool = pool(4);
        let m = mobilenet_v1();
        let mut nkf = NextKFit::new(2);
        // Fill TPU 0 and TPU 1 partially, advancing the cursor to 1.
        for expected in [0u32, 0, 1] {
            let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
            assert_eq!(plan[0].tpu(), TpuId(expected));
            pool.commit(&m, &plan);
        }
        // k = 2 window is {TPU 0, TPU 1}: a 0.5 request fits TPU 1.
        let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1));
        pool.commit(&m, &plan);
        // Window exhausted → opens TPU 2.
        let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(2));
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn next_k_fit_rejects_zero_k() {
        let _ = NextKFit::new(0);
    }

    #[test]
    fn plan_buffer_is_reusable_and_cleared_on_rejection() {
        let mut pool = pool(2);
        let m = ssd_mobilenet_v2();
        let mut ff = FirstFit::new();
        let mut buf = PlanBuffer::new();
        assert!(ff.plan_into(&pool, &m, u(0.6), Features::all(), &mut buf));
        assert_eq!(buf.allocations(), &[Allocation::new(TpuId(0), u(0.6))]);
        pool.commit(&m, buf.allocations());
        // A second plan through the same buffer replaces the first.
        assert!(ff.plan_into(&pool, &m, u(0.6), Features::all(), &mut buf));
        assert_eq!(buf.allocations(), &[Allocation::new(TpuId(1), u(0.6))]);
        pool.commit(&m, buf.allocations());
        // Rejection leaves the buffer empty, even when the partitioning
        // pass had pushed partial allocations before failing.
        assert!(!ff.plan_into(&pool, &m, u(1.5), Features::all(), &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn indexed_policies_match_reference_after_failures() {
        // A hand-run of the differential property: failures, restores, and
        // mixed load, with each indexed policy shadowing its oracle.
        let m = ssd_mobilenet_v2();
        let features = Features::all();
        let mut fast: Vec<Box<dyn AdmissionPolicy>> = vec![
            Box::new(FirstFit::new()),
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
            Box::new(NextKFit::new(2)),
        ];
        let mut oracle: Vec<Box<dyn AdmissionPolicy>> = vec![
            Box::new(reference::FirstFit::new()),
            Box::new(reference::BestFit::new()),
            Box::new(reference::WorstFit::new()),
            Box::new(reference::NextFit::new()),
            Box::new(reference::NextKFit::new(2)),
        ];
        for (fast, oracle) in fast.iter_mut().zip(oracle.iter_mut()) {
            let mut p = pool(5);
            p.fail(TpuId(0));
            p.commit(&m, &[Allocation::new(TpuId(2), u(0.8))]);
            p.commit(&m, &[Allocation::new(TpuId(3), u(0.4))]);
            for units in [0.35, 0.8, 0.35, 1.4, 0.9, 0.2] {
                let a = fast.plan(&p, &m, u(units), features);
                let b = oracle.plan(&p, &m, u(units), features);
                assert_eq!(a, b, "policy {} diverged at {units}", fast.name());
                if let Some(plan) = a {
                    p.commit(&m, &plan);
                }
            }
            p.restore(TpuId(0));
            let a = fast.plan(&p, &m, u(0.5), features);
            let b = oracle.plan(&p, &m, u(0.5), features);
            assert_eq!(a, b, "policy {} diverged after restore", fast.name());
        }
    }
}
