//! Admission control (paper §4.2 and §4.3 — Algorithm 1).
//!
//! The extended scheduler treats TPU placement as **online bin packing**:
//! TPUs are bins of capacity 1 TPU unit, requests are items sized by their
//! requested units, with the extra *Model Size Rule* constraint that the
//! distinct models on one TPU must fit its parameter memory. MicroEdge uses
//! First-Fit (asymptotic approximation ratio 1.7); the other classic
//! heuristics are provided for the packing ablation.
//!
//! Two decision procedures mirror Algorithm 1 exactly:
//!
//! - `AdmissionControl` (lines 1–8): place the whole request on the first
//!   TPU that passes both the TPU Units Rule and the Model Size Rule;
//! - `AdmissionControlWithWorkloadPartitioning` (lines 9–28): if that fails,
//!   split the requested units across several TPUs, taking
//!   `min(remaining, 1 − CurrentLoad)` from each eligible TPU in scan order.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::admission::{AdmissionPolicy, FirstFit};
//! use microedge_core::config::Features;
//! use microedge_core::pool::TpuPool;
//! use microedge_core::units::TpuUnits;
//! use microedge_models::catalog::ssd_mobilenet_v2;
//! use microedge_tpu::spec::TpuSpec;
//!
//! let cluster = ClusterBuilder::new().trpis(2).vrpis(1).build();
//! let pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
//! let mut policy = FirstFit::new();
//! let plan = policy
//!     .plan(&pool, &ssd_mobilenet_v2(), TpuUnits::from_f64(0.35), Features::all())
//!     .unwrap();
//! assert_eq!(plan.len(), 1);
//! ```

use microedge_models::profile::ModelProfile;

use crate::config::Features;
use crate::pool::{Allocation, TpuAccount, TpuPool};
use crate::units::TpuUnits;

/// Decides where a TPU request goes. Implementations are the packing
/// heuristics; [`FirstFit`] is the one MicroEdge ships.
pub trait AdmissionPolicy: std::fmt::Debug {
    /// Plans allocations for a request of `units` of `model`, or `None`
    /// when the request must be rejected. The plan is **not** committed —
    /// callers apply it with [`TpuPool::commit`].
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>>;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// The Model Size Rule plus the co-compiling feature flag: can `model` be
/// (or is it already) loaded on this TPU?
///
/// With co-compiling enabled this is Algorithm 1 line 4/14: the model is
/// already resident, or its parameter data fits the TPU's free memory. With
/// co-compiling *disabled* a TPU cannot space-share distinct models, so the
/// TPU must either already serve this model or serve no model at all.
fn model_admissible(
    account: &TpuAccount,
    model: &ModelProfile,
    budget: u64,
    features: Features,
) -> bool {
    if account.has_live_model(model.id()) {
        return true;
    }
    if features.co_compiling {
        model.param_bytes() <= account.free_mem(budget)
    } else {
        account.live_model_count() == 0
    }
}

fn eligible(account: &TpuAccount) -> bool {
    account.is_available()
}

/// Places the whole request on one TPU chosen from `ordered`, or splits it
/// across them when `features.workload_partitioning` allows — the shared
/// body of every heuristic, parameterised only by scan order.
fn plan_in_order(
    ordered: &[&TpuAccount],
    budget: u64,
    model: &ModelProfile,
    units: TpuUnits,
    features: Features,
) -> Option<Vec<Allocation>> {
    if units.is_zero() {
        return Some(Vec::new());
    }
    // Procedure AdmissionControl (Algorithm 1, lines 1–8).
    for account in ordered {
        let fits_units = account
            .load()
            .checked_add(units)
            .is_some_and(|total| total <= TpuUnits::ONE);
        if fits_units && model_admissible(account, model, budget, features) {
            return Some(vec![Allocation::new(account.id(), units)]);
        }
    }
    if !features.workload_partitioning {
        return None;
    }
    // Procedure AdmissionControlWithWorkloadPartitioning (lines 9–28).
    let mut remaining = units;
    let mut allocations = Vec::new();
    for account in ordered {
        if !model_admissible(account, model, budget, features) {
            continue;
        }
        let wp = remaining.min(account.free_units());
        if !wp.is_zero() {
            allocations.push(Allocation::new(account.id(), wp));
            remaining -= wp;
            if remaining.is_zero() {
                break;
            }
        }
    }
    if remaining.is_zero() {
        Some(allocations)
    } else {
        None
    }
}

/// First-Fit: scan TPUs in fixed id order — MicroEdge's shipped policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl FirstFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        FirstFit
    }
}

impl AdmissionPolicy for FirstFit {
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let ordered: Vec<&TpuAccount> = pool.accounts().iter().filter(|a| eligible(a)).collect();
        plan_in_order(&ordered, pool.param_budget(), model, units, features)
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Best-Fit: prefer the most-loaded TPU that can still take the request,
/// keeping large holes open for future big requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestFit;

impl BestFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        BestFit
    }
}

impl AdmissionPolicy for BestFit {
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let mut ordered: Vec<&TpuAccount> =
            pool.accounts().iter().filter(|a| eligible(a)).collect();
        // Least free units first; ties by id for determinism.
        ordered.sort_by_key(|a| (a.free_units(), a.id()));
        plan_in_order(&ordered, pool.param_budget(), model, units, features)
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }
}

/// Worst-Fit: prefer the emptiest TPU, spreading load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFit;

impl WorstFit {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        WorstFit
    }
}

impl AdmissionPolicy for WorstFit {
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let mut ordered: Vec<&TpuAccount> =
            pool.accounts().iter().filter(|a| eligible(a)).collect();
        ordered.sort_by_key(|a| (std::cmp::Reverse(a.free_units()), a.id()));
        plan_in_order(&ordered, pool.param_budget(), model, units, features)
    }

    fn name(&self) -> &'static str {
        "worst-fit"
    }
}

/// Next-k-Fit: like Next-Fit but keeps the last `k` opened TPUs active —
/// the middle ground the paper's §4.2 heuristic list includes between
/// Next-Fit (k = 1) and First-Fit (k = ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextKFit {
    k: usize,
    cursor: usize,
}

impl NextKFit {
    /// Creates the policy keeping the last `k` TPUs active.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Next-k-Fit requires k ≥ 1");
        NextKFit { k, cursor: 0 }
    }
}

impl AdmissionPolicy for NextKFit {
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let accounts = pool.accounts();
        if accounts.is_empty() {
            return None;
        }
        // The active window: the k TPUs ending at the cursor, then the
        // rest in id order (candidates for opening).
        let window_start = self.cursor.saturating_sub(self.k - 1);
        let ordered: Vec<&TpuAccount> = accounts
            [window_start..=self.cursor.min(accounts.len() - 1)]
            .iter()
            .chain(&accounts[(self.cursor + 1).min(accounts.len())..])
            .filter(|a| eligible(a))
            .collect();
        let plan = plan_in_order(&ordered, pool.param_budget(), model, units, features)?;
        if let Some(last) = plan.last() {
            self.cursor = accounts
                .iter()
                .position(|a| a.id() == last.tpu())
                .unwrap_or(0)
                .max(self.cursor);
        }
        Some(plan)
    }

    fn name(&self) -> &'static str {
        "next-k-fit"
    }
}

/// Next-Fit: resume scanning where the previous request left off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NextFit {
    cursor: usize,
}

impl NextFit {
    /// Creates the policy with the cursor at the first TPU.
    #[must_use]
    pub fn new() -> Self {
        NextFit { cursor: 0 }
    }
}

impl AdmissionPolicy for NextFit {
    fn plan(
        &mut self,
        pool: &TpuPool,
        model: &ModelProfile,
        units: TpuUnits,
        features: Features,
    ) -> Option<Vec<Allocation>> {
        let accounts = pool.accounts();
        if accounts.is_empty() {
            return None;
        }
        let start = self.cursor % accounts.len();
        let ordered: Vec<&TpuAccount> = accounts[start..]
            .iter()
            .chain(&accounts[..start])
            .filter(|a| eligible(a))
            .collect();
        let plan = plan_in_order(&ordered, pool.param_budget(), model, units, features)?;
        if let Some(last) = plan.last() {
            self.cursor = accounts
                .iter()
                .position(|a| a.id() == last.tpu())
                .unwrap_or(0);
        }
        Some(plan)
    }

    fn name(&self) -> &'static str {
        "next-fit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_models::catalog::{
        bodypix_mobilenet_v1, mobilenet_v1, resnet_50, ssd_mobilenet_v2, unet_v2,
    };
    use microedge_tpu::device::TpuId;
    use microedge_tpu::spec::TpuSpec;

    fn pool(trpis: u32) -> TpuPool {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(1).build();
        TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
    }

    fn u(f: f64) -> TpuUnits {
        TpuUnits::from_f64(f)
    }

    #[test]
    fn first_fit_fills_first_tpu_first() {
        let mut pool = pool(3);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        for _ in 0..2 {
            let plan = ff.plan(&pool, &m, u(0.35), Features::all()).unwrap();
            assert_eq!(plan.len(), 1);
            assert_eq!(plan[0].tpu(), TpuId(0));
            pool.commit(&m, &plan);
        }
        // Third 0.35 no longer fits TPU 0 (0.70 + 0.35 > 1): basic pass
        // moves to TPU 1... unless partitioning splits it first? Algorithm 1
        // tries the whole request on each TPU first, so TPU 1 takes it.
        let plan = ff.plan(&pool, &m, u(0.35), Features::all()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].tpu(), TpuId(1));
    }

    #[test]
    fn partitioning_splits_the_paper_example() {
        // Three pods of 0.6 units fit on two TPUs only with partitioning
        // (paper §4.3's worked example).
        let mut pool = pool(2);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();

        let p1 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(p1, vec![Allocation::new(TpuId(0), u(0.6))]);
        pool.commit(&m, &p1);

        // Algorithm 1 always tries the unsplit placement first (line 11), so
        // the second pod lands whole on the still-empty TPU 1.
        let p2 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(p2, vec![Allocation::new(TpuId(1), u(0.6))]);
        pool.commit(&m, &p2);

        // The third pod cannot fit unsplit anywhere; partitioning takes
        // 0.4 from TPU 0 (66 % of its requests) and 0.2 from TPU 1.
        let p3 = ff.plan(&pool, &m, u(0.6), Features::all()).unwrap();
        assert_eq!(
            p3,
            vec![
                Allocation::new(TpuId(0), u(0.4)),
                Allocation::new(TpuId(1), u(0.2)),
            ]
        );
        pool.commit(&m, &p3);

        // Two TPUs suffice for the three 0.6-unit pods, as in the paper.
        assert_eq!(pool.account(TpuId(0)).load(), TpuUnits::ONE);
        assert_eq!(pool.account(TpuId(1)).load(), u(0.8));
    }

    #[test]
    fn without_partitioning_the_example_needs_three_tpus() {
        let mut pool = pool(3);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        let features = Features::co_compiling_only();
        for i in 0..3 {
            let plan = ff.plan(&pool, &m, u(0.6), features).unwrap();
            assert_eq!(plan.len(), 1, "no partitioning allowed");
            assert_eq!(plan[0].tpu(), TpuId(i));
            pool.commit(&m, &plan);
        }
    }

    #[test]
    fn requests_over_one_unit_need_partitioning() {
        let pool = pool(2);
        let mut ff = FirstFit::new();
        let m = bodypix_mobilenet_v1();
        assert!(
            ff.plan(&pool, &m, u(1.2), Features::co_compiling_only())
                .is_none(),
            "1.2 units cannot fit one TPU"
        );
        let plan = ff.plan(&pool, &m, u(1.2), Features::all()).unwrap();
        assert_eq!(
            plan,
            vec![
                Allocation::new(TpuId(0), u(1.0)),
                Allocation::new(TpuId(1), u(0.2)),
            ]
        );
    }

    #[test]
    fn rejects_when_cumulative_capacity_insufficient() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let m = ssd_mobilenet_v2();
        pool.commit(&m, &[Allocation::new(TpuId(0), u(0.9))]);
        assert!(ff.plan(&pool, &m, u(0.2), Features::all()).is_none());
    }

    #[test]
    fn model_size_rule_blocks_overflowing_model() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        // ResNet-50 alone exceeds the budget; another model resident means
        // ResNet cannot be admitted at all on that TPU.
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(
            ff.plan(&pool, &resnet_50(), u(0.3), Features::all())
                .is_none(),
            "no TPU satisfies the Model Size Rule"
        );
    }

    #[test]
    fn resident_model_bypasses_size_check() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let big = resnet_50();
        // An empty TPU: free_mem is the whole budget, which ResNet exceeds.
        assert!(
            ff.plan(&pool, &big, u(0.3), Features::all()).is_none(),
            "ResNet-50 never fits the parameter budget"
        );
        // But if it is somehow already resident (committed by an operator
        // override), further pods of the same model are admissible.
        pool.commit(&big, &[Allocation::new(TpuId(0), u(0.3))]);
        assert!(ff.plan(&pool, &big, u(0.3), Features::all()).is_some());
    }

    #[test]
    fn no_cocompiling_forbids_mixing_models() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        let features = Features::partitioning_only();
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(
            ff.plan(&pool, &unet_v2(), u(0.2), features).is_none(),
            "distinct model may not share a TPU without co-compiling"
        );
        assert!(
            ff.plan(&pool, &mobilenet_v1(), u(0.2), features).is_some(),
            "same model may time-share"
        );
    }

    #[test]
    fn cocompiling_allows_mixing_within_budget() {
        let mut pool = pool(1);
        let mut ff = FirstFit::new();
        pool.commit(&mobilenet_v1(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(ff
            .plan(&pool, &unet_v2(), u(0.2), Features::all())
            .is_some());
        // A third model that would overflow the budget is rejected.
        pool.commit(&unet_v2(), &[Allocation::new(TpuId(0), u(0.2))]);
        assert!(ff
            .plan(&pool, &ssd_mobilenet_v2(), u(0.2), Features::all())
            .is_none());
    }

    #[test]
    fn failed_tpus_are_skipped() {
        let mut pool = pool(2);
        let mut ff = FirstFit::new();
        pool.fail(TpuId(0));
        let plan = ff.plan(&pool, &unet_v2(), u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1));
    }

    #[test]
    fn zero_unit_request_is_trivially_admitted() {
        let pool = pool(1);
        let mut ff = FirstFit::new();
        let plan = ff
            .plan(&pool, &unet_v2(), TpuUnits::ZERO, Features::all())
            .unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn best_fit_prefers_fuller_tpu() {
        let mut pool = pool(2);
        let m = unet_v2();
        pool.commit(&m, &[Allocation::new(TpuId(1), u(0.5))]);
        let mut bf = BestFit::new();
        let plan = bf.plan(&pool, &m, u(0.3), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1), "best-fit picks the fuller TPU");
        let mut wf = WorstFit::new();
        let plan = wf.plan(&pool, &m, u(0.3), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(0), "worst-fit picks the emptier TPU");
    }

    #[test]
    fn next_fit_advances_cursor() {
        let mut pool = pool(3);
        let mut nf = NextFit::new();
        let m = mobilenet_v1();
        let p1 = nf.plan(&pool, &m, u(0.9), Features::all()).unwrap();
        pool.commit(&m, &p1);
        assert_eq!(p1[0].tpu(), TpuId(0));
        // Cursor stays at TPU 0; 0.9 no longer fits there, so scanning
        // resumes from 0 and lands on TPU 1.
        let p2 = nf.plan(&pool, &m, u(0.9), Features::all()).unwrap();
        pool.commit(&m, &p2);
        assert_eq!(p2[0].tpu(), TpuId(1));
        // A small request now starts scanning at TPU 1 (cursor), not TPU 0.
        let p3 = nf.plan(&pool, &m, u(0.05), Features::all()).unwrap();
        assert_eq!(p3[0].tpu(), TpuId(1));
    }

    #[test]
    fn policy_names() {
        assert_eq!(FirstFit::new().name(), "first-fit");
        assert_eq!(BestFit::new().name(), "best-fit");
        assert_eq!(WorstFit::new().name(), "worst-fit");
        assert_eq!(NextFit::new().name(), "next-fit");
        assert_eq!(NextKFit::new(2).name(), "next-k-fit");
    }

    #[test]
    fn next_k_fit_keeps_a_window_of_open_tpus() {
        let mut pool = pool(4);
        let m = mobilenet_v1();
        let mut nkf = NextKFit::new(2);
        // Fill TPU 0 and TPU 1 partially, advancing the cursor to 1.
        for expected in [0u32, 0, 1] {
            let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
            assert_eq!(plan[0].tpu(), TpuId(expected));
            pool.commit(&m, &plan);
        }
        // k = 2 window is {TPU 0, TPU 1}: a 0.5 request fits TPU 1.
        let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(1));
        pool.commit(&m, &plan);
        // Window exhausted → opens TPU 2.
        let plan = nkf.plan(&pool, &m, u(0.5), Features::all()).unwrap();
        assert_eq!(plan[0].tpu(), TpuId(2));
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn next_k_fit_rejects_zero_k() {
        let _ = NextKFit::new(0);
    }
}
