//! MicroEdge configuration: data-plane cost calibration and control-plane
//! feature flags.

use serde::{Deserialize, Serialize};

use microedge_models::profile::ModelProfile;

use crate::client::{SourceResolution, TpuClientModel};
use microedge_sim::time::SimDuration;

use crate::units::TpuUnits;

/// The two optional control-plane mechanisms the paper ablates in §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Features {
    /// Fan successive requests of one pod out across several TPUs (§4.3).
    pub workload_partitioning: bool,
    /// Space-share one TPU across different models via co-compilation (§5.1).
    pub co_compiling: bool,
}

impl Features {
    /// Both mechanisms on — the full MicroEdge system.
    #[must_use]
    pub fn all() -> Self {
        Features {
            workload_partitioning: true,
            co_compiling: true,
        }
    }

    /// Both mechanisms off — time sharing only.
    #[must_use]
    pub fn none() -> Self {
        Features {
            workload_partitioning: false,
            co_compiling: false,
        }
    }

    /// Workload partitioning only.
    #[must_use]
    pub fn partitioning_only() -> Self {
        Features {
            workload_partitioning: true,
            co_compiling: false,
        }
    }

    /// Co-compiling only.
    #[must_use]
    pub fn co_compiling_only() -> Self {
        Features {
            workload_partitioning: false,
            co_compiling: true,
        }
    }

    /// The four configurations of the paper's Fig. 6, strongest first.
    #[must_use]
    pub fn fig6_configurations() -> [(&'static str, Features); 4] {
        [
            ("w.p. + co-compile", Features::all()),
            ("co-compile only", Features::co_compiling_only()),
            ("w.p. only", Features::partitioning_only()),
            ("neither", Features::none()),
        ]
    }
}

impl Default for Features {
    /// Everything on.
    fn default() -> Self {
        Features::all()
    }
}

/// Calibrated data-plane costs (see `DESIGN.md` §4).
///
/// `invoke_overhead` is the host-side per-invoke handling at the TPU Service
/// (request decode, input-tensor staging over USB); it occupies the TPU
/// pipeline, so it is part of the model's *service time* in the TPU-units
/// sense. With the default 8.33 ms, SSD MobileNet V2 (15 ms inference)
/// occupies 23.33 ms per frame → 0.35 TPU units at 15 FPS, and BodyPix
/// (71.67 ms) occupies 80 ms → 1.2 units, matching the paper's §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPlaneConfig {
    /// Per-invoke host-side handling that serialises with inference.
    pub invoke_overhead: SimDuration,
    /// Client-side frame resize/format cost for the default 1080p source.
    pub preprocess: SimDuration,
    /// Application-side result handling cost.
    pub postprocess: SimDuration,
    /// The TPU Client's resolution-aware pre-processing model.
    pub client: TpuClientModel,
    /// Whether consecutive pipeline stages placed on the same TPU skip the
    /// network hop (the §8 data-plane pipeline optimization). Disabled only
    /// by the ablation that quantifies its benefit.
    pub pipeline_local_hop: bool,
}

impl DataPlaneConfig {
    /// The calibrated Raspberry Pi data plane.
    #[must_use]
    pub fn calibrated() -> Self {
        DataPlaneConfig {
            invoke_overhead: SimDuration::from_nanos(8_333_333),
            preprocess: SimDuration::from_millis(5),
            postprocess: SimDuration::from_millis(3),
            client: TpuClientModel::calibrated(),
            pipeline_local_hop: true,
        }
    }

    /// Pre-processing cost for a frame from `source` — `preprocess` is
    /// this value at 1080p.
    #[must_use]
    pub fn preprocess_for(&self, source: SourceResolution) -> SimDuration {
        self.client.preprocess_time(source)
    }

    /// The nominal service time of one invoke: inference plus the host-side
    /// overhead. This is what the offline profiling service reports and what
    /// clients derive their requested TPU units from (paper §4.1).
    #[must_use]
    pub fn service_time(&self, profile: &ModelProfile) -> SimDuration {
        self.invoke_overhead + profile.inference_time()
    }

    /// The offline profiling service: the TPU units a camera at `fps` needs
    /// for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive.
    #[must_use]
    pub fn profiled_units(&self, profile: &ModelProfile, fps: f64) -> TpuUnits {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        let interarrival = SimDuration::from_secs_f64(1.0 / fps);
        TpuUnits::from_duty_cycle(self.service_time(profile), interarrival)
    }
}

impl Default for DataPlaneConfig {
    /// The calibrated data plane.
    fn default() -> Self {
        DataPlaneConfig::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_models::catalog::{
        bodypix_mobilenet_v1, mobilenet_v1, ssd_mobilenet_v2, unet_v2,
    };

    #[test]
    fn coral_pie_profiles_to_0_35_units() {
        let dp = DataPlaneConfig::calibrated();
        let units = dp.profiled_units(&ssd_mobilenet_v2(), 15.0);
        assert_eq!(units, TpuUnits::from_f64(0.35));
    }

    #[test]
    fn bodypix_profiles_to_1_2_units() {
        let dp = DataPlaneConfig::calibrated();
        assert_eq!(
            dp.profiled_units(&bodypix_mobilenet_v1(), 15.0),
            TpuUnits::from_f64(1.2)
        );
    }

    #[test]
    fn trace_models_profile_to_documented_units() {
        let dp = DataPlaneConfig::calibrated();
        assert_eq!(
            dp.profiled_units(&mobilenet_v1(), 15.0),
            TpuUnits::from_f64(0.215)
        );
        assert_eq!(
            dp.profiled_units(&unet_v2(), 15.0),
            TpuUnits::from_f64(0.675)
        );
    }

    #[test]
    fn units_scale_with_fps() {
        let dp = DataPlaneConfig::calibrated();
        let at_15 = dp.profiled_units(&ssd_mobilenet_v2(), 15.0);
        let at_30 = dp.profiled_units(&ssd_mobilenet_v2(), 30.0);
        assert_eq!(at_30, TpuUnits::from_f64(0.7));
        assert!(at_30 > at_15);
    }

    #[test]
    fn feature_sets() {
        assert_eq!(Features::default(), Features::all());
        assert!(Features::all().workload_partitioning);
        assert!(Features::all().co_compiling);
        assert!(!Features::none().workload_partitioning);
        assert!(Features::partitioning_only().workload_partitioning);
        assert!(!Features::partitioning_only().co_compiling);
        assert_eq!(Features::fig6_configurations().len(), 4);
    }

    #[test]
    fn service_time_adds_overhead() {
        let dp = DataPlaneConfig::calibrated();
        assert_eq!(
            dp.service_time(&ssd_mobilenet_v2()),
            SimDuration::from_nanos(23_333_333)
        );
    }

    #[test]
    #[should_panic(expected = "fps must be positive")]
    fn zero_fps_rejected() {
        let _ = DataPlaneConfig::calibrated().profiled_units(&unet_v2(), 0.0);
    }
}
