//! Deterministic fault injection: component-class MTBF/MTTR models,
//! scripted traces, the heartbeat/lease failure detector, and the
//! self-healing / degradation policies.
//!
//! A [`FaultSchedule`] is a time-ordered list of fault and repair events for
//! concrete components (TPUs, nodes, network links). It is either scripted
//! ([`FaultSchedule::scripted`]) or generated from a per-class stochastic
//! model ([`FaultSchedule::generate`]): each component instance alternates
//! exponentially distributed up-times (mean MTBF) and down-times (mean
//! MTTR), drawn from a [`DetRng`] forked per component — the same seed
//! always yields the same schedule, independent of worker count or host.
//!
//! The schedule is *injected* into a
//! [`World`](crate::runtime::World::inject_faults) where the events flow
//! through the simulation's own event queue. How the control plane reacts
//! is governed by a [`ChaosConfig`]:
//!
//! - [`DetectionModel`] — failures are silent until the component's node
//!   lease expires (K3s heartbeats), so a dead TPU keeps receiving (and
//!   dropping) traffic for up to `lease` seconds;
//! - [`HealPolicy`] — displaced streams are re-admitted automatically with
//!   capped exponential backoff; unplaceable streams park in a
//!   pending-restart queue that drains on repair or capacity release;
//! - [`DegradePolicy`] — when survivors cannot fit everyone at full rate,
//!   frame rates drop in power-of-two fairness tiers across tenants
//!   instead of dropping streams outright, and restore on repair.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::faults::{ClassRates, FaultModel, FaultSchedule};
//! use microedge_sim::time::{SimDuration, SimTime};
//!
//! let cluster = ClusterBuilder::new().trpis(2).vrpis(4).build();
//! let model = FaultModel {
//!     tpu: Some(ClassRates {
//!         mtbf: SimDuration::from_secs(120),
//!         mttr: SimDuration::from_secs(30),
//!     }),
//!     ..FaultModel::default()
//! };
//! let a = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(600), 7);
//! let b = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(600), 7);
//! assert_eq!(a.events(), b.events());
//! ```

use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;
use microedge_sim::rng::{splitmix64, DetRng};
use microedge_sim::time::{SimDuration, SimTime};
use microedge_tpu::device::TpuId;

/// One component-level fault or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A TPU stops executing; queued and in-flight requests are dropped.
    TpuFail(TpuId),
    /// A failed TPU returns to service.
    TpuRepair(TpuId),
    /// A node crashes hard: its pods die and its TPU (if any) goes silent.
    NodeFail(NodeId),
    /// A failed node reboots.
    NodeRepair(NodeId),
    /// A node's uplink partitions: traffic is dropped but local state
    /// survives. Indistinguishable from a node crash to the detector; a
    /// blip shorter than the lease heals without control-plane involvement.
    LinkFail(NodeId),
    /// The partitioned link heals.
    LinkRepair(NodeId),
}

impl FaultKind {
    /// `true` for the repair half of a fault/repair pair.
    #[must_use]
    pub fn is_repair(&self) -> bool {
        matches!(
            self,
            FaultKind::TpuRepair(_) | FaultKind::NodeRepair(_) | FaultKind::LinkRepair(_)
        )
    }
}

/// A [`FaultKind`] at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault or repair takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Mean time between failures / to repair for one component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRates {
    /// Mean up-time between consecutive failures (exponential).
    pub mtbf: SimDuration,
    /// Mean down-time until repair (exponential).
    pub mttr: SimDuration,
}

impl ClassRates {
    /// Creates rates from mean up- and down-times.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero.
    #[must_use]
    pub fn new(mtbf: SimDuration, mttr: SimDuration) -> Self {
        assert!(!mtbf.is_zero(), "MTBF must be non-zero");
        assert!(!mttr.is_zero(), "MTTR must be non-zero");
        ClassRates { mtbf, mttr }
    }
}

/// Per-component-class failure rates; `None` disables a class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultModel {
    /// TPU device failures (USB brown-outs, accelerator hangs).
    pub tpu: Option<ClassRates>,
    /// Whole-node crashes (power loss, kernel panic). Applies to every
    /// node, tRPi and vRPi alike.
    pub node: Option<ClassRates>,
    /// Per-node uplink partitions. Typically much shorter MTTR than node
    /// crashes — short blips exercise the lease filter.
    pub link: Option<ClassRates>,
}

/// Salts separating the per-class RNG streams inside a generation seed.
const SALT_TPU: u64 = 0x7470_7500; // "tpu"
const SALT_NODE: u64 = 0x6e6f_6465; // "node"
const SALT_LINK: u64 = 0x6c69_6e6b; // "link"

/// A time-ordered fault/repair trace for concrete components.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Wraps a scripted trace, sorting it by time (stable: simultaneous
    /// events keep their scripted order).
    #[must_use]
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Generates a schedule for every component of `cluster` enabled in
    /// `model`, up to `horizon`. Each component instance gets its own
    /// [`DetRng`] fork (salted by class and index), so adding a class or
    /// resizing the cluster never perturbs another component's draws, and
    /// the same `(model, cluster, horizon, seed)` always reproduces the
    /// same trace.
    #[must_use]
    pub fn generate(model: &FaultModel, cluster: &Cluster, horizon: SimTime, seed: u64) -> Self {
        let mut root = DetRng::seed_from(seed);
        let mut events = Vec::new();
        if let Some(rates) = model.tpu {
            for i in 0..cluster.tpu_count() {
                let rng =
                    root.fork(SALT_TPU.wrapping_add(u64::try_from(i).expect("tpu index fits u64")));
                Self::component_trace(rng, rates, horizon, &mut events, |up| {
                    let tpu = TpuId::from_index(i);
                    if up {
                        FaultKind::TpuRepair(tpu)
                    } else {
                        FaultKind::TpuFail(tpu)
                    }
                });
            }
        }
        if let Some(rates) = model.node {
            for node in cluster.nodes() {
                let id = node.id();
                let rng = root.fork(SALT_NODE.wrapping_add(u64::from(id.0) << 8));
                Self::component_trace(rng, rates, horizon, &mut events, |up| {
                    if up {
                        FaultKind::NodeRepair(id)
                    } else {
                        FaultKind::NodeFail(id)
                    }
                });
            }
        }
        if let Some(rates) = model.link {
            for node in cluster.nodes() {
                let id = node.id();
                let rng = root.fork(SALT_LINK.wrapping_add(u64::from(id.0) << 8));
                Self::component_trace(rng, rates, horizon, &mut events, |up| {
                    if up {
                        FaultKind::LinkRepair(id)
                    } else {
                        FaultKind::LinkFail(id)
                    }
                });
            }
        }
        // Stable: simultaneous events keep class-then-index order.
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// One component's alternating up/down renewal process.
    fn component_trace(
        mut rng: DetRng,
        rates: ClassRates,
        horizon: SimTime,
        events: &mut Vec<FaultEvent>,
        kind: impl Fn(bool) -> FaultKind,
    ) {
        let mut at = SimTime::ZERO;
        loop {
            let up = rng.exponential_duration(rates.mtbf);
            let Some(fail_at) = at.checked_add(up) else {
                return;
            };
            if fail_at > horizon {
                return;
            }
            events.push(FaultEvent {
                at: fail_at,
                kind: kind(false),
            });
            let down = rng.exponential_duration(rates.mttr);
            let Some(repair_at) = fail_at.checked_add(down) else {
                return;
            };
            if repair_at > horizon {
                // The component stays down past the end of the run.
                return;
            }
            events.push(FaultEvent {
                at: repair_at,
                kind: kind(true),
            });
            at = repair_at;
        }
    }

    /// The events, time-ordered.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The heartbeat/node-lease failure detector (K3s semantics).
///
/// Components renew their lease on a fixed heartbeat. A fault occurring at
/// `t` is only *detected* once the lease granted at the last heartbeat
/// before `t` expires — until then the failed component keeps silently
/// dropping traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionModel {
    /// Heartbeat / lease-renewal interval.
    pub heartbeat: SimDuration,
    /// Lease duration granted at each renewal.
    pub lease: SimDuration,
}

impl DetectionModel {
    /// K3s defaults at edge scale: 1 s heartbeats, 4 s leases.
    #[must_use]
    pub fn k3s_default() -> Self {
        DetectionModel {
            heartbeat: SimDuration::from_secs(1),
            lease: SimDuration::from_secs(4),
        }
    }

    /// When a fault occurring at `fault` is detected: the lease granted at
    /// the last heartbeat at or before `fault` runs out.
    #[must_use]
    pub fn detect_at(&self, fault: SimTime) -> SimTime {
        if self.heartbeat.is_zero() {
            // Degenerate configuration: an omniscient detector.
            return fault;
        }
        let hb = self.heartbeat.as_nanos();
        let last_renewal = SimTime::from_nanos(fault.as_nanos() / hb * hb);
        (last_renewal + self.lease).max(fault)
    }
}

impl Default for DetectionModel {
    fn default() -> Self {
        DetectionModel::k3s_default()
    }
}

/// Self-healing reconciliation: displaced streams are re-admitted
/// automatically, retrying with capped exponential backoff while parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealPolicy {
    /// First retry delay after a failed re-admission attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the retry delay.
    pub backoff_cap: SimDuration,
}

/// Domain separator for the backoff jitter hash (distinct from every
/// other splitmix keying in the workspace).
const BACKOFF_JITTER_SALT: u64 = 0x4841_4C46_5F4A_4954;

impl HealPolicy {
    /// Retry delay after `attempt` consecutive failures (1-based):
    /// `base × 2^(attempt−1)`, capped, then spread within ±25% by a seeded
    /// hash of `salt` (the retrying stream's id). Without the spread every
    /// stream displaced by a mass failure computes the identical delay and
    /// retries in lock-step — a thundering herd at each backoff step. The
    /// jitter is a pure function of `(policy, attempt, salt)`, so replays
    /// stay byte-identical across runs and worker counts.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        let nominal = self
            .backoff_base
            .as_nanos()
            .saturating_mul(1u64 << u64::from(shift))
            .min(self.backoff_cap.as_nanos());
        let span = nominal / 4;
        if span == 0 {
            return SimDuration::from_nanos(nominal);
        }
        let h = splitmix64(
            salt.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ BACKOFF_JITTER_SALT,
        );
        let offset = h % (2 * span + 1);
        SimDuration::from_nanos(nominal - span + offset)
    }
}

impl Default for HealPolicy {
    fn default() -> Self {
        HealPolicy {
            backoff_base: SimDuration::from_secs(1),
            backoff_cap: SimDuration::from_secs(32),
        }
    }
}

/// Graceful degradation: rather than dropping tenants when survivors cannot
/// fit everyone at full rate, frame rates are lowered in power-of-two
/// fairness tiers (1/2, 1/4, … of the declared FPS) — each tier divides a
/// stream's frame rate and TPU-unit demand by its denominator — and
/// restored when capacity returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Deepest tier: the largest frame-rate denominator (a power of two).
    pub max_denominator: u32,
}

impl DegradePolicy {
    /// The tier denominators, shallowest first: `1, 2, 4, …`.
    pub fn tiers(&self) -> impl Iterator<Item = u32> {
        let max = self.max_denominator.max(1);
        (0..=max.ilog2()).map(|p| 1u32 << p)
    }
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy { max_denominator: 4 }
    }
}

/// Everything governing the world's reaction to injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The failure detector.
    pub detection: DetectionModel,
    /// Self-healing reconciliation; `None` = displaced streams are lost
    /// (the no-heal baseline).
    pub heal: Option<HealPolicy>,
    /// Graceful degradation; `None` = streams run at full rate or not at
    /// all. Ignored unless healing is enabled.
    pub degrade: Option<DegradePolicy>,
    /// Control-plane RPC cost charged per rescheduling step (candidate
    /// fetch, binding, LBS push), entering the recovery-latency breakdown.
    pub resched_rpc: SimDuration,
}

impl ChaosConfig {
    /// The no-heal baseline: failures are detected but displaced streams
    /// are dropped outright.
    #[must_use]
    pub fn no_heal() -> Self {
        ChaosConfig {
            heal: None,
            degrade: None,
            ..ChaosConfig::default()
        }
    }

    /// Healing without degradation: displaced streams are re-admitted at
    /// full rate or parked.
    #[must_use]
    pub fn heal_only() -> Self {
        ChaosConfig {
            degrade: None,
            ..ChaosConfig::default()
        }
    }

    /// Healing plus tiered frame-rate degradation (the default).
    #[must_use]
    pub fn heal_degrade() -> Self {
        ChaosConfig::default()
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            detection: DetectionModel::k3s_default(),
            heal: Some(HealPolicy::default()),
            degrade: Some(DegradePolicy::default()),
            resched_rpc: SimDuration::from_millis(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;

    fn secs(v: u64) -> SimDuration {
        SimDuration::from_secs(v)
    }

    #[test]
    fn generation_is_deterministic() {
        let cluster = ClusterBuilder::new().trpis(3).vrpis(5).build();
        let model = FaultModel {
            tpu: Some(ClassRates::new(secs(100), secs(20))),
            node: Some(ClassRates::new(secs(500), secs(60))),
            link: Some(ClassRates::new(secs(200), secs(5))),
        };
        let a = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(3600), 42);
        let b = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(3600), 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(3600), 43);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn generated_events_are_ordered_and_alternate() {
        let cluster = ClusterBuilder::new().trpis(1).vrpis(1).build();
        let model = FaultModel {
            tpu: Some(ClassRates::new(secs(50), secs(10))),
            ..FaultModel::default()
        };
        let s = FaultSchedule::generate(&model, &cluster, SimTime::from_secs(2000), 1);
        let events = s.events();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // Single component: strict fail/repair alternation.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind.is_repair(), i % 2 == 1, "event {i}: {e:?}");
        }
    }

    #[test]
    fn disabled_classes_generate_nothing() {
        let cluster = ClusterBuilder::new().trpis(2).vrpis(2).build();
        let s = FaultSchedule::generate(
            &FaultModel::default(),
            &cluster,
            SimTime::from_secs(10_000),
            9,
        );
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn scripted_traces_are_sorted_stably() {
        let t = SimTime::from_secs(5);
        let s = FaultSchedule::scripted(vec![
            FaultEvent {
                at: SimTime::from_secs(9),
                kind: FaultKind::TpuRepair(TpuId(0)),
            },
            FaultEvent {
                at: t,
                kind: FaultKind::TpuFail(TpuId(0)),
            },
            FaultEvent {
                at: t,
                kind: FaultKind::LinkFail(NodeId(1)),
            },
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.events()[0].kind, FaultKind::TpuFail(TpuId(0)));
        assert_eq!(s.events()[1].kind, FaultKind::LinkFail(NodeId(1)));
    }

    #[test]
    fn detection_waits_for_the_lease() {
        let d = DetectionModel {
            heartbeat: SimDuration::from_secs(1),
            lease: SimDuration::from_secs(4),
        };
        // Fault at 10.3 s: last renewal 10.0 s, lease out at 14.0 s.
        let fault = SimTime::from_millis(10_300);
        assert_eq!(d.detect_at(fault), SimTime::from_secs(14));
        // Fault exactly on a heartbeat still waits a full lease.
        assert_eq!(d.detect_at(SimTime::from_secs(10)), SimTime::from_secs(14));
        // Degenerate zero-heartbeat model is omniscient.
        let omniscient = DetectionModel {
            heartbeat: SimDuration::ZERO,
            lease: SimDuration::ZERO,
        };
        assert_eq!(omniscient.detect_at(fault), fault);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let h = HealPolicy {
            backoff_base: secs(1),
            backoff_cap: secs(8),
        };
        // Nominal schedule 1/2/4/8/8… s, spread ±25% per stream. The jitter
        // bands of consecutive attempts never overlap (1.25·2^k < 0.75·2^(k+1)),
        // so doubling survives the spread.
        for salt in [0u64, 1, 7, 1 << 40, 0xDEAD_BEEF] {
            let mut prev = 0u64;
            for (attempt, nominal_s) in [(1u32, 1u64), (2, 2), (3, 4), (4, 8)] {
                let d = h.backoff(attempt, salt).as_nanos();
                let nominal = nominal_s * 1_000_000_000;
                let span = nominal / 4;
                assert!(
                    (nominal - span..=nominal + span).contains(&d),
                    "attempt {attempt} salt {salt}: {d} outside ±25% of {nominal}"
                );
                assert!(d > prev, "attempt {attempt} salt {salt} did not grow");
                prev = d;
            }
            // Deep attempts jitter around the cap (never above 1.25×);
            // attempt 64 exercises the shift-overflow guard.
            for attempt in [10u32, 64] {
                let d = h.backoff(attempt, salt).as_nanos();
                let cap = 8 * 1_000_000_000;
                assert!(
                    (cap - cap / 4..=cap + cap / 4).contains(&d),
                    "attempt {attempt} salt {salt}: {d} outside the cap band"
                );
            }
        }
        // Pure function of (attempt, salt): byte-identical across calls…
        assert_eq!(h.backoff(3, 42), h.backoff(3, 42));
        // …while distinct streams actually spread out.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|s| h.backoff(1, s).as_nanos()).collect();
        assert!(spread.len() > 8, "jitter did not spread: {spread:?}");
        // A zero-base policy has no span to spread over.
        let flat = HealPolicy {
            backoff_base: SimDuration::ZERO,
            backoff_cap: secs(8),
        };
        assert_eq!(flat.backoff(5, 7), SimDuration::ZERO);
    }

    #[test]
    fn degrade_tiers_are_powers_of_two() {
        let d = DegradePolicy { max_denominator: 4 };
        assert_eq!(d.tiers().collect::<Vec<_>>(), vec![1, 2, 4]);
        let flat = DegradePolicy { max_denominator: 1 };
        assert_eq!(flat.tiers().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn chaos_config_presets() {
        assert!(ChaosConfig::no_heal().heal.is_none());
        assert!(ChaosConfig::heal_only().heal.is_some());
        assert!(ChaosConfig::heal_only().degrade.is_none());
        assert!(ChaosConfig::heal_degrade().degrade.is_some());
    }
}
