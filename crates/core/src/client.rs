//! The TPU Client's host-side cost model (paper §5.2).
//!
//! The TPU Client is the library baked into every application pod. Its
//! scheduling-relevant job is **pre-processing**: resizing the raw camera
//! frame to the model's input resolution *before* transmission, "critical
//! since the data movement overhead is significant on low-cost devices".
//! Resizing cost on an RPi scales with the number of *source* pixels
//! walked, plus a fixed per-frame overhead (format conversion, buffer
//! management in the Python client).
//!
//! The calibrated model reproduces the 5 ms pre-processing cost used in
//! Fig. 7b for a 1080p source camera; lower-resolution sources pre-process
//! proportionally faster.
//!
//! # Examples
//!
//! ```
//! use microedge_core::client::{SourceResolution, TpuClientModel};
//!
//! let client = TpuClientModel::calibrated();
//! let full_hd = client.preprocess_time(SourceResolution::FULL_HD);
//! assert!((full_hd.as_millis_f64() - 5.0).abs() < 0.01);
//! let vga = client.preprocess_time(SourceResolution::new(640, 480));
//! assert!(vga < full_hd);
//! ```

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// A camera's native frame resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceResolution {
    width: u32,
    height: u32,
}

impl SourceResolution {
    /// 1920 × 1080 — the resolution the paper's cost figures assume.
    pub const FULL_HD: SourceResolution = SourceResolution {
        width: 1920,
        height: 1080,
    };

    /// 1280 × 720.
    pub const HD: SourceResolution = SourceResolution {
        width: 1280,
        height: 720,
    };

    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "resolution must be non-zero");
        SourceResolution { width, height }
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixels per frame.
    #[must_use]
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }
}

impl Default for SourceResolution {
    /// 1080p.
    fn default() -> Self {
        SourceResolution::FULL_HD
    }
}

/// Host-side per-frame costs of the TPU Client library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpuClientModel {
    resize_base: SimDuration,
    pixels_per_sec: u64,
}

impl TpuClientModel {
    /// Creates a model from a fixed per-frame cost and a resize throughput.
    ///
    /// # Panics
    ///
    /// Panics if `pixels_per_sec` is zero.
    #[must_use]
    pub fn new(resize_base: SimDuration, pixels_per_sec: u64) -> Self {
        assert!(pixels_per_sec > 0, "resize throughput must be non-zero");
        TpuClientModel {
            resize_base,
            pixels_per_sec,
        }
    }

    /// Calibrated for the RPi 4 Python client: 1.5 ms fixed + ≈ 592 M
    /// source pixels per second, giving exactly 5 ms for a 1080p frame
    /// (the Fig. 7b pre-processing cost).
    #[must_use]
    pub fn calibrated() -> Self {
        TpuClientModel::new(SimDuration::from_micros(1_500), 592_457_143)
    }

    /// Pre-processing time for a frame from `source`.
    #[must_use]
    pub fn preprocess_time(&self, source: SourceResolution) -> SimDuration {
        self.resize_base
            + SimDuration::from_secs_f64(source.pixels() as f64 / self.pixels_per_sec as f64)
    }
}

impl Default for TpuClientModel {
    /// The calibrated RPi client.
    fn default() -> Self {
        TpuClientModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_hd_costs_exactly_the_calibrated_5ms() {
        let t = TpuClientModel::calibrated().preprocess_time(SourceResolution::FULL_HD);
        assert!((t.as_millis_f64() - 5.0).abs() < 0.001, "got {t}");
    }

    #[test]
    fn cost_scales_with_source_pixels() {
        let c = TpuClientModel::calibrated();
        let hd = c.preprocess_time(SourceResolution::HD);
        let full = c.preprocess_time(SourceResolution::FULL_HD);
        let vga = c.preprocess_time(SourceResolution::new(640, 480));
        assert!(vga < hd && hd < full);
        // HD is 4/9 the pixels of Full HD; the variable part scales exactly.
        let var_full = full - SimDuration::from_micros(1_500);
        let var_hd = hd - SimDuration::from_micros(1_500);
        let ratio = var_hd.as_nanos() as f64 / var_full.as_nanos() as f64;
        assert!((ratio - 4.0 / 9.0).abs() < 1e-3, "ratio {ratio}");
    }

    #[test]
    fn resolution_accessors() {
        let r = SourceResolution::new(300, 200);
        assert_eq!(r.width(), 300);
        assert_eq!(r.height(), 200);
        assert_eq!(r.pixels(), 60_000);
        assert_eq!(SourceResolution::default(), SourceResolution::FULL_HD);
        assert_eq!(TpuClientModel::default(), TpuClientModel::calibrated());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_resolution_rejected() {
        let _ = SourceResolution::new(0, 1);
    }
}
