//! The per-pod TPU load-balancing service (paper §5.3).
//!
//! Every application pod carries an LBS seeded by the extended scheduler
//! with the workload-partitioning weights. At runtime the LBS forwards each
//! `Invoke` to one TPU Service using **Weighted Round Robin with a
//! Weighted-Fair-Queueing spread** — requests to the same target are spaced
//! out rather than batched, so a TPU that owns 2/3 of a pod's weight sees
//! the pattern `A A B A A B …`, not `A A A A B B`. We implement the classic
//! *smooth WRR* algorithm (as popularised by nginx), which produces exactly
//! that maximally spread sequence and is deterministic.
//!
//! # Examples
//!
//! ```
//! use microedge_core::lbs::LbService;
//! use microedge_core::pool::Allocation;
//! use microedge_core::units::TpuUnits;
//! use microedge_tpu::device::TpuId;
//!
//! let mut lbs = LbService::from_allocations(&[
//!     Allocation::new(TpuId(0), TpuUnits::from_f64(0.4)),
//!     Allocation::new(TpuId(1), TpuUnits::from_f64(0.2)),
//! ]);
//! let picks: Vec<u32> = (0..6).map(|_| lbs.next().0).collect();
//! // 2:1 ratio, maximally spread.
//! assert_eq!(picks, vec![0, 1, 0, 0, 1, 0]);
//! ```

use serde::{Deserialize, Serialize};

use microedge_tpu::device::TpuId;

use crate::pool::Allocation;
use crate::units::TpuUnits;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Target {
    tpu: TpuId,
    weight: i64,
    current: i64,
}

/// A deterministic smooth-WRR dispatcher over the TPU Services assigned to
/// one pod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbService {
    targets: Vec<Target>,
    total: i64,
}

impl LbService {
    /// Builds an LBS from the extended scheduler's allocations; weights are
    /// the allocated TPU units.
    ///
    /// # Panics
    ///
    /// Panics if `allocations` is empty — a pod with TPU needs always
    /// receives at least one allocation.
    #[must_use]
    pub fn from_allocations(allocations: &[Allocation]) -> Self {
        assert!(
            !allocations.is_empty(),
            "LBS requires at least one TPU target"
        );
        let targets: Vec<Target> = allocations
            .iter()
            .map(|a| Target {
                tpu: a.tpu(),
                weight: i64::try_from(a.units().as_micro()).expect("weight fits i64"),
                current: 0,
            })
            .collect();
        let total = targets.iter().map(|t| t.weight).sum();
        LbService { targets, total }
    }

    /// Number of TPU targets.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// The configured weights, in scheduler order.
    #[must_use]
    pub fn weights(&self) -> Vec<(TpuId, TpuUnits)> {
        self.targets
            .iter()
            .map(|t| {
                let micro = u64::try_from(t.weight).expect("lbs weights are non-negative");
                (t.tpu, TpuUnits::from_micro(micro))
            })
            .collect()
    }

    /// Picks the TPU Service for the next `Invoke` (smooth WRR step).
    ///
    /// Deliberately named like `Iterator::next` — the LBS *is* an infinite
    /// dispatch sequence — but it cannot implement `Iterator` because it
    /// never terminates and returns a bare `TpuId`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> TpuId {
        if self.total == 0 {
            // All-zero weights (e.g. a degenerate sub-unit rounding): smooth
            // WRR would tie every step on `current == 0` and the pick would
            // depend on `max_by_key`'s tie-breaking rather than the
            // configuration. Dispatch to the first target deterministically.
            return self.targets.first().expect("targets is non-empty").tpu;
        }
        for t in &mut self.targets {
            t.current += t.weight;
        }
        let best = self
            .targets
            .iter_mut()
            .max_by_key(|t| t.current)
            .expect("targets is non-empty");
        best.current -= self.total;
        best.tpu
    }

    /// Removes a target (failure handling), redistributing future picks to
    /// the remaining TPUs. Returns `true` if the target was present.
    ///
    /// After removing the last target the LBS is unusable and `next` will
    /// panic; callers re-admit the stream instead.
    pub fn remove_target(&mut self, tpu: TpuId) -> bool {
        let before = self.targets.len();
        self.targets.retain(|t| t.tpu != tpu);
        self.total = self.targets.iter().map(|t| t.weight).sum();
        before != self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn lbs(weights: &[(u32, f64)]) -> LbService {
        let allocations: Vec<Allocation> = weights
            .iter()
            .map(|&(tpu, w)| Allocation::new(TpuId(tpu), TpuUnits::from_f64(w)))
            .collect();
        LbService::from_allocations(&allocations)
    }

    fn frequencies(lbs: &mut LbService, picks: usize) -> BTreeMap<u32, usize> {
        let mut freq = BTreeMap::new();
        for _ in 0..picks {
            *freq.entry(lbs.next().0).or_insert(0) += 1;
        }
        freq
    }

    #[test]
    fn single_target_always_picked() {
        let mut l = lbs(&[(3, 0.35)]);
        for _ in 0..10 {
            assert_eq!(l.next(), TpuId(3));
        }
    }

    #[test]
    fn paper_example_two_thirds_one_third() {
        // Application 2 of §4.3: 0.4 units on TPU 1, 0.2 on TPU 2 → 66 % / 33 %.
        let mut l = lbs(&[(1, 0.4), (2, 0.2)]);
        let freq = frequencies(&mut l, 600);
        assert_eq!(freq[&1], 400);
        assert_eq!(freq[&2], 200);
    }

    #[test]
    fn spread_is_smooth_not_bursty() {
        let mut l = lbs(&[(0, 0.4), (1, 0.2)]);
        let picks: Vec<u32> = (0..6).map(|_| l.next().0).collect();
        // Never two consecutive picks of the minority target, and the
        // majority target never runs more than twice in a row.
        assert_eq!(picks, vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn frequencies_match_weights_for_uneven_splits() {
        let mut l = lbs(&[(0, 0.5), (1, 0.3), (2, 0.2)]);
        let freq = frequencies(&mut l, 1000);
        assert_eq!(freq[&0], 500);
        assert_eq!(freq[&1], 300);
        assert_eq!(freq[&2], 200);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = lbs(&[(0, 0.35), (1, 0.65)]);
        let mut b = lbs(&[(0, 0.35), (1, 0.65)]);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn weights_accessor_roundtrips() {
        let l = lbs(&[(0, 0.4), (1, 0.2)]);
        assert_eq!(
            l.weights(),
            vec![
                (TpuId(0), TpuUnits::from_f64(0.4)),
                (TpuId(1), TpuUnits::from_f64(0.2)),
            ]
        );
        assert_eq!(l.target_count(), 2);
    }

    #[test]
    fn remove_target_redistributes() {
        let mut l = lbs(&[(0, 0.4), (1, 0.2)]);
        assert!(l.remove_target(TpuId(0)));
        assert!(!l.remove_target(TpuId(0)));
        for _ in 0..5 {
            assert_eq!(l.next(), TpuId(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one TPU target")]
    fn empty_allocations_rejected() {
        let _ = LbService::from_allocations(&[]);
    }

    #[test]
    fn all_zero_weights_fall_back_to_first_target() {
        // `Allocation` forbids zero units, so an all-zero LBS can only be
        // produced internally (e.g. by a degenerate rounding); construct it
        // directly to pin the deterministic fallback.
        let mut l = LbService {
            targets: vec![
                Target {
                    tpu: TpuId(4),
                    weight: 0,
                    current: 0,
                },
                Target {
                    tpu: TpuId(7),
                    weight: 0,
                    current: 0,
                },
            ],
            total: 0,
        };
        for _ in 0..10 {
            assert_eq!(l.next(), TpuId(4));
        }
    }
}
