//! The federated fleet front door: global stream→cluster placement in
//! O(log C) over incrementally maintained per-cluster capacity summaries.
//!
//! The paper stops at one 25-node cluster; a fleet of MicroEdge clusters
//! needs an *inter-cluster* admission tier that answers "which cluster
//! takes this camera?" without scanning every cluster's TPU pool. This
//! module grows the PR 2 capacity-index design one level up:
//!
//! - every cluster is represented by a [`ClusterSummary`] — max-free
//!   contiguous units, total free units, live-stream count, and a derived
//!   [`HealthTier`] — fed from the shard's indexed `TpuPool`
//!   ([`crate::pool::TpuPool::capacity_summary`], itself O(1) off the
//!   index maintained on commit/release/fail/restore);
//! - the [`FrontDoor`] keeps those summaries in a **max-free segment
//!   tree** over cluster ids plus **free-units buckets**, mirroring the
//!   intra-cluster `CapacityIndex`, so "first cluster in this id range
//!   with a big-enough free block" is one O(log C) descent. The tree is
//!   two-level for latency — cache-line blocks of saturated u32 keys
//!   under a binary tree of block maxima — and an aligned range (any
//!   power-of-two region, the global fallback) rejects on a single node
//!   load;
//! - placement is **locality-aware**: clusters are partitioned into
//!   contiguous regions ([`FleetTopology`]), a stream prefers its home
//!   region, spills to the `k` nearest regions in deterministic
//!   ring-distance order, and only then falls back to a global scan.
//!
//! The pre-index behaviour survives verbatim as
//! [`reference::LinearFrontDoor`] — a cluster-by-cluster scan in the very
//! same preference order — and `tests/fleet_differential.rs` pins the two
//! byte-identical under random churn, the same differential-oracle
//! discipline PR 2 established for intra-cluster admission.
//!
//! Determinism: the front door is plain data — no clocks, no RNG, ordered
//! collections only — and the sharded replay drives it serially at epoch
//! barriers, so fleet placement never depends on `MICROEDGE_WORKERS`.
//!
//! # Examples
//!
//! ```
//! use microedge_core::fleet::{ClusterSummary, FrontDoor, ProbeKind, StreamDemand};
//!
//! // Four busy clusters in two regions; only cluster 2 has a big block.
//! let busy = ClusterSummary {
//!     max_free: 200_000,
//!     total_free: 500_000,
//!     available_tpus: 4,
//!     total_tpus: 4,
//!     live_streams: 6,
//! };
//! let mut summaries = vec![busy; 4];
//! summaries[2].max_free = 800_000;
//! summaries[2].total_free = 1_200_000;
//! let mut door = FrontDoor::new(summaries, 2, 1);
//! let placed = door
//!     .admit(0, StreamDemand::uniform(700_000))
//!     .expect("cluster 2 has room");
//! assert_eq!(placed.cluster.0, 2);
//! assert_eq!(placed.kind, ProbeKind::Spill(1));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;

use crate::pool::PoolCapacity;
use crate::units::TpuUnits;

/// Identifies one cluster (= one shard of the sharded replay) in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// This id as its dense summary-table index (clusters are registered
    /// contiguously by the front door).
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("u32 cluster id fits usize")
    }

    /// The id of the cluster at dense table index `i`.
    #[must_use]
    pub fn from_index(i: usize) -> ClusterId {
        ClusterId(u32::try_from(i).expect("fleet cluster count fits u32"))
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster-{}", self.0)
    }
}

/// Coarse cluster health derived from the available-TPU ratio — the
/// fleet-report tiering. Only [`HealthTier::Dead`] affects placement
/// (a dead cluster can never host anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthTier {
    /// Every TPU (or all but a tenth) in service.
    Healthy,
    /// Lost more than a tenth of its TPUs.
    Degraded,
    /// Lost half or more of its TPUs.
    Critical,
    /// No TPU in service (or drained by the front door after a
    /// whole-cluster failure).
    Dead,
}

/// One cluster's capacity, as the front door sees it: the O(1) snapshot a
/// shard reads off its pool index at every epoch barrier, plus the live
/// stream count. All unit figures are integer micro-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSummary {
    /// Largest contiguous free block on any single TPU (micro-units): the
    /// biggest single-stage grant the cluster can make.
    pub max_free: u64,
    /// Total free micro-units across available TPUs.
    pub total_free: u64,
    /// TPUs currently in service.
    pub available_tpus: u32,
    /// All TPUs, failed included.
    pub total_tpus: u32,
    /// Streams currently served by the cluster.
    pub live_streams: u64,
}

impl ClusterSummary {
    /// A fully idle cluster of `tpus` healthy TPUs (one unit free each).
    #[must_use]
    pub fn empty(tpus: u32) -> Self {
        let unit = TpuUnits::ONE.as_micro();
        ClusterSummary {
            max_free: unit,
            total_free: unit * u64::from(tpus),
            available_tpus: tpus,
            total_tpus: tpus,
            live_streams: 0,
        }
    }

    /// Builds the summary from a pool snapshot and the live-stream count.
    #[must_use]
    pub fn from_pool(capacity: PoolCapacity, live_streams: u64) -> Self {
        ClusterSummary {
            max_free: capacity.max_free_micro,
            total_free: capacity.total_free_micro,
            available_tpus: capacity.available_tpus,
            total_tpus: capacity.total_tpus,
            live_streams,
        }
    }

    /// The summary the front door installs when it gives up on a cluster:
    /// nothing available, nothing placeable.
    #[must_use]
    pub fn drained(self) -> Self {
        ClusterSummary {
            max_free: 0,
            total_free: 0,
            available_tpus: 0,
            total_tpus: self.total_tpus,
            live_streams: 0,
        }
    }

    /// Health tier from the available-TPU ratio.
    #[must_use]
    pub fn health(&self) -> HealthTier {
        if self.available_tpus == 0 {
            HealthTier::Dead
        } else if u64::from(self.available_tpus) * 2 <= u64::from(self.total_tpus) {
            HealthTier::Critical
        } else if u64::from(self.available_tpus) * 10 < u64::from(self.total_tpus) * 9 {
            HealthTier::Degraded
        } else {
            HealthTier::Healthy
        }
    }

    /// Whether this cluster can host `demand` *according to the summary*:
    /// alive, a contiguous block for the largest stage, and enough total
    /// headroom for the whole pipeline. Optimistic — the cluster's own
    /// admission (Algorithm 1 with memory rules) still has the final say —
    /// but never wrong in the other direction for single-stage streams.
    #[must_use]
    pub fn can_host(&self, demand: StreamDemand) -> bool {
        self.health() != HealthTier::Dead
            && self.max_free >= demand.largest_stage.max(1)
            && self.total_free >= demand.total.max(1)
    }

    /// Fragmentation ratio of the cluster's free capacity: largest
    /// contiguous free slot over total free units. 1.0 means all headroom
    /// sits in one block; values near 0 mean the headroom the summary
    /// advertises is shattered into slivers that will bounce whole-ish
    /// placements. A cluster with no free capacity is unfragmented by
    /// convention.
    #[must_use]
    pub fn fragmentation_ratio(&self) -> f64 {
        microedge_metrics::defrag::fragmentation_ratio(self.max_free, self.total_free)
    }

    /// `true` when this summary's free capacity is *strictly* more
    /// contiguous than `other`'s — a higher largest-free-slot /
    /// total-free ratio, compared exactly in integers by
    /// cross-multiplication. The front door uses this as a placement
    /// tiebreak: summaries are optimistic, and the candidate whose
    /// headroom is concentrated in whole blocks is the one least likely
    /// to bounce the stream on arrival.
    #[must_use]
    pub fn more_contiguous_than(&self, other: &ClusterSummary) -> bool {
        u128::from(self.max_free) * u128::from(other.total_free)
            > u128::from(other.max_free) * u128::from(self.total_free)
    }

    /// Conservatively debits an accepted placement so same-barrier
    /// placements spread instead of piling onto one cluster; ground truth
    /// from the pool overwrites the estimate at the next barrier refresh.
    pub fn debit(&mut self, demand: StreamDemand) {
        self.max_free -= demand.largest_stage.max(1).min(self.max_free);
        self.total_free -= demand.total.max(1).min(self.total_free);
        self.live_streams += 1;
    }

    /// The segment-tree key: the max-free block, or 0 when dead so the
    /// cluster can never satisfy a query (`min` is clamped ≥ 1).
    fn placement_key(&self) -> u64 {
        if self.available_tpus == 0 {
            0
        } else {
            self.max_free
        }
    }
}

/// A stream's TPU demand as the front door estimates it, in micro-units:
/// the binding constraints are the largest single stage (needs one
/// contiguous block) and the pipeline total (needs that much headroom
/// overall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDemand {
    /// The largest single stage's units.
    pub largest_stage: u64,
    /// Sum of all stage units.
    pub total: u64,
}

impl StreamDemand {
    /// Demand of a single-stage stream (largest = total).
    #[must_use]
    pub fn uniform(micro: u64) -> Self {
        StreamDemand {
            largest_stage: micro,
            total: micro,
        }
    }

    /// Aggregates per-stage unit estimates into a demand.
    #[must_use]
    pub fn from_stages(stages: impl IntoIterator<Item = TpuUnits>) -> Self {
        let mut demand = StreamDemand {
            largest_stage: 0,
            total: 0,
        };
        for units in stages {
            let micro = units.as_micro();
            demand.largest_stage = demand.largest_stage.max(micro);
            demand.total += micro;
        }
        demand
    }
}

/// The fleet's locality structure: `clusters` split into `regions`
/// contiguous, balanced id blocks (region `r` owns ids
/// `[⌈rC/R⌉, ⌈(r+1)C/R⌉)`). Contiguity is what lets one O(log C)
/// range-restricted segment-tree descent search a whole region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTopology {
    clusters: u32,
    regions: u32,
    /// `clusters / regions` when the split is exact, else 0 — lets the
    /// placement hot path compute region bounds with a multiply instead
    /// of two u64 divisions per probe.
    width_if_even: u32,
}

impl FleetTopology {
    /// Partitions `clusters` into `regions` contiguous blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ regions ≤ clusters`.
    #[must_use]
    pub fn new(clusters: u32, regions: u32) -> Self {
        assert!(clusters >= 1, "a fleet needs at least one cluster");
        assert!(
            (1..=clusters).contains(&regions),
            "regions must be in 1..={clusters}, got {regions}"
        );
        FleetTopology {
            clusters,
            regions,
            width_if_even: if clusters.is_multiple_of(regions) {
                clusters / regions
            } else {
                0
            },
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// The region owning `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn region_of(&self, cluster: ClusterId) -> u32 {
        assert!(cluster.0 < self.clusters, "{cluster} out of range");
        u32::try_from(u64::from(cluster.0) * u64::from(self.regions) / u64::from(self.clusters))
            .expect("region fits u32")
    }

    /// The half-open cluster-id range `[lo, hi)` owned by `region`.
    #[must_use]
    pub fn region_range(&self, region: u32) -> (u32, u32) {
        if self.width_if_even != 0 {
            return (
                region * self.width_if_even,
                (region + 1) * self.width_if_even,
            );
        }
        let bound = |r: u64| {
            u32::try_from((r * u64::from(self.clusters)).div_ceil(u64::from(self.regions)))
                .expect("cluster id fits u32")
        };
        (bound(u64::from(region)), bound(u64::from(region) + 1))
    }

    /// The deterministic probe plan for a stream homed in `home`: the home
    /// region, then the `spill` nearest regions by ring distance
    /// (alternating +d / −d, deduplicated), then a global fallback over
    /// the whole id space. Each entry is `(kind, lo, hi)`; both the
    /// indexed front door and the linear oracle walk this exact list (via
    /// [`FleetTopology::for_each_probe`]), so their preference order is
    /// identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    #[must_use]
    pub fn probe_plan(&self, home: u32, spill: u32) -> Vec<(ProbeKind, u32, u32)> {
        let spill_cap = usize::try_from(spill).expect("spill count fits usize");
        let mut plan = Vec::with_capacity(2 * spill_cap + 2);
        self.for_each_probe(home, spill, |kind, lo, hi| {
            plan.push((kind, lo, hi));
            ControlFlow::<()>::Continue(())
        });
        plan
    }

    /// Walks the probe plan (see [`FleetTopology::probe_plan`]) without
    /// materialising it, stopping early when `visit` breaks. This is the
    /// placement hot path: allocation-free, so an indexed placement's cost
    /// is purely its segment-tree descents.
    ///
    /// Ring-distance dedup is closed-form rather than a seen-set: at
    /// distance `d` the `+d` neighbour is fresh iff `2d ≤ r` (past the
    /// antipode it revisits `−e` regions) and the `−d` neighbour iff
    /// `2d < r` (at the antipode of an even ring, `+d` and `−d` coincide).
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn for_each_probe<B>(
        &self,
        home: u32,
        spill: u32,
        mut visit: impl FnMut(ProbeKind, u32, u32) -> ControlFlow<B>,
    ) -> Option<B> {
        assert!(home < self.regions, "region {home} out of range");
        let r = self.regions;
        let (lo, hi) = self.region_range(home);
        if let ControlFlow::Break(found) = visit(ProbeKind::Home, lo, hi) {
            return Some(found);
        }
        for d in 1..=spill.min(r / 2) {
            let (lo, hi) = self.region_range((home + d) % r);
            if let ControlFlow::Break(found) = visit(ProbeKind::Spill(d), lo, hi) {
                return Some(found);
            }
            if 2 * d < r {
                let (lo, hi) = self.region_range((home + r - d) % r);
                if let ControlFlow::Break(found) = visit(ProbeKind::Spill(d), lo, hi) {
                    return Some(found);
                }
            }
        }
        match visit(ProbeKind::Fallback, 0, self.clusters) {
            ControlFlow::Break(found) => Some(found),
            ControlFlow::Continue(()) => None,
        }
    }
}

/// Which ring of the probe plan satisfied a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// The stream's home region.
    Home,
    /// A neighbouring region at this ring distance.
    Spill(u32),
    /// The global scan after home and spill regions were exhausted.
    Fallback,
}

/// A placement decision: the chosen cluster and how far from home the
/// search travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The hosting cluster.
    pub cluster: ClusterId,
    /// The probe ring that satisfied the search.
    pub kind: ProbeKind,
}

/// Deterministic placement counters, reported in the fleet artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Streams placed, anywhere.
    pub admitted: u64,
    /// Placed in the home region.
    pub home: u64,
    /// Placed in a spill region.
    pub spills: u64,
    /// Placed by the global fallback.
    pub fallbacks: u64,
    /// No cluster in the fleet could host the demand.
    pub rejections: u64,
}

impl PlacementStats {
    fn count(&mut self, kind: ProbeKind) {
        self.admitted += 1;
        match kind {
            ProbeKind::Home => self.home += 1,
            ProbeKind::Spill(_) => self.spills += 1,
            ProbeKind::Fallback => self.fallbacks += 1,
        }
    }
}

/// Saturated keys per index block: 16 × u32 is one 64-byte cache line,
/// scanned flat once the block-level tree says the block qualifies.
const BLOCK: usize = 16;

/// The fleet-level capacity index: the PR 2 `CapacityIndex` design one
/// level up, over cluster ids. Two-level for latency: per-cluster keys
/// live in a flat array of cache-line blocks, and the segment tree is
/// built over *block maxima* — a range-restricted query is a short
/// descent (four levels fewer than a per-cluster tree) plus one in-line
/// block scan, and a rejected probe is a single node load.
#[derive(Debug, Clone, Default)]
struct FleetIndex {
    /// Cluster `id`'s placement key (max-free micro-units, 0 when dead),
    /// zero-padded to whole blocks. Keys are stored saturated to u32 — a
    /// single TPU's largest free block is ≤ 1M micro-units, so real keys
    /// always fit; saturation can only widen a subtree max, and every
    /// index hit is re-checked exactly against the summary.
    keys: Vec<u32>,
    /// 1-based complete binary tree over block maxima:
    /// `tree[block_leaves + b]` is `max(keys[16b..16b+16])`, internal
    /// nodes the max of their children.
    tree: Vec<u32>,
    /// Smallest power of two ≥ the block count.
    block_leaves: usize,
    /// Exact max-free value → alive cluster ids, ascending — the
    /// headroom-ordered iteration the fleet report uses.
    buckets: BTreeMap<u64, BTreeSet<u32>>,
}

impl FleetIndex {
    fn build(summaries: &[ClusterSummary]) -> Self {
        let blocks = summaries.len().div_ceil(BLOCK).max(1);
        let block_leaves = blocks.next_power_of_two();
        let mut index = FleetIndex {
            keys: vec![0; blocks * BLOCK],
            tree: vec![0; 2 * block_leaves],
            block_leaves,
            buckets: BTreeMap::new(),
        };
        for (id, summary) in summaries.iter().enumerate() {
            index.insert(ClusterId::from_index(id).0, summary.placement_key());
        }
        index
    }

    /// Keys saturate to u32 in the index (exact values live in the
    /// summaries and buckets); monotone, so `key ≥ min` is preserved.
    fn saturate(key: u64) -> u32 {
        u32::try_from(key).unwrap_or(u32::MAX)
    }

    fn set_leaf(&mut self, id: u32, value: u64) {
        let slot = ClusterId(id).index();
        self.keys[slot] = Self::saturate(value);
        let block = slot / BLOCK;
        let max = *self.keys[block * BLOCK..]
            .iter()
            .take(BLOCK)
            .max()
            .expect("block is non-empty");
        let mut node = self.block_leaves + block;
        self.tree[node] = max;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
        }
    }

    /// Indexes a cluster at `key` (dead clusters carry key 0 and stay out
    /// of the buckets).
    fn insert(&mut self, id: u32, key: u64) {
        self.set_leaf(id, key);
        if key > 0 {
            self.buckets.entry(key).or_default().insert(id);
        }
    }

    fn remove(&mut self, id: u32, key: u64) {
        self.set_leaf(id, 0);
        if key > 0 {
            if let Some(bucket) = self.buckets.get_mut(&key) {
                bucket.remove(&id);
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    fn update(&mut self, id: u32, old_key: u64, new_key: u64) {
        if old_key == new_key {
            return;
        }
        self.remove(id, old_key);
        self.insert(id, new_key);
    }

    /// First cluster with id in `[lo, hi)` and key ≥ `min`, in O(log C):
    /// partial edge blocks are scanned flat, whole blocks go through the
    /// block tree. Iterative throughout — this is the placement hot path,
    /// and a recursive walk costs several times as much in call overhead.
    #[inline]
    fn first_in_range(&self, lo: u32, hi: u32, min: u64) -> Option<u32> {
        if lo >= hi {
            return None;
        }
        let min = Self::saturate(min);
        let (mut lo, hi) = (ClusterId(lo).index(), ClusterId(hi).index());
        // Partial head block (a resumed cursor mid-block): scan it flat.
        if lo % BLOCK != 0 {
            let head_end = (lo / BLOCK + 1) * BLOCK;
            if let Some(hit) = self.scan(lo, head_end.min(hi), min) {
                return Some(hit);
            }
            if head_end >= hi {
                return None;
            }
            lo = head_end;
        }
        // Whole blocks, via the tree; a hit is resolved by one line scan.
        let (bl, bh) = (lo / BLOCK, hi / BLOCK);
        if let Some(block) = self.first_block(bl, bh, min) {
            return self.scan(block * BLOCK, (block + 1) * BLOCK, min);
        }
        // Partial tail block.
        self.scan(bh.max(bl) * BLOCK, hi, min)
    }

    /// First index in `keys[lo..hi]` holding a key ≥ `min`.
    fn scan(&self, lo: usize, hi: usize, min: u32) -> Option<u32> {
        self.keys[lo..hi.max(lo)]
            .iter()
            .position(|&key| key >= min)
            .map(|offset| u32::try_from(lo + offset).expect("cluster id fits u32"))
    }

    /// First block in `[bl, bh)` whose max key ≥ `min`.
    #[inline]
    fn first_block(&self, bl: usize, bh: usize, min: u32) -> Option<usize> {
        if bl >= bh {
            return None;
        }
        let l = self.block_leaves + bl;
        let r = self.block_leaves + bh;
        // Fast path: a range that is exactly one aligned subtree (every
        // region when the region size is a power of two, and the global
        // fallback, which is the root) is answered by a single node — one
        // load to reject, one descent to accept. Kept inline (with the
        // general walk out of line) so a rejected probe costs two loads.
        let span = r - l;
        if span.is_power_of_two() && l & (span - 1) == 0 {
            let node = l >> span.trailing_zeros();
            if self.tree[node] < min {
                return None;
            }
            return Some(self.leftmost_block(node, min));
        }
        self.first_block_general(l, r, min)
    }

    /// General path of [`FleetIndex::first_block`] for unaligned block
    /// ranges: bottom-up canonical decomposition of `[l, r)`. Nodes
    /// pushed on the left edge come out ascending by position, nodes on
    /// the right edge descending, so in-order is `left` then `right`
    /// reversed. ≤ log₂(block_leaves)+1 nodes per side; 32 slots covers
    /// any u32 fleet.
    fn first_block_general(&self, l: usize, r: usize, min: u32) -> Option<usize> {
        let mut left = [0usize; 32];
        let mut right = [0usize; 32];
        let (mut nl, mut nr) = (0, 0);
        let (mut l, mut r) = (l, r);
        while l < r {
            if l & 1 == 1 {
                left[nl] = l;
                nl += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                right[nr] = r;
                nr += 1;
            }
            l /= 2;
            r /= 2;
        }
        let node = left[..nl]
            .iter()
            .chain(right[..nr].iter().rev())
            .copied()
            .find(|&n| self.tree[n] >= min)?;
        Some(self.leftmost_block(node, min))
    }

    /// The leftmost qualifying block leaf under `node`, which must itself
    /// qualify (`tree[node] ≥ min`): an internal node's key is the max of
    /// its children, so a qualifying subtree always has a qualifying leaf.
    fn leftmost_block(&self, mut node: usize, min: u32) -> usize {
        while node < self.block_leaves {
            node = if self.tree[2 * node] >= min {
                2 * node
            } else {
                2 * node + 1
            };
        }
        node - self.block_leaves
    }
}

/// The global admission/placement tier: per-cluster summaries indexed for
/// O(log C) locality-aware placement. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FrontDoor {
    topology: FleetTopology,
    spill: u32,
    summaries: Vec<ClusterSummary>,
    index: FleetIndex,
    stats: PlacementStats,
}

impl FrontDoor {
    /// Builds the front door over per-cluster summaries (one per cluster,
    /// in cluster-id order), `regions` contiguous regions, and a spill
    /// radius of `spill` regions per side.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ regions ≤ summaries.len()`.
    #[must_use]
    pub fn new(summaries: Vec<ClusterSummary>, regions: u32, spill: u32) -> Self {
        let clusters = u32::try_from(summaries.len()).expect("cluster count fits u32");
        let topology = FleetTopology::new(clusters, regions);
        let index = FleetIndex::build(&summaries);
        FrontDoor {
            topology,
            spill,
            summaries,
            index,
            stats: PlacementStats::default(),
        }
    }

    /// The fleet's locality structure.
    #[must_use]
    pub fn topology(&self) -> FleetTopology {
        self.topology
    }

    /// The spill radius (regions probed on each side of home).
    #[must_use]
    pub fn spill(&self) -> u32 {
        self.spill
    }

    /// The current summary of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn summary(&self, cluster: ClusterId) -> &ClusterSummary {
        &self.summaries[cluster.index()]
    }

    /// Placement counters so far.
    #[must_use]
    pub fn stats(&self) -> PlacementStats {
        self.stats
    }

    /// Clusters not currently dead.
    #[must_use]
    pub fn live_clusters(&self) -> usize {
        self.summaries
            .iter()
            .filter(|s| s.health() != HealthTier::Dead)
            .count()
    }

    /// Total free micro-units across live clusters.
    #[must_use]
    pub fn fleet_free_micro(&self) -> u64 {
        self.summaries.iter().map(|s| s.total_free).sum()
    }

    /// Alive clusters ordered by max-free block, biggest headroom first,
    /// ids ascending within ties — off the free-units buckets.
    pub fn clusters_by_headroom(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.index
            .buckets
            .iter()
            .rev()
            .flat_map(|(_, ids)| ids.iter().copied().map(ClusterId))
    }

    /// Installs a fresh summary for `cluster` — the incremental feed from
    /// the shard's pool index at every epoch barrier. O(1) when nothing
    /// changed (the overwhelmingly common case for idle clusters), one
    /// O(log C) index update otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn observe(&mut self, cluster: ClusterId, summary: ClusterSummary) {
        let slot = &mut self.summaries[cluster.index()];
        if *slot == summary {
            return;
        }
        let old_key = slot.placement_key();
        *slot = summary;
        self.index
            .update(cluster.0, old_key, summary.placement_key());
    }

    /// Declares a whole cluster dead (e.g. after a cluster-kill fault):
    /// its summary is drained so no stream places there until a fresh
    /// [`FrontDoor::observe`] revives it.
    pub fn drain(&mut self, cluster: ClusterId) {
        let drained = self.summaries[cluster.index()].drained();
        self.observe(cluster, drained);
    }

    /// Read-only placement: the best cluster in probe order (home region,
    /// spill rings, global fallback) whose summary can host `demand`.
    /// Each probe is a bounded number of range-restricted segment-tree
    /// descents — O(log C) — continuing past clusters whose max-free block
    /// matches but whose total headroom falls short.
    ///
    /// Within a probe range, the first *two* hosting candidates are
    /// compared and the one whose free capacity is more contiguous
    /// ([`ClusterSummary::more_contiguous_than`]) wins, ids ascending on
    /// ties. Summaries are optimistic — refreshed only at epoch barriers —
    /// so among equally eligible clusters the defragmented one is the
    /// safest bet against a misroute, and clusters the defragmenter just
    /// compacted naturally attract the next placements.
    ///
    /// # Panics
    ///
    /// Panics if `home_region` is out of range.
    #[must_use]
    pub fn place(&self, home_region: u32, demand: StreamDemand) -> Option<Placement> {
        let min = demand.largest_stage.max(1);
        self.topology
            .for_each_probe(home_region, self.spill, |kind, lo, hi| {
                let mut cursor = lo;
                let mut first: Option<u32> = None;
                while let Some(id) = self.index.first_in_range(cursor, hi, min) {
                    if self.summaries[ClusterId(id).index()].can_host(demand) {
                        match first {
                            None => first = Some(id),
                            Some(a) => {
                                let b = &self.summaries[ClusterId(id).index()];
                                let chosen = if b
                                    .more_contiguous_than(&self.summaries[ClusterId(a).index()])
                                {
                                    id
                                } else {
                                    a
                                };
                                return ControlFlow::Break(Placement {
                                    cluster: ClusterId(chosen),
                                    kind,
                                });
                            }
                        }
                    }
                    cursor = id + 1;
                }
                match first {
                    Some(a) => ControlFlow::Break(Placement {
                        cluster: ClusterId(a),
                        kind,
                    }),
                    None => ControlFlow::Continue(()),
                }
            })
    }

    /// [`FrontDoor::place`] plus commitment: debits the chosen cluster's
    /// summary (so same-barrier admissions spread) and counts the outcome.
    pub fn admit(&mut self, home_region: u32, demand: StreamDemand) -> Option<Placement> {
        match self.place(home_region, demand) {
            Some(placement) => {
                self.record_placement(placement, demand);
                Some(placement)
            }
            None => {
                self.stats.rejections += 1;
                None
            }
        }
    }

    /// Books a placement decided out-of-band (e.g. by an earlier
    /// [`FrontDoor::place`] whose admission the destination confirmed):
    /// debits the cluster's summary and counts the probe outcome.
    pub fn record_placement(&mut self, placement: Placement, demand: StreamDemand) {
        self.commit_placement(placement.cluster, demand);
        self.stats.count(placement.kind);
    }

    /// Debits `cluster`'s summary for an accepted placement without going
    /// through the search (the sharded replay uses this when it has
    /// already decided the cluster, e.g. re-admitting an evacuee).
    pub fn commit_placement(&mut self, cluster: ClusterId, demand: StreamDemand) {
        let slot = &mut self.summaries[cluster.index()];
        let old_key = slot.placement_key();
        slot.debit(demand);
        self.index.update(cluster.0, old_key, slot.placement_key());
    }
}

pub mod reference {
    //! The pre-index linear fleet scan, preserved verbatim as the
    //! differential oracle: identical probe plan, identical eligibility
    //! and debit rules, but every probe walks its cluster-id range one
    //! summary at a time — O(C) per placement. `tests/fleet_differential.rs`
    //! pins [`LinearFrontDoor`] byte-identical to [`FrontDoor`] under
    //! random churn, and `bench::fleet` measures the gap.
    //!
    //! [`FrontDoor`]: super::FrontDoor

    use super::{
        ClusterId, ClusterSummary, FleetTopology, Placement, PlacementStats, StreamDemand,
    };

    /// The linear fleet-scan oracle. Same contract as
    /// [`FrontDoor`](super::FrontDoor), minus the index.
    #[derive(Debug, Clone)]
    pub struct LinearFrontDoor {
        topology: FleetTopology,
        spill: u32,
        summaries: Vec<ClusterSummary>,
        stats: PlacementStats,
    }

    impl LinearFrontDoor {
        /// Mirrors [`FrontDoor::new`](super::FrontDoor::new).
        ///
        /// # Panics
        ///
        /// Panics unless `1 ≤ regions ≤ summaries.len()`.
        #[must_use]
        pub fn new(summaries: Vec<ClusterSummary>, regions: u32, spill: u32) -> Self {
            let clusters = u32::try_from(summaries.len()).expect("cluster count fits u32");
            LinearFrontDoor {
                topology: FleetTopology::new(clusters, regions),
                spill,
                summaries,
                stats: PlacementStats::default(),
            }
        }

        /// The current summary of `cluster`.
        ///
        /// # Panics
        ///
        /// Panics if `cluster` is out of range.
        #[must_use]
        pub fn summary(&self, cluster: ClusterId) -> &ClusterSummary {
            &self.summaries[cluster.index()]
        }

        /// Placement counters so far.
        #[must_use]
        pub fn stats(&self) -> PlacementStats {
            self.stats
        }

        /// Installs a fresh summary (a plain write — nothing to index).
        ///
        /// # Panics
        ///
        /// Panics if `cluster` is out of range.
        pub fn observe(&mut self, cluster: ClusterId, summary: ClusterSummary) {
            self.summaries[cluster.index()] = summary;
        }

        /// Mirrors [`FrontDoor::drain`](super::FrontDoor::drain).
        pub fn drain(&mut self, cluster: ClusterId) {
            let drained = self.summaries[cluster.index()].drained();
            self.observe(cluster, drained);
        }

        /// The linear scan: identical probe plan, eligibility rule, and
        /// first-two contiguity tiebreak as the indexed search, walking
        /// every id in each range.
        ///
        /// # Panics
        ///
        /// Panics if `home_region` is out of range.
        #[must_use]
        pub fn place(&self, home_region: u32, demand: StreamDemand) -> Option<Placement> {
            use std::ops::ControlFlow;
            self.topology
                .for_each_probe(home_region, self.spill, |kind, lo, hi| {
                    let mut first: Option<u32> = None;
                    for id in lo..hi {
                        if self.summaries[ClusterId(id).index()].can_host(demand) {
                            match first {
                                None => first = Some(id),
                                Some(a) => {
                                    let b = &self.summaries[ClusterId(id).index()];
                                    let chosen = if b
                                        .more_contiguous_than(&self.summaries[ClusterId(a).index()])
                                    {
                                        id
                                    } else {
                                        a
                                    };
                                    return ControlFlow::Break(Placement {
                                        cluster: ClusterId(chosen),
                                        kind,
                                    });
                                }
                            }
                        }
                    }
                    match first {
                        Some(a) => ControlFlow::Break(Placement {
                            cluster: ClusterId(a),
                            kind,
                        }),
                        None => ControlFlow::Continue(()),
                    }
                })
        }

        /// Mirrors [`FrontDoor::admit`](super::FrontDoor::admit).
        pub fn admit(&mut self, home_region: u32, demand: StreamDemand) -> Option<Placement> {
            match self.place(home_region, demand) {
                Some(placement) => {
                    self.summaries[placement.cluster.index()].debit(demand);
                    self.stats.count(placement.kind);
                    Some(placement)
                }
                None => {
                    self.stats.rejections += 1;
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::LinearFrontDoor;
    use super::*;

    const UNIT: u64 = 1_000_000;

    fn idle_fleet(clusters: u32, tpus: u32) -> Vec<ClusterSummary> {
        vec![ClusterSummary::empty(tpus); clusters as usize]
    }

    #[test]
    fn topology_partitions_contiguously_and_consistently() {
        let t = FleetTopology::new(10, 3);
        assert_eq!(t.region_range(0), (0, 4));
        assert_eq!(t.region_range(1), (4, 7));
        assert_eq!(t.region_range(2), (7, 10));
        for c in 0..10 {
            let r = t.region_of(ClusterId(c));
            let (lo, hi) = t.region_range(r);
            assert!((lo..hi).contains(&c), "cluster {c} outside region {r}");
        }
    }

    #[test]
    fn probe_plan_rings_out_from_home_and_dedups() {
        let t = FleetTopology::new(8, 4);
        let kinds: Vec<(ProbeKind, u32, u32)> = t.probe_plan(1, 2);
        assert_eq!(
            kinds,
            vec![
                (ProbeKind::Home, 2, 4),
                (ProbeKind::Spill(1), 4, 6), // region 2
                (ProbeKind::Spill(1), 0, 2), // region 0
                (ProbeKind::Spill(2), 6, 8), // region 3; -2 duplicates it
                (ProbeKind::Fallback, 0, 8),
            ]
        );
        // Spill radius beyond the ring visits each region once.
        let wide = t.probe_plan(0, 10);
        assert_eq!(wide.len(), 1 + 3 + 1, "4 regions + fallback");
    }

    #[test]
    fn placement_prefers_home_then_spills_then_falls_back() {
        // 6 clusters, 3 regions of 2; home region is 1 (clusters 2-3).
        let mut door = FrontDoor::new(idle_fleet(6, 1), 3, 1);
        let demand = StreamDemand::uniform(UNIT / 2);
        let placed = door.admit(1, demand).expect("idle fleet has room");
        assert_eq!(placed.cluster, ClusterId(2));
        assert_eq!(placed.kind, ProbeKind::Home);
        // Fill the home region: next admissions spill to region 2 first
        // (ring +1), then region 0.
        for c in 2..4 {
            door.observe(
                ClusterId(c),
                ClusterSummary {
                    max_free: 0,
                    total_free: 0,
                    available_tpus: 1,
                    total_tpus: 1,
                    live_streams: 2,
                },
            );
        }
        let spilled = door.admit(1, demand).expect("region 2 has room");
        assert_eq!(spilled.cluster, ClusterId(4));
        assert_eq!(spilled.kind, ProbeKind::Spill(1));
        let stats = door.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.home, 1);
        assert_eq!(stats.spills, 1);
    }

    #[test]
    fn dead_clusters_never_place_until_revived() {
        let mut door = FrontDoor::new(idle_fleet(2, 1), 1, 0);
        door.drain(ClusterId(0));
        door.drain(ClusterId(1));
        assert_eq!(door.live_clusters(), 0);
        assert_eq!(door.place(0, StreamDemand::uniform(1)), None);
        door.observe(ClusterId(1), ClusterSummary::empty(1));
        let placed = door.admit(0, StreamDemand::uniform(1)).expect("revived");
        assert_eq!(placed.cluster, ClusterId(1));
    }

    #[test]
    fn total_headroom_is_checked_past_the_max_free_block() {
        // Cluster 0 has a big block but no total headroom for a two-stage
        // pipeline; cluster 1 has both.
        let mut summaries = idle_fleet(2, 2);
        summaries[0] = ClusterSummary {
            max_free: 600_000,
            total_free: 700_000,
            available_tpus: 2,
            total_tpus: 2,
            live_streams: 3,
        };
        let door = FrontDoor::new(summaries, 1, 0);
        let pipeline = StreamDemand {
            largest_stage: 500_000,
            total: 900_000,
        };
        let placed = door.place(0, pipeline).expect("cluster 1 fits");
        assert_eq!(placed.cluster, ClusterId(1));
    }

    #[test]
    fn admission_debits_spread_same_barrier_placements() {
        let mut door = FrontDoor::new(idle_fleet(4, 1), 1, 0);
        let demand = StreamDemand::uniform(700_000);
        let first = door.admit(0, demand).expect("room");
        let second = door.admit(0, demand).expect("room");
        assert_eq!(first.cluster, ClusterId(0));
        assert_eq!(
            second.cluster,
            ClusterId(1),
            "the debit keeps cluster 0 from double-booking"
        );
        assert_eq!(door.summary(ClusterId(0)).live_streams, 1);
    }

    #[test]
    fn health_tiers_follow_available_ratio() {
        let tier = |available, total| {
            ClusterSummary {
                max_free: UNIT,
                total_free: UNIT,
                available_tpus: available,
                total_tpus: total,
                live_streams: 0,
            }
            .health()
        };
        assert_eq!(tier(20, 20), HealthTier::Healthy);
        assert_eq!(tier(19, 20), HealthTier::Healthy);
        assert_eq!(tier(17, 20), HealthTier::Degraded);
        assert_eq!(tier(10, 20), HealthTier::Critical);
        assert_eq!(tier(0, 20), HealthTier::Dead);
    }

    #[test]
    fn clusters_by_headroom_orders_buckets_descending() {
        let mut door = FrontDoor::new(idle_fleet(3, 1), 1, 0);
        door.commit_placement(ClusterId(1), StreamDemand::uniform(300_000));
        door.commit_placement(ClusterId(2), StreamDemand::uniform(600_000));
        let order: Vec<u32> = door.clusters_by_headroom().map(|c| c.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn indexed_and_linear_doors_agree_on_a_crafted_fleet() {
        let mut summaries = idle_fleet(12, 2);
        // A mix of full, dead, tight, and roomy clusters.
        for (i, s) in summaries.iter_mut().enumerate() {
            let i = i as u64;
            s.max_free = (i * 173) % (2 * UNIT) / 2;
            s.total_free = s.max_free + (i * 37) % UNIT;
            s.available_tpus = if i.is_multiple_of(5) { 0 } else { 2 };
        }
        let mut indexed = FrontDoor::new(summaries.clone(), 4, 1);
        let mut linear = LinearFrontDoor::new(summaries, 4, 1);
        for round in 0..40u64 {
            let demand = StreamDemand {
                largest_stage: (round * 97_003) % UNIT,
                total: (round * 131_707) % (2 * UNIT),
            };
            let home = (round % 4) as u32;
            assert_eq!(
                indexed.admit(home, demand),
                linear.admit(home, demand),
                "diverged at round {round}"
            );
        }
        assert_eq!(indexed.stats(), linear.stats());
    }
}
