#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-core — the MicroEdge system
//!
//! The paper's primary contribution: multi-tenant fractional sharing of
//! Coral TPUs in a K3s-orchestrated edge cluster.
//!
//! **Control plane** (paper §4):
//! - [`units`] — the *TPU units* resource metric, in exact fixed point;
//! - [`pool`] — scheduler-side TPU fleet state with per-model reference
//!   counts and lazy reclamation;
//! - [`admission`] — Algorithm 1: First-Fit admission control with and
//!   without fine-grained workload partitioning (plus Best/Worst/Next-Fit
//!   for the packing ablation);
//! - [`scheduler`] — the extended scheduler: deploy, teardown, reclamation
//!   polling, and TPU failure recovery;
//! - [`config`] — feature flags (workload partitioning, co-compiling) and
//!   the calibrated data-plane cost model;
//! - [`defrag`] — the online defragmenter: swap-cost-budgeted live
//!   repacking of fragmented TPU pools at epoch barriers, pricing each
//!   move with the real parameter-swap and co-compile transition costs;
//! - [`faults`] — deterministic fault injection (MTBF/MTTR schedules,
//!   scripted traces), the heartbeat/lease failure detector, and the
//!   self-healing / graceful-degradation policies.
//!
//! **Data plane** (paper §5):
//! - [`lbs`] — the per-pod load-balancing service (smooth weighted round
//!   robin with WFQ spread);
//! - [`runtime`] — the discrete-event world: TPU Services (FIFO,
//!   run-to-completion), TPU Clients (pre-process → transmit → invoke →
//!   post-process), live stream admission/removal, and metric collection;
//! - [`shard`] — sharded single-replay parallelism: per-cluster `World`
//!   shards advanced in deterministic epochs with barrier-exchanged
//!   cross-shard traffic, bit-identical at any worker count;
//! - [`net`] — the deterministic lossy-transport layer cross-shard
//!   traffic rides: per-link healthy/degraded/partitioned state machines,
//!   seeded per-message loss/jitter/reorder draws, and three QoS classes
//!   (acked control with retransmit budgets, unacked heartbeats feeding
//!   the lease detector, best-effort telemetry).
//!
//! **Fleet tier**:
//! - [`fleet`] — the federated front door: per-cluster capacity summaries
//!   fed from each shard's indexed pool, re-indexed by a fleet-level
//!   segment tree for O(log C) locality-aware stream→cluster placement,
//!   with the linear fleet scan preserved as a differential oracle.
//!
//! # Examples
//!
//! Deploy three Coral-Pie cameras that share one TPU (each needs 0.35 TPU
//! units, so two fit whole and the admission of a third is refused without
//! a second TPU):
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::config::Features;
//! use microedge_core::runtime::{StreamSpec, World};
//!
//! let cluster = ClusterBuilder::new().trpis(1).vrpis(2).build();
//! let mut world = World::new(cluster, Features::all());
//! assert!(world.admit_stream(StreamSpec::builder("cam-0", "ssd-mobilenet-v2").build()).is_ok());
//! assert!(world.admit_stream(StreamSpec::builder("cam-1", "ssd-mobilenet-v2").build()).is_ok());
//! assert!(world.admit_stream(StreamSpec::builder("cam-2", "ssd-mobilenet-v2").build()).is_err());
//! ```

pub mod admission;
pub mod client;
pub mod config;
pub mod defrag;
pub mod faults;
pub mod fleet;
pub mod lbs;
pub mod net;
pub mod pool;
pub mod runtime;
pub mod scheduler;
pub mod shard;
pub mod units;

pub use admission::{AdmissionPolicy, BestFit, FirstFit, NextFit, NextKFit, WorstFit};
pub use client::{SourceResolution, TpuClientModel};
pub use config::{DataPlaneConfig, Features};
pub use defrag::{DefragConfig, ExecutedMove};
pub use faults::{
    ChaosConfig, ClassRates, DegradePolicy, DetectionModel, FaultEvent, FaultKind, FaultModel,
    FaultSchedule, HealPolicy,
};
pub use fleet::{
    ClusterId, ClusterSummary, FleetTopology, FrontDoor, HealthTier, Placement, PlacementStats,
    ProbeKind, StreamDemand,
};
pub use lbs::LbService;
pub use net::{
    DegradedLink, LinkChaosModel, LinkSchedule, LinkState, NetConfig, NetError, NetReport,
    QosClass, RetransmitPolicy, Transport,
};
pub use pool::{render_pool, Allocation, PoolCapacity, TpuAccount, TpuPool};
pub use runtime::{
    FrameExport, RunResults, StreamId, StreamSpec, World, WorldCommand, METRIC_WINDOW,
};
pub use scheduler::{
    DeployError, Deployment, EvictPlan, ExtendedScheduler, FailureRecovery, PodMove, RecoveredPod,
    StageGrant, StagePlacement, TpuRequest,
};
pub use shard::{FleetReport, GlobalStreamId, ShardedWorld};
pub use units::TpuUnits;
